//! `lbsp-lint`: repo-specific static analysis for the privacy-aware LBS
//! workspace.
//!
//! The paper's architecture stands on one invariant — exact user
//! coordinates stop at the trusted Location Anonymizer, and only cloaked
//! rectangles reach the database server. This tool makes the invariant
//! (and two reliability disciplines that protect it) machine-checked on
//! every CI run, using a self-contained Rust tokenizer so the workspace
//! keeps building offline with zero new dependencies.
//!
//! Per-file rule families (token-local, one lex per file):
//!
//! * **taint** — structs marked as crossing the anonymizer→server
//!   boundary (`server-bound` annotation) may not carry exact-location
//!   fields or types (`Point`, `UserLocation`, `x`/`y`/`position`/...),
//!   a fixed list of boundary structs must carry the marker so the check
//!   cannot be disabled by deleting it, and public functions in the
//!   server's `private_*` query modules may not take exact locations
//!   unless escaped with a justified `allow(taint)` annotation.
//! * **panic** — `unwrap`/`expect` calls, panicking macros, and direct
//!   slice indexing are banned in the hostile-input surfaces
//!   (`crates/net/src` and `crates/core/src/wire.rs`); a justified
//!   `allow(panic)` annotation escapes a site whose infallibility is a
//!   real invariant.
//! * **lock** — every raw `Mutex`/`RwLock` construction must either be
//!   the `TrackedMutex`/`TrackedRwLock` wrappers (whose first argument
//!   is a registry rank) or carry a `lock(RankName)` annotation naming a
//!   rank declared in `lbsp_core::locks::LockRank`.
//! * **unsafe** — every crate root must carry `#![forbid(unsafe_code)]`,
//!   and the `unsafe` keyword may not appear anywhere.
//!
//! Semantic passes (workspace-wide, over a shared symbol table
//! ([`symbols`]) and resolved call graph ([`callgraph`]); the same
//! token streams, lexed once):
//!
//! * **taint-flow** ([`taint_flow`]) — interprocedural dataflow from
//!   exact-position sources to server-bound sinks, with cloak
//!   constructors as sanitizers; leaks through helper functions are
//!   findings carrying the full source→sink `file:line` hop chain.
//! * **lock-order** ([`lock_graph`]) — the static lock-acquisition
//!   graph (which ranks can be held when each function acquires
//!   another), proved acyclic against the declared rank order; any
//!   descending edge or rank cycle is a finding with a witness chain.
//! * **wire** ([`wire_conformance`]) — the `mod tag` registry and
//!   codecs: unique tag values, strict encode/decode pairing, dispatch
//!   coverage in the server and cluster router, server-bound structs
//!   pinned in [`REQUIRED_SERVER_BOUND`], and agreement with the
//!   DESIGN.md wire-tag table.
//!
//! Annotations are line comments directly above the offending item (doc
//! comments and attribute lines in between are allowed), starting with
//! `lint:` after the comment marker. `allow(...)` escapes must carry a
//! justification after `--`. Output is deterministic: findings sort by
//! (file, line, rule), and the binary's `--json` mode emits them as
//! line-delimited JSON for CI archiving.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

mod callgraph;
mod lock_graph;
mod symbols;
mod taint_flow;
mod wire_conformance;

pub use lock_graph::LockEdge;

use symbols::{SourceFile, SymbolTable};

/// One rule violation, formatted `file:line: [rule] message`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path (forward slashes).
    pub file: String,
    /// 1-based line of the offending token.
    pub line: usize,
    /// Rule family: `taint`, `panic`, `lock`, `unsafe`, `annotation`
    /// (per-file), or `taint-flow`, `lock-order`, `wire` (semantic).
    pub rule: &'static str,
    /// Human-readable description of the violation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.file, self.line, self.rule, self.message
        )
    }
}

impl Finding {
    /// Machine-readable form: one flat JSON object. The `--json` CLI
    /// mode emits one per line (mirroring `bench::json`) so CI can
    /// archive and diff findings without parsing prose.
    pub fn to_json(&self) -> String {
        format!(
            "{{\"file\":\"{}\",\"line\":{},\"rule\":\"{}\",\"message\":\"{}\"}}",
            json_escape(&self.file),
            self.line,
            json_escape(self.rule),
            json_escape(&self.message)
        )
    }
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Which rule families apply to a file (derived from its path).
#[derive(Debug, Clone, Copy, Default)]
pub struct Scope {
    /// Hostile-input surface: ban unwrap/expect/panics/indexing.
    pub panic_free: bool,
    /// Server private-query API: ban exact-location parameters.
    pub private_api: bool,
    /// Check raw `Mutex`/`RwLock` construction against the registry.
    pub lock_discipline: bool,
    /// Crate root: require `#![forbid(unsafe_code)]`.
    pub crate_root: bool,
}

/// The scope the workspace run applies to `rel` (a workspace-relative
/// path with forward slashes).
pub fn scope_for(rel: &str) -> Scope {
    Scope {
        panic_free: rel.starts_with("crates/net/src/")
            // Everything the store crate reads back from disk is as
            // hostile as network bytes: a flipped bit must surface as a
            // Corrupt diagnostic, never a panic.
            || rel.starts_with("crates/store/src/")
            || rel == "crates/core/src/wire.rs"
            // The journal codecs decode WAL bytes on the recovery path.
            || rel == "crates/core/src/journal.rs"
            // The observability registry records on hot paths and its
            // snapshots are served to remote scrapers.
            || rel == "crates/core/src/obs.rs"
            // The cluster router terminates client connections and
            // relays frames between nodes: every byte it touches is as
            // hostile as the network, and a panic takes down the whole
            // front door, not one request.
            || rel.starts_with("crates/cluster/src/"),
        private_api: rel.starts_with("crates/server/src/private_"),
        // The registry module itself implements the tracked wrappers on
        // top of raw std locks.
        lock_discipline: rel != "crates/core/src/locks.rs",
        crate_root: rel.ends_with("src/lib.rs"),
    }
}

/// Boundary structs that must carry the `server-bound` marker, so the
/// field check cannot be silently disabled by removing the annotation.
pub(crate) const REQUIRED_SERVER_BOUND: &[(&str, &str)] = &[
    ("crates/core/src/wire.rs", "RangeQueryMsg"),
    ("crates/anonymizer/src/anonymizer.rs", "CloakedUpdate"),
    ("crates/anonymizer/src/anonymizer.rs", "CloakedQuery"),
    ("crates/anonymizer/src/cloak.rs", "CloakedRegion"),
    // A STATS scrape leaves the trust boundary too: the snapshot may
    // carry aggregates only, never positions or identities.
    ("crates/core/src/obs.rs", "RegistrySnapshot"),
    // Standing count queries live on the untrusted server: both the
    // registration (area only) and the pushed state (aggregates only)
    // cross the boundary. Standing *range* registrations and states stay
    // on the trusted hop (they name a user / carry public candidate
    // positions), so they are deliberately absent here.
    ("crates/core/src/wire.rs", "RegisterStandingCountMsg"),
    ("crates/core/src/wire.rs", "StandingCountState"),
    // Cluster handoff frames hop node→node inside the anonymizer tier,
    // but they transit the same network as server traffic, so they are
    // held to the boundary discipline: a cloaked rectangle may travel,
    // an exact `Point` may not.
    ("crates/core/src/wire.rs", "HandoffMsg"),
];

/// Field names that may not appear in a server-bound struct.
const BANNED_FIELD_NAMES: &[&str] = &[
    "x",
    "y",
    "position",
    "location",
    "user",
    "user_id",
    "lat",
    "lon",
    "latitude",
    "longitude",
];

/// Type identifiers that carry an exact location.
const BANNED_LOCATION_TYPES: &[&str] = &["Point", "UserLocation"];

// ---------------------------------------------------------------------
// Tokenizer
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum TokKind {
    Ident,
    Punct(char),
    Str,
    Num,
    Lifetime,
    CharLit,
}

#[derive(Debug, Clone)]
pub(crate) struct Tok {
    pub(crate) kind: TokKind,
    pub(crate) text: String,
    pub(crate) line: usize,
}

impl Tok {
    pub(crate) fn is_ident(&self, s: &str) -> bool {
        self.kind == TokKind::Ident && self.text == s
    }
    pub(crate) fn is_punct(&self, c: char) -> bool {
        self.kind == TokKind::Punct(c)
    }
}

/// A `//` comment, by line, with the text after the slashes.
#[derive(Debug, Clone)]
pub(crate) struct Comment {
    pub(crate) line: usize,
    pub(crate) text: String,
}

pub(crate) struct Lexed {
    pub(crate) toks: Vec<Tok>,
    pub(crate) comments: Vec<Comment>,
}

/// Tokenizes Rust source: identifiers, loose numbers, string/char
/// literals, lifetimes, single-char punctuation. Line and block comments
/// go to a side list (block comments nest, per Rust).
pub(crate) fn lex(src: &str) -> Lexed {
    let bytes: Vec<char> = src.chars().collect();
    let mut toks = Vec::new();
    let mut comments = Vec::new();
    let mut i = 0usize;
    let mut line = 1usize;
    let n = bytes.len();
    let at = |i: usize| bytes.get(i).copied().unwrap_or('\0');
    while i < n {
        let c = at(i);
        if c == '\n' {
            line += 1;
            i += 1;
        } else if c.is_whitespace() {
            i += 1;
        } else if c == '/' && at(i + 1) == '/' {
            let start = i + 2;
            let mut j = start;
            while j < n && at(j) != '\n' {
                j += 1;
            }
            comments.push(Comment {
                line,
                text: bytes[start..j].iter().collect(),
            });
            i = j;
        } else if c == '/' && at(i + 1) == '*' {
            let mut depth = 1;
            let mut j = i + 2;
            while j < n && depth > 0 {
                if at(j) == '\n' {
                    line += 1;
                    j += 1;
                } else if at(j) == '/' && at(j + 1) == '*' {
                    depth += 1;
                    j += 2;
                } else if at(j) == '*' && at(j + 1) == '/' {
                    depth -= 1;
                    j += 2;
                } else {
                    j += 1;
                }
            }
            i = j;
        } else if c == '"'
            || (c == 'r' && (at(i + 1) == '"' || at(i + 1) == '#'))
            || (c == 'b' && at(i + 1) == '"')
            || (c == 'b' && at(i + 1) == 'r' && (at(i + 2) == '"' || at(i + 2) == '#'))
        {
            // String literal: plain, byte, raw, or raw byte.
            let mut j = i;
            if at(j) == 'b' {
                j += 1;
            }
            let raw = at(j) == 'r';
            if raw {
                j += 1;
            }
            let mut hashes = 0;
            while raw && at(j) == '#' {
                hashes += 1;
                j += 1;
            }
            if at(j) != '"' {
                // `r` / `b` identifier followed by something else after
                // all; treat as ident start.
                let (tok, nj, nl) = lex_ident(&bytes, i, line);
                toks.push(tok);
                i = nj;
                line = nl;
                continue;
            }
            j += 1; // opening quote
            loop {
                if j >= n {
                    break;
                }
                let cj = at(j);
                if cj == '\n' {
                    line += 1;
                    j += 1;
                } else if !raw && cj == '\\' {
                    j += 2;
                } else if cj == '"' {
                    if raw {
                        let mut k = 0;
                        while k < hashes && at(j + 1 + k) == '#' {
                            k += 1;
                        }
                        if k == hashes {
                            j += 1 + hashes;
                            break;
                        }
                        j += 1;
                    } else {
                        j += 1;
                        break;
                    }
                } else {
                    j += 1;
                }
            }
            toks.push(Tok {
                kind: TokKind::Str,
                text: String::new(),
                line,
            });
            i = j;
        } else if c == '\'' {
            // Lifetime vs char literal: a lifetime is `'ident` not
            // followed by a closing quote.
            let mut j = i + 1;
            if (at(j).is_alphabetic() || at(j) == '_') && {
                let mut k = j;
                while k < n && (at(k).is_alphanumeric() || at(k) == '_') {
                    k += 1;
                }
                at(k) != '\''
            } {
                let start = j;
                while j < n && (at(j).is_alphanumeric() || at(j) == '_') {
                    j += 1;
                }
                toks.push(Tok {
                    kind: TokKind::Lifetime,
                    text: bytes[start..j].iter().collect(),
                    line,
                });
                i = j;
            } else {
                // Char literal, escapes included.
                j = i + 1;
                while j < n {
                    let cj = at(j);
                    if cj == '\\' {
                        j += 2;
                    } else if cj == '\'' {
                        j += 1;
                        break;
                    } else {
                        if cj == '\n' {
                            line += 1;
                        }
                        j += 1;
                    }
                }
                toks.push(Tok {
                    kind: TokKind::CharLit,
                    text: String::new(),
                    line,
                });
                i = j;
            }
        } else if c.is_alphabetic() || c == '_' {
            let (tok, nj, nl) = lex_ident(&bytes, i, line);
            toks.push(tok);
            i = nj;
            line = nl;
        } else if c.is_ascii_digit() {
            let start = i;
            let mut j = i;
            while j < n && (at(j).is_alphanumeric() || at(j) == '_') {
                j += 1;
            }
            toks.push(Tok {
                kind: TokKind::Num,
                text: bytes[start..j].iter().collect(),
                line,
            });
            i = j;
        } else {
            toks.push(Tok {
                kind: TokKind::Punct(c),
                text: c.to_string(),
                line,
            });
            i += 1;
        }
    }
    Lexed { toks, comments }
}

fn lex_ident(bytes: &[char], i: usize, line: usize) -> (Tok, usize, usize) {
    let mut j = i;
    while j < bytes.len() && (bytes[j].is_alphanumeric() || bytes[j] == '_') {
        j += 1;
    }
    (
        Tok {
            kind: TokKind::Ident,
            text: bytes[i..j].iter().collect(),
            line,
        },
        j,
        line,
    )
}

const KEYWORDS: &[&str] = &[
    "as", "async", "await", "break", "const", "continue", "crate", "dyn", "else", "enum", "extern",
    "false", "fn", "for", "if", "impl", "in", "let", "loop", "match", "mod", "move", "mut", "pub",
    "ref", "return", "static", "struct", "super", "trait", "true", "type", "unsafe", "use",
    "where", "while",
];

pub(crate) fn is_keyword(s: &str) -> bool {
    KEYWORDS.contains(&s)
}

// ---------------------------------------------------------------------
// Test-code stripping
// ---------------------------------------------------------------------

/// Removes items behind `#[cfg(test)]` / `#[test]` attributes (and the
/// attributes themselves), so the rules judge shipped code only.
pub(crate) fn strip_test_items(toks: &[Tok]) -> Vec<Tok> {
    let mut out = Vec::with_capacity(toks.len());
    let mut i = 0;
    while i < toks.len() {
        if toks[i].is_punct('#') && toks.get(i + 1).is_some_and(|t| t.is_punct('[')) {
            // Collect the attribute's tokens.
            let mut j = i + 2;
            let mut depth = 1;
            let mut idents: Vec<&str> = Vec::new();
            while j < toks.len() && depth > 0 {
                if toks[j].is_punct('[') {
                    depth += 1;
                } else if toks[j].is_punct(']') {
                    depth -= 1;
                } else if toks[j].kind == TokKind::Ident {
                    idents.push(&toks[j].text);
                }
                j += 1;
            }
            let is_test_attr = idents.first() == Some(&"test")
                || (idents.first() == Some(&"cfg") && idents.contains(&"test"));
            if is_test_attr {
                // Skip this attribute, any further attributes, and the
                // item they decorate (to its closing brace or `;`).
                i = j;
                while i < toks.len()
                    && toks[i].is_punct('#')
                    && toks.get(i + 1).is_some_and(|t| t.is_punct('['))
                {
                    let mut d = 1;
                    i += 2;
                    while i < toks.len() && d > 0 {
                        if toks[i].is_punct('[') {
                            d += 1;
                        } else if toks[i].is_punct(']') {
                            d -= 1;
                        }
                        i += 1;
                    }
                }
                let mut brace = 0i64;
                while i < toks.len() {
                    if toks[i].is_punct('{') {
                        brace += 1;
                    } else if toks[i].is_punct('}') {
                        brace -= 1;
                        if brace == 0 {
                            i += 1;
                            break;
                        }
                    } else if toks[i].is_punct(';') && brace == 0 {
                        i += 1;
                        break;
                    }
                    i += 1;
                }
                continue;
            }
        }
        out.push(toks[i].clone());
        i += 1;
    }
    out
}

// ---------------------------------------------------------------------
// Annotations
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Annotation {
    Allow(String),
    Lock(String),
    ServerBound,
}

/// Parses one comment for a `lint:` directive. `Err` carries a finding
/// message for a malformed directive.
pub(crate) fn parse_annotation(text: &str) -> Option<Result<Annotation, String>> {
    let t = text.trim_start();
    let rest = t.strip_prefix("lint:")?.trim_start();
    if rest.starts_with("server-bound") {
        return Some(Ok(Annotation::ServerBound));
    }
    for (prefix, kind) in [("allow(", "allow"), ("lock(", "lock")] {
        if let Some(arg_on) = rest.strip_prefix(prefix) {
            let Some(close) = arg_on.find(')') else {
                return Some(Err(format!("unclosed `lint: {kind}(...)` annotation")));
            };
            let arg = arg_on[..close].trim().to_string();
            let tail = arg_on[close + 1..].trim_start();
            if kind == "allow" {
                if !["taint", "panic", "lock"].contains(&arg.as_str()) {
                    return Some(Err(format!(
                        "unknown lint escape `allow({arg})` (expected taint, panic, or lock)"
                    )));
                }
                let justification = tail.strip_prefix("--").map(str::trim).unwrap_or("");
                if justification.len() < 8 {
                    return Some(Err(format!(
                        "`lint: allow({arg})` requires a justification: \
                         `// lint: allow({arg}) -- why this site is exempt`"
                    )));
                }
                return Some(Ok(Annotation::Allow(arg)));
            }
            return Some(Ok(Annotation::Lock(arg)));
        }
    }
    Some(Err(format!(
        "unrecognized lint annotation `{}` (expected allow(...), lock(...), or server-bound)",
        t.trim_end()
    )))
}

/// Collects the annotations in the comment block ending directly above
/// `line` (consecutive comment lines; doc comments pass through).
pub(crate) fn annotations_above(comments: &[Comment], line: usize) -> Vec<Annotation> {
    let by_line: std::collections::HashMap<usize, &Comment> =
        comments.iter().map(|c| (c.line, c)).collect();
    let mut out = Vec::new();
    let mut l = line;
    while l > 1 {
        l -= 1;
        match by_line.get(&l) {
            Some(c) => {
                if let Some(Ok(a)) = parse_annotation(&c.text) {
                    out.push(a);
                }
            }
            None => break,
        }
    }
    out
}

/// The anchor line of the item whose keyword token sits at `idx`: walks
/// backward over `pub`, visibility arguments, and attribute groups so
/// annotations above `#[derive(...)]` still attach to the item.
pub(crate) fn item_anchor_line(toks: &[Tok], idx: usize) -> usize {
    let mut line = toks[idx].line;
    let mut i = idx;
    while i > 0 {
        let prev = &toks[i - 1];
        if prev.is_ident("pub") {
            i -= 1;
        } else if prev.is_punct(')') && i >= 2 {
            // `pub(crate)` and friends: walk to the matching `(`.
            let mut depth = 1;
            let mut j = i - 1;
            while j > 0 && depth > 0 {
                j -= 1;
                if toks[j].is_punct(')') {
                    depth += 1;
                } else if toks[j].is_punct('(') {
                    depth -= 1;
                }
            }
            if j > 0 && toks[j - 1].is_ident("pub") {
                i = j - 1;
            } else {
                break;
            }
        } else if prev.is_punct(']') {
            // Attribute group `#[...]` (or `#![...]`).
            let mut depth = 1;
            let mut j = i - 1;
            while j > 0 && depth > 0 {
                j -= 1;
                if toks[j].is_punct(']') {
                    depth += 1;
                } else if toks[j].is_punct('[') {
                    depth -= 1;
                }
            }
            if j > 0 && toks[j - 1].is_punct('!') {
                j -= 1;
            }
            if j > 0 && toks[j - 1].is_punct('#') {
                i = j - 1;
            } else {
                break;
            }
        } else {
            break;
        }
        line = line.min(toks[i].line);
    }
    line
}

// ---------------------------------------------------------------------
// Rules
// ---------------------------------------------------------------------

/// Lints one file's source under `scope` with the per-file rule set
/// only (the semantic passes need the whole workspace — see
/// [`analyze_sources`]). `registry` is the list of declared lock-rank
/// names; `rel` labels findings.
pub fn lint_file(rel: &str, src: &str, scope: Scope, registry: &[String]) -> Vec<Finding> {
    lint_source_file(&SourceFile::parse(rel, src), scope, registry)
}

/// The per-file rules, on an already-lexed file (each file is lexed
/// exactly once per run; the token stream is shared with the semantic
/// passes).
fn lint_source_file(file: &SourceFile, scope: Scope, registry: &[String]) -> Vec<Finding> {
    let rel = file.rel.as_str();
    let toks = &file.toks;
    let comments = &file.comments;
    let mut findings = Vec::new();
    let push = |findings: &mut Vec<Finding>, line: usize, rule: &'static str, message: String| {
        findings.push(Finding {
            file: rel.to_string(),
            line,
            rule,
            message,
        });
    };

    // Malformed annotations are findings wherever they appear.
    for c in comments {
        if let Some(Err(msg)) = parse_annotation(&c.text) {
            push(&mut findings, c.line, "annotation", msg);
        }
    }

    // unsafe: banned everywhere; crate roots must forbid it.
    for t in toks {
        if t.is_ident("unsafe") {
            push(
                &mut findings,
                t.line,
                "unsafe",
                "`unsafe` is banned workspace-wide (#![forbid(unsafe_code)])".to_string(),
            );
        }
    }
    if scope.crate_root && !has_forbid_unsafe(toks) {
        push(
            &mut findings,
            1,
            "unsafe",
            "crate root is missing `#![forbid(unsafe_code)]`".to_string(),
        );
    }

    if scope.panic_free {
        lint_panic_free(rel, toks, comments, &mut findings);
    }
    if scope.lock_discipline {
        lint_lock_discipline(rel, toks, comments, registry, &mut findings);
    }
    lint_server_bound_structs(rel, toks, comments, &mut findings);
    if scope.private_api {
        lint_private_api(rel, toks, comments, &mut findings);
    }
    findings
}

fn has_forbid_unsafe(toks: &[Tok]) -> bool {
    toks.windows(8).any(|w| {
        w[0].is_punct('#')
            && w[1].is_punct('!')
            && w[2].is_punct('[')
            && w[3].is_ident("forbid")
            && w[4].is_punct('(')
            && w[5].is_ident("unsafe_code")
            && w[6].is_punct(')')
            && w[7].is_punct(']')
    })
}

pub(crate) fn allowed(comments: &[Comment], line: usize, what: &str) -> bool {
    annotations_above(comments, line)
        .iter()
        .any(|a| matches!(a, Annotation::Allow(k) if k == what))
}

/// Panic-freedom on hostile-input surfaces: no `.unwrap()`/`.expect()`,
/// no panicking macros, no direct indexing.
fn lint_panic_free(rel: &str, toks: &[Tok], comments: &[Comment], findings: &mut Vec<Finding>) {
    let _ = rel;
    for (i, t) in toks.iter().enumerate() {
        let prev = i.checked_sub(1).and_then(|p| toks.get(p));
        let next = toks.get(i + 1);
        if t.kind == TokKind::Ident
            && (t.text == "unwrap" || t.text == "expect")
            && prev.is_some_and(|p| p.is_punct('.'))
            && next.is_some_and(|n| n.is_punct('('))
        {
            if !allowed(comments, t.line, "panic") {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: t.line,
                    rule: "panic",
                    message: format!(
                        "`.{}()` on a hostile-input surface can panic a worker thread; \
                         return a typed error or disconnect instead",
                        t.text
                    ),
                });
            }
        } else if t.kind == TokKind::Ident
            && ["panic", "unreachable", "todo", "unimplemented"].contains(&t.text.as_str())
            && next.is_some_and(|n| n.is_punct('!'))
        {
            if !allowed(comments, t.line, "panic") {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: t.line,
                    rule: "panic",
                    message: format!(
                        "`{}!` on a hostile-input surface; handle the case instead",
                        t.text
                    ),
                });
            }
        } else if t.is_punct('[') {
            // Indexing: `expr[...]` — `[` directly after a value token.
            let indexes = prev.is_some_and(|p| {
                (p.kind == TokKind::Ident && !is_keyword(&p.text))
                    || p.is_punct(')')
                    || p.is_punct(']')
                    || p.is_punct('?')
            });
            if indexes && !allowed(comments, t.line, "panic") {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: t.line,
                    rule: "panic",
                    message: "direct slice indexing can panic on hostile input; \
                              use get()/get_mut() or split_first()"
                        .to_string(),
                });
            }
        }
    }
}

/// Lock discipline: raw `Mutex::new`/`RwLock::new` must carry a
/// `lock(Rank)` annotation naming a registry rank; the tracked wrappers
/// must be constructed with a `LockRank` rank.
fn lint_lock_discipline(
    rel: &str,
    toks: &[Tok],
    comments: &[Comment],
    registry: &[String],
    findings: &mut Vec<Finding>,
) {
    for (i, t) in toks.iter().enumerate() {
        let is_ctor = |name: &str| {
            t.is_ident(name)
                && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
                && toks.get(i + 3).is_some_and(|a| a.is_ident("new"))
        };
        if is_ctor("Mutex") || is_ctor("RwLock") {
            let anns = annotations_above(comments, t.line);
            let lock_ann = anns.iter().find_map(|a| match a {
                Annotation::Lock(name) => Some(name.clone()),
                _ => None,
            });
            match lock_ann {
                None => findings.push(Finding {
                    file: rel.to_string(),
                    line: t.line,
                    rule: "lock",
                    message: format!(
                        "raw `{}::new` outside the lock registry; use \
                         Tracked{} with a LockRank, or annotate \
                         `// lint: lock(Rank)` with a declared rank",
                        t.text, t.text
                    ),
                }),
                Some(name) if !registry.iter().any(|r| r == &name) => {
                    findings.push(Finding {
                        file: rel.to_string(),
                        line: t.line,
                        rule: "lock",
                        message: format!(
                            "lock annotation names `{name}`, which is not declared in \
                             lbsp_core::locks::LockRank ({})",
                            registry.join(", ")
                        ),
                    });
                }
                Some(_) => {}
            }
        }
        let is_tracked = |name: &str| {
            t.is_ident(name)
                && toks.get(i + 1).is_some_and(|a| a.is_punct(':'))
                && toks.get(i + 2).is_some_and(|a| a.is_punct(':'))
                && toks.get(i + 3).is_some_and(|a| a.is_ident("new"))
                && toks.get(i + 4).is_some_and(|a| a.is_punct('('))
        };
        if (is_tracked("TrackedMutex") || is_tracked("TrackedRwLock"))
            && !toks.get(i + 5).is_some_and(|a| a.is_ident("LockRank"))
        {
            findings.push(Finding {
                file: rel.to_string(),
                line: t.line,
                rule: "lock",
                message: format!(
                    "`{}::new` must take a literal `LockRank::...` rank as its \
                     first argument so the acquisition order is auditable",
                    t.text
                ),
            });
        }
    }
}

/// Server-bound struct fields: no exact-location names or types may
/// cross the anonymizer→server boundary; the fixed boundary structs
/// must carry the marker.
fn lint_server_bound_structs(
    rel: &str,
    toks: &[Tok],
    comments: &[Comment],
    findings: &mut Vec<Finding>,
) {
    let mut marked: Vec<(String, usize)> = Vec::new();
    for (i, t) in toks.iter().enumerate() {
        if !t.is_ident("struct") {
            continue;
        }
        let Some(name_tok) = toks.get(i + 1).filter(|n| n.kind == TokKind::Ident) else {
            continue;
        };
        let anchor = item_anchor_line(toks, i);
        let anns = annotations_above(comments, anchor);
        let is_server_bound = anns.contains(&Annotation::ServerBound);
        let is_exempt = anns
            .iter()
            .any(|a| matches!(a, Annotation::Allow(k) if k == "taint"));
        if is_server_bound {
            marked.push((name_tok.text.clone(), name_tok.line));
        }
        if !is_server_bound || is_exempt {
            continue;
        }
        check_struct_fields(rel, toks, i + 2, &name_tok.text, findings);
    }
    for (file, name) in REQUIRED_SERVER_BOUND {
        if rel == *file && !marked.iter().any(|(n, _)| n == name) {
            findings.push(Finding {
                file: rel.to_string(),
                line: 1,
                rule: "taint",
                message: format!(
                    "boundary struct `{name}` must carry a `// lint: server-bound` marker \
                     (it crosses the anonymizer→server boundary)"
                ),
            });
        }
    }
}

/// Scans a struct body starting after its name token at `start` for
/// banned field names and exact-location types.
fn check_struct_fields(
    rel: &str,
    toks: &[Tok],
    mut i: usize,
    struct_name: &str,
    findings: &mut Vec<Finding>,
) {
    // Skip generics.
    let mut angle = 0i64;
    while i < toks.len() {
        if toks[i].is_punct('<') {
            angle += 1;
        } else if toks[i].is_punct('>') {
            angle -= 1;
        } else if angle == 0
            && (toks[i].is_punct('{') || toks[i].is_punct('(') || toks[i].is_punct(';'))
        {
            break;
        }
        i += 1;
    }
    if i >= toks.len() || toks[i].is_punct(';') {
        return;
    }
    let (open, close) = if toks[i].is_punct('{') {
        ('{', '}')
    } else {
        ('(', ')')
    };
    let mut depth = 1;
    let mut j = i + 1;
    let mut expecting_name = open == '{';
    while j < toks.len() && depth > 0 {
        let t = &toks[j];
        if t.is_punct(open) {
            depth += 1;
        } else if t.is_punct(close) {
            depth -= 1;
        } else if depth == 1 && t.kind == TokKind::Ident {
            let next_is_colon = toks.get(j + 1).is_some_and(|n| n.is_punct(':'))
                && !toks.get(j + 2).is_some_and(|n| n.is_punct(':'));
            if expecting_name && next_is_colon {
                let lname = t.text.to_ascii_lowercase();
                if BANNED_FIELD_NAMES.contains(&lname.as_str()) || lname.starts_with("exact") {
                    findings.push(Finding {
                        file: rel.to_string(),
                        line: t.line,
                        rule: "taint",
                        message: format!(
                            "server-bound struct `{struct_name}` has field `{}` — exact \
                             locations and true identities may not cross the \
                             anonymizer→server boundary (only cloaked regions do)",
                            t.text
                        ),
                    });
                }
            } else if BANNED_LOCATION_TYPES.contains(&t.text.as_str()) {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: t.line,
                    rule: "taint",
                    message: format!(
                        "server-bound struct `{struct_name}` embeds exact-location type \
                         `{}`; only Mbr/Rect cloaked regions may cross the boundary",
                        t.text
                    ),
                });
            }
        }
        if depth == 1 && t.is_punct(',') {
            expecting_name = open == '{';
        } else if depth == 1 && t.is_punct(':') {
            expecting_name = false;
        }
        j += 1;
    }
}

/// Private-query API surface: `pub fn` parameters in the server's
/// `private_*` modules may not carry exact locations.
fn lint_private_api(rel: &str, toks: &[Tok], comments: &[Comment], findings: &mut Vec<Finding>) {
    let mut i = 0;
    while i < toks.len() {
        if !(toks[i].is_ident("pub") && toks.get(i + 1).is_some_and(|t| t.is_ident("fn"))) {
            i += 1;
            continue;
        }
        let fn_kw = i + 1;
        let Some(name_tok) = toks.get(fn_kw + 1).filter(|t| t.kind == TokKind::Ident) else {
            i += 1;
            continue;
        };
        let anchor = item_anchor_line(toks, fn_kw);
        if allowed(comments, anchor, "taint") {
            i = fn_kw + 1;
            continue;
        }
        // Scan the parameter list for exact-location types.
        let mut j = fn_kw + 2;
        while j < toks.len() && !toks[j].is_punct('(') {
            j += 1;
        }
        let mut depth = 0i64;
        while j < toks.len() {
            if toks[j].is_punct('(') {
                depth += 1;
            } else if toks[j].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    break;
                }
            } else if toks[j].kind == TokKind::Ident
                && BANNED_LOCATION_TYPES.contains(&toks[j].text.as_str())
            {
                findings.push(Finding {
                    file: rel.to_string(),
                    line: toks[j].line,
                    rule: "taint",
                    message: format!(
                        "private-query API `{}` takes exact-location type `{}`; the \
                         server side of the boundary may only see cloaked regions \
                         (escape client-side refinement with `// lint: allow(taint) -- ...`)",
                        name_tok.text, toks[j].text
                    ),
                });
            }
            j += 1;
        }
        i = j.max(i + 1);
    }
}

// ---------------------------------------------------------------------
// Workspace driver
// ---------------------------------------------------------------------

/// Parses the rank names out of `enum LockRank { ... }` in
/// `crates/core/src/locks.rs`.
pub fn parse_registry(locks_src: &str) -> Vec<String> {
    let lexed = lex(locks_src);
    let toks = &lexed.toks;
    for (i, t) in toks.iter().enumerate() {
        if t.is_ident("enum") && toks.get(i + 1).is_some_and(|n| n.is_ident("LockRank")) {
            let mut names = Vec::new();
            let mut j = i + 2;
            while j < toks.len() && !toks[j].is_punct('{') {
                j += 1;
            }
            j += 1;
            while j < toks.len() && !toks[j].is_punct('}') {
                if toks[j].kind == TokKind::Ident {
                    names.push(toks[j].text.clone());
                }
                j += 1;
            }
            return names;
        }
    }
    Vec::new()
}

/// Recursively collects `.rs` files under `dir`, sorted for stable
/// output.
fn rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?
        .filter_map(|e| e.ok().map(|e| e.path()))
        .collect();
    entries.sort();
    for path in entries {
        if path.is_dir() {
            rust_files(&path, out)?;
        } else if path.extension().is_some_and(|e| e == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

///// The result of a whole-workspace (or whole-source-set) run: the
/// findings plus the structures the semantic passes proved, so tests
/// and tools can assert the proofs are not vacuous.
pub struct Analysis {
    /// All findings, sorted by (file, line, rule).
    pub findings: Vec<Finding>,
    /// Every held→acquired lock-rank edge the static pass derived from
    /// guard liveness and the call graph. The workspace is deadlock-free
    /// by rank order iff every edge is non-descending (checked; any
    /// descending edge or rank cycle is also a finding).
    pub lock_edges: Vec<LockEdge>,
    /// The wire-tag registry parsed from `crates/core/src/wire.rs`:
    /// `(name, value)` in declaration order.
    pub wire_tags: Vec<(String, u8)>,
}

/// Runs the per-file rules *and* the three workspace-wide semantic
/// passes (taint dataflow, lock-order graph, wire conformance) over an
/// in-memory source set. Each entry is `(workspace-relative path,
/// source)`; each file is lexed once and the token stream is shared by
/// every pass. `design` is the DESIGN.md text for the wire-tag table
/// cross-check (skipped when `None`).
pub fn analyze_sources(
    sources: &[(String, String)],
    registry: &[String],
    design: Option<&str>,
) -> Analysis {
    let files: Vec<SourceFile> = sources
        .iter()
        .map(|(rel, src)| SourceFile::parse(rel, src))
        .collect();
    let mut findings = Vec::new();
    for file in &files {
        findings.extend(lint_source_file(file, scope_for(&file.rel), registry));
    }
    let syms = SymbolTable::extract(&files);
    findings.extend(taint_flow::check(&files, &syms));
    let (lock_findings, lock_edges) = lock_graph::check(&files, &syms, registry);
    findings.extend(lock_findings);
    let (wire_findings, wire_tags) = wire_conformance::check(&files, &syms, design);
    findings.extend(wire_findings);
    findings.sort_by(|a, b| (&a.file, a.line, a.rule).cmp(&(&b.file, b.line, b.rule)));
    findings.dedup();
    Analysis {
        findings,
        lock_edges,
        wire_tags,
    }
}

/// Collects the workspace sources rooted at `root` (`src/` plus every
/// `crates/*/src/` tree — vendored stubs, benches, examples, and
/// integration-test directories are out of scope) and runs the full
/// analysis, including the DESIGN.md wire-tag cross-check when the file
/// is present.
pub fn analyze_workspace(root: &Path) -> io::Result<Analysis> {
    let locks_path = root.join("crates/core/src/locks.rs");
    let registry = match fs::read_to_string(&locks_path) {
        Ok(src) => parse_registry(&src),
        Err(e) => {
            return Err(io::Error::new(
                e.kind(),
                format!("cannot read lock registry {}: {e}", locks_path.display()),
            ))
        }
    };
    if registry.is_empty() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "no `enum LockRank` found in crates/core/src/locks.rs",
        ));
    }

    let mut files = Vec::new();
    let src = root.join("src");
    if src.is_dir() {
        rust_files(&src, &mut files)?;
    }
    let crates = root.join("crates");
    if crates.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates)?
            .filter_map(|e| e.ok().map(|e| e.path()))
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            let src = dir.join("src");
            if src.is_dir() {
                rust_files(&src, &mut files)?;
            }
        }
    }

    let mut sources = Vec::with_capacity(files.len());
    for path in files {
        let rel = path
            .strip_prefix(root)
            .unwrap_or(&path)
            .to_string_lossy()
            .replace('\\', "/");
        sources.push((rel, fs::read_to_string(&path)?));
    }
    let design = fs::read_to_string(root.join("DESIGN.md")).ok();
    Ok(analyze_sources(&sources, &registry, design.as_deref()))
}

/// Lints the whole workspace rooted at `root`; the findings half of
/// [`analyze_workspace`], kept as the stable entry point for the CI
/// gate.
pub fn lint_workspace(root: &Path) -> io::Result<Vec<Finding>> {
    Ok(analyze_workspace(root)?.findings)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg() -> Vec<String> {
        vec!["Engine".to_string(), "ResultSink".to_string()]
    }

    #[test]
    fn tokenizer_handles_strings_comments_lifetimes() {
        let lexed =
            lex("fn f<'a>(s: &'a str) { let _ = \"un\\\"wrap\"; /* unwrap() */ let c = '\\n'; }");
        assert!(!lexed.toks.iter().any(|t| t.is_ident("unwrap")));
        assert!(lexed
            .toks
            .iter()
            .any(|t| t.kind == TokKind::Lifetime && t.text == "a"));
    }

    #[test]
    fn test_items_are_stripped() {
        let src = "fn keep() {}\n#[cfg(test)]\nmod tests { fn f() { x.unwrap(); } }\n";
        let f = lint_file(
            "crates/net/src/x.rs",
            src,
            scope_for("crates/net/src/x.rs"),
            &reg(),
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn unwrap_flagged_in_scope_with_line() {
        let src = "fn f(v: Vec<u8>) {\n    let _ = v.first().unwrap();\n}\n";
        let f = lint_file(
            "crates/net/src/frame.rs",
            src,
            scope_for("crates/net/src/frame.rs"),
            &reg(),
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
        assert_eq!(f[0].rule, "panic");
        // Out of scope: same source is clean.
        let f = lint_file(
            "crates/geom/src/point.rs",
            src,
            scope_for("crates/geom/src/point.rs"),
            &reg(),
        );
        assert!(f.is_empty());
    }

    #[test]
    fn indexing_flagged_but_types_and_macros_are_not() {
        let src = "fn f(v: &[u8]) -> [u8; 4] {\n    let _a: [u8; 4] = [0; 4];\n    let _b = vec![1, 2];\n    let _c = v[0];\n    [0; 4]\n}\n";
        let f = lint_file(
            "crates/net/src/frame.rs",
            src,
            scope_for("crates/net/src/frame.rs"),
            &reg(),
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn justified_allow_escapes_and_unjustified_is_reported() {
        let ok = "fn f(v: Vec<u8>) {\n    // lint: allow(panic) -- invariant: v is non-empty by construction\n    let _ = v.first().unwrap();\n}\n";
        let f = lint_file(
            "crates/net/src/frame.rs",
            ok,
            scope_for("crates/net/src/frame.rs"),
            &reg(),
        );
        assert!(f.is_empty(), "{f:?}");
        let bad =
            "fn f(v: Vec<u8>) {\n    // lint: allow(panic)\n    let _ = v.first().unwrap();\n}\n";
        let f = lint_file(
            "crates/net/src/frame.rs",
            bad,
            scope_for("crates/net/src/frame.rs"),
            &reg(),
        );
        assert!(f.iter().any(|x| x.rule == "annotation"), "{f:?}");
    }

    #[test]
    fn raw_lock_requires_registered_annotation() {
        let bare = "fn f() { let _m = std::sync::Mutex::new(0); }";
        let f = lint_file(
            "crates/geom/src/x.rs",
            bare,
            scope_for("crates/geom/src/x.rs"),
            &reg(),
        );
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "lock");

        let annotated =
            "fn f() {\n    // lint: lock(Engine)\n    let _m = std::sync::Mutex::new(0);\n}";
        let f = lint_file(
            "crates/geom/src/x.rs",
            annotated,
            scope_for("crates/geom/src/x.rs"),
            &reg(),
        );
        assert!(f.is_empty(), "{f:?}");

        let unknown =
            "fn f() {\n    // lint: lock(Bogus)\n    let _m = std::sync::Mutex::new(0);\n}";
        let f = lint_file(
            "crates/geom/src/x.rs",
            unknown,
            scope_for("crates/geom/src/x.rs"),
            &reg(),
        );
        assert_eq!(f.len(), 1);
        assert!(f[0].message.contains("Bogus"));
    }

    #[test]
    fn tracked_ctor_requires_literal_rank() {
        let src = "fn f(r: LockRank) { let _m = TrackedMutex::new(r, 0); }";
        let f = lint_file(
            "crates/core/src/x.rs",
            src,
            scope_for("crates/core/src/x.rs"),
            &reg(),
        );
        assert_eq!(f.len(), 1, "{f:?}");
        assert_eq!(f[0].rule, "lock");
        let ok = "fn f() { let _m = TrackedMutex::new(LockRank::Engine, 0); }";
        let f = lint_file(
            "crates/core/src/x.rs",
            ok,
            scope_for("crates/core/src/x.rs"),
            &reg(),
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn server_bound_struct_rejects_point_and_identity_fields() {
        let src = "// lint: server-bound\n#[derive(Debug)]\npub struct Msg {\n    pub pseudonym: u64,\n    pub pos: Point,\n    pub user: u64,\n}\n";
        let f = lint_file(
            "crates/geom/src/m.rs",
            src,
            scope_for("crates/geom/src/m.rs"),
            &reg(),
        );
        assert_eq!(f.len(), 2, "{f:?}");
        assert!(f.iter().all(|x| x.rule == "taint"));
    }

    #[test]
    fn required_marker_enforced_for_boundary_structs() {
        let src = "pub struct RangeQueryMsg { pub region: Rect }\n";
        let f = lint_file(
            "crates/core/src/wire.rs",
            src,
            scope_for("crates/core/src/wire.rs"),
            &reg(),
        );
        assert!(
            f.iter()
                .any(|x| x.rule == "taint" && x.message.contains("server-bound")),
            "{f:?}"
        );
    }

    #[test]
    fn private_api_rejects_point_params_unless_escaped() {
        let src = "pub fn q(store: &Store, p: Point) {}\n";
        let f = lint_file(
            "crates/server/src/private_x.rs",
            src,
            scope_for("crates/server/src/private_x.rs"),
            &reg(),
        );
        assert_eq!(f.len(), 1);
        let ok = "// lint: allow(taint) -- runs client-side on the device\npub fn q(store: &Store, p: Point) {}\n";
        let f = lint_file(
            "crates/server/src/private_x.rs",
            ok,
            scope_for("crates/server/src/private_x.rs"),
            &reg(),
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn crate_root_must_forbid_unsafe() {
        let f = lint_file(
            "crates/geom/src/lib.rs",
            "pub fn f() {}",
            scope_for("crates/geom/src/lib.rs"),
            &reg(),
        );
        assert!(f.iter().any(|x| x.rule == "unsafe"));
        let f = lint_file(
            "crates/geom/src/lib.rs",
            "#![forbid(unsafe_code)]\npub fn f() {}",
            scope_for("crates/geom/src/lib.rs"),
            &reg(),
        );
        assert!(f.is_empty(), "{f:?}");
    }

    #[test]
    fn registry_parses_lockrank_enum() {
        let src = "pub enum LockRank {\n    /// doc\n    A,\n    B,\n}";
        assert_eq!(parse_registry(src), vec!["A".to_string(), "B".to_string()]);
    }
}
