//! CLI entry point: `cargo run -p lbsp-lint [workspace-root] [--json]`.
//!
//! `--json` emits one finding per line as a flat JSON object (plus a
//! trailing summary object), so CI can archive and diff the findings
//! artifact; the human format is the default.
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = I/O or configuration error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let mut json = false;
    let mut root = None;
    for arg in std::env::args().skip(1) {
        if arg == "--json" {
            json = true;
        } else if root.is_none() {
            root = Some(PathBuf::from(arg));
        } else {
            eprintln!("lbsp-lint: usage: lbsp-lint [workspace-root] [--json]");
            return ExitCode::from(2);
        }
    }
    let root = root.unwrap_or_else(|| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")));
    match lbsp_lint::lint_workspace(&root) {
        Ok(findings) => {
            if json {
                for f in &findings {
                    println!("{}", f.to_json());
                }
                println!("{{\"findings\":{}}}", findings.len());
            } else {
                for f in &findings {
                    println!("{f}");
                }
                println!("lbsp-lint: {} finding(s)", findings.len());
            }
            if findings.is_empty() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("lbsp-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
