//! CLI entry point: `cargo run -p lbsp-lint [workspace-root]`.
//!
//! Exit codes: 0 = clean, 1 = findings, 2 = I/O or configuration error.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

fn main() -> ExitCode {
    let root = std::env::args()
        .nth(1)
        .map(PathBuf::from)
        .unwrap_or_else(|| PathBuf::from(concat!(env!("CARGO_MANIFEST_DIR"), "/../..")));
    match lbsp_lint::lint_workspace(&root) {
        Ok(findings) if findings.is_empty() => {
            println!("lbsp-lint: 0 findings");
            ExitCode::SUCCESS
        }
        Ok(findings) => {
            for f in &findings {
                println!("{f}");
            }
            println!("lbsp-lint: {} finding(s)", findings.len());
            ExitCode::FAILURE
        }
        Err(e) => {
            eprintln!("lbsp-lint: error: {e}");
            ExitCode::from(2)
        }
    }
}
