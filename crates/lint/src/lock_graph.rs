//! Static lock-order pass. The runtime `TrackedMutex`/`TrackedRwLock`
//! wrappers panic on rank inversion, but only for the interleavings a
//! debug run happens to exercise. This pass derives the whole-program
//! acquisition graph statically — which ranks can be held when each
//! function acquires another — and proves it acyclic against the
//! declared `LockRank` order, so an inversion is a lint finding before
//! it is ever a 3 a.m. deadlock.
//!
//! Rank assignment for an acquisition site, in precedence order:
//!
//! 1. a `// lint: lock(Rank)` annotation directly above the acquiring
//!    line (needed for closure variables the name scan cannot see);
//! 2. the receiver name, resolved through a workspace-wide map built
//!    from `TrackedMutex::new(LockRank::X, ..)` construction sites and
//!    annotated raw-lock constructions.
//!
//! Unresolvable receivers are skipped — the pass over-approximates
//! flows on what it resolves and stays silent on what it cannot, and
//! the runtime checker still covers the remainder.

use crate::callgraph::{calls_in, qualifier_of, CallSite, Resolver};
use crate::symbols::{SourceFile, SymbolTable};
use crate::{allowed, annotations_above, Annotation, Finding, Tok, TokKind};
use std::collections::{BTreeMap, HashMap, HashSet};

/// One held→acquired edge in the static lock-order graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LockEdge {
    /// Rank held at the acquisition site.
    pub from: String,
    /// Rank acquired while `from` is held.
    pub to: String,
    /// File of the inner acquisition (or the call that leads to it).
    pub file: String,
    /// Line of the inner acquisition (or the call that leads to it).
    pub line: usize,
}

/// One resolved acquisition site inside a function body.
struct Acq {
    rank: String,
    tok: usize,
    line: usize,
    /// Token index one past the region the guard is considered live.
    span_end: usize,
}

pub(crate) fn check(
    files: &[SourceFile],
    syms: &SymbolTable,
    registry: &[String],
) -> (Vec<Finding>, Vec<LockEdge>) {
    let rank_index: HashMap<&str, usize> = registry
        .iter()
        .enumerate()
        .map(|(i, r)| (r.as_str(), i))
        .collect();
    let names = lock_name_map(files);

    // Per-function resolved acquisitions and call sites.
    let mut fn_acqs: Vec<Vec<Acq>> = Vec::with_capacity(syms.fns.len());
    let mut fn_calls: Vec<Vec<CallSite>> = Vec::with_capacity(syms.fns.len());
    for f in &syms.fns {
        match f.body {
            Some(body) => {
                let file = &files[f.file];
                fn_acqs.push(acquisitions(file, body, &names));
                fn_calls.push(calls_in(&file.toks, body));
            }
            None => {
                fn_acqs.push(Vec::new());
                fn_calls.push(Vec::new());
            }
        }
    }

    // May-acquire fixpoint over the resolved call graph: for each
    // function, the ranks it can acquire directly or transitively, with
    // one witness chain of `file:line` hops per rank.
    let resolver = Resolver::build(syms);
    let mut may: Vec<BTreeMap<String, Vec<(String, usize)>>> =
        vec![BTreeMap::new(); syms.fns.len()];
    for (i, f) in syms.fns.iter().enumerate() {
        for a in &fn_acqs[i] {
            may[i]
                .entry(a.rank.clone())
                .or_insert_with(|| vec![(files[f.file].rel.clone(), a.line)]);
        }
    }
    loop {
        let mut changed = false;
        for (i, f) in syms.fns.iter().enumerate() {
            let toks = &files[f.file].toks;
            let mut add: Vec<(String, Vec<(String, usize)>)> = Vec::new();
            for c in &fn_calls[i] {
                // `.lock()`/`.read()`/`.write()` are modelled as direct
                // acquisitions, not calls.
                if matches!(c.callee.as_str(), "lock" | "read" | "write") {
                    continue;
                }
                for &ti in resolver.resolve(qualifier_of(toks, c.tok), f, &c.callee) {
                    for (rank, chain) in &may[ti] {
                        if may[i].contains_key(rank) {
                            continue;
                        }
                        let mut witness = vec![(files[f.file].rel.clone(), c.line)];
                        witness.extend(chain.iter().cloned());
                        add.push((rank.clone(), witness));
                    }
                }
            }
            for (rank, witness) in add {
                if let std::collections::btree_map::Entry::Vacant(e) = may[i].entry(rank) {
                    e.insert(witness);
                    changed = true;
                }
            }
        }
        if !changed {
            break;
        }
    }

    // Edge emission: inside each guard's live span, every direct
    // acquisition and every call's may-acquire set produces an edge.
    let mut findings = Vec::new();
    let mut edges: Vec<LockEdge> = Vec::new();
    let push_edge = |edges: &mut Vec<LockEdge>,
                     findings: &mut Vec<Finding>,
                     file: &SourceFile,
                     from: &str,
                     to: &str,
                     line: usize,
                     via: &[(String, usize)]| {
        let edge = LockEdge {
            from: from.to_string(),
            to: to.to_string(),
            file: file.rel.clone(),
            line,
        };
        if !edges.contains(&edge) {
            edges.push(edge);
        }
        let (Some(&fi), Some(&ti)) = (rank_index.get(from), rank_index.get(to)) else {
            return;
        };
        if ti >= fi || allowed(&file.comments, line, "lock") {
            return;
        }
        let chain = if via.is_empty() {
            String::new()
        } else {
            let hops: Vec<String> = via.iter().map(|(f, l)| format!("{f}:{l}")).collect();
            format!(" via {}", hops.join(" -> "))
        };
        findings.push(Finding {
            file: file.rel.clone(),
            line,
            rule: "lock-order",
            message: format!(
                "acquires `{to}` (rank {ti}) while holding `{from}` (rank {fi}): \
                 declared order requires holding only lower-or-equal ranks{chain}"
            ),
        });
    };

    for (i, f) in syms.fns.iter().enumerate() {
        let file = &files[f.file];
        for a in &fn_acqs[i] {
            for b in &fn_acqs[i] {
                if b.tok > a.tok && b.tok < a.span_end {
                    push_edge(
                        &mut edges,
                        &mut findings,
                        file,
                        &a.rank,
                        &b.rank,
                        b.line,
                        &[],
                    );
                }
            }
            for c in &fn_calls[i] {
                if c.tok <= a.tok || c.tok >= a.span_end {
                    continue;
                }
                if matches!(c.callee.as_str(), "lock" | "read" | "write") {
                    continue;
                }
                for &ti in resolver.resolve(qualifier_of(&file.toks, c.tok), f, &c.callee) {
                    for (rank, chain) in &may[ti] {
                        push_edge(
                            &mut edges,
                            &mut findings,
                            file,
                            &a.rank,
                            rank,
                            c.line,
                            chain,
                        );
                    }
                }
            }
        }
    }

    findings.extend(cycle_findings(&edges, registry));
    (findings, edges)
}

/// Reports every simple cycle among distinct ranks (a cycle necessarily
/// contains a descending edge, so these supplement the per-edge
/// findings with the full deadlock path).
fn cycle_findings(edges: &[LockEdge], registry: &[String]) -> Vec<Finding> {
    let mut adj: BTreeMap<&str, Vec<&LockEdge>> = BTreeMap::new();
    for e in edges {
        if e.from != e.to {
            adj.entry(e.from.as_str()).or_default().push(e);
        }
    }
    let mut findings = Vec::new();
    let mut reported: HashSet<Vec<&str>> = HashSet::new();
    // Bounded DFS from each declared rank; the rank set is tiny.
    for start in registry {
        let mut stack: Vec<(&str, Vec<&LockEdge>)> = vec![(start.as_str(), Vec::new())];
        while let Some((node, path)) = stack.pop() {
            if path.len() > registry.len() {
                continue;
            }
            for e in adj.get(node).map_or(&[][..], |v| v) {
                if e.to == *start {
                    let mut cycle: Vec<&str> = path.iter().map(|p| p.from.as_str()).collect();
                    cycle.push(e.from.as_str());
                    let mut key = cycle.clone();
                    key.sort_unstable();
                    key.dedup();
                    if key.len() < 2 || !reported.insert(key) {
                        continue;
                    }
                    let mut full = path.clone();
                    full.push(e);
                    let ranks: Vec<&str> = cycle.iter().copied().chain([start.as_str()]).collect();
                    let sites: Vec<String> = full
                        .iter()
                        .map(|e| format!("{}:{}", e.file, e.line))
                        .collect();
                    findings.push(Finding {
                        file: full[0].file.clone(),
                        line: full[0].line,
                        rule: "lock-order",
                        message: format!(
                            "potential deadlock: lock-rank cycle {} (witness sites: {})",
                            ranks.join(" -> "),
                            sites.join(", ")
                        ),
                    });
                } else if !path.iter().any(|p| p.from == e.to) && e.to != *start {
                    let mut next = path.clone();
                    next.push(e);
                    stack.push((e.to.as_str(), next));
                }
            }
        }
    }
    findings
}

/// Workspace-wide receiver-name → rank map from construction sites.
fn lock_name_map(files: &[SourceFile]) -> HashMap<String, String> {
    let mut map = HashMap::new();
    for file in files {
        let toks = &file.toks;
        let n = toks.len();
        for i in 0..n {
            let t = &toks[i];
            let tracked = t.is_ident("TrackedMutex") || t.is_ident("TrackedRwLock");
            let raw = t.is_ident("Mutex") || t.is_ident("RwLock");
            if !tracked && !raw {
                continue;
            }
            if !(toks.get(i + 1).is_some_and(|x| x.is_punct(':'))
                && toks.get(i + 2).is_some_and(|x| x.is_punct(':'))
                && toks.get(i + 3).is_some_and(|x| x.is_ident("new")))
            {
                continue;
            }
            // Rank: the `LockRank::X` first argument, or a
            // `lint: lock(Rank)` annotation above a raw construction.
            let rank = if tracked {
                (i..n.min(i + 10)).find_map(|j| {
                    (toks[j].is_ident("LockRank")
                        && toks.get(j + 1).is_some_and(|x| x.is_punct(':'))
                        && toks.get(j + 2).is_some_and(|x| x.is_punct(':')))
                    .then(|| toks.get(j + 3))
                    .flatten()
                    .map(|x| x.text.clone())
                })
            } else {
                annotations_above(&file.comments, t.line)
                    .into_iter()
                    .find_map(|a| match a {
                        Annotation::Lock(name) => Some(name),
                        _ => None,
                    })
            };
            let Some(rank) = rank else { continue };
            if let Some(name) = binding_name_before(toks, i) {
                map.insert(name, rank);
            }
        }
    }
    map
}

/// Walks backward from a construction site to the name it is bound to:
/// `name: <ctor>` (struct field init or declaration), `let [mut] name`,
/// or `x.name = <ctor>`. Stops at the statement boundary.
fn binding_name_before(toks: &[Tok], ctor: usize) -> Option<String> {
    let mut p = ctor;
    let mut steps = 0;
    while p > 0 && steps < 80 {
        p -= 1;
        steps += 1;
        let t = &toks[p];
        if t.is_punct(';') {
            return None;
        }
        if t.kind != TokKind::Ident || crate::is_keyword(&t.text) || t.text == "_" {
            continue;
        }
        let next_colon = toks.get(p + 1).is_some_and(|x| x.is_punct(':'))
            && !toks.get(p + 2).is_some_and(|x| x.is_punct(':'))
            && !(p > 0 && toks[p - 1].is_punct(':'));
        let after_let = p > 0
            && (toks[p - 1].is_ident("let")
                || (toks[p - 1].is_ident("mut") && p > 1 && toks[p - 2].is_ident("let")));
        let field_assign =
            toks.get(p + 1).is_some_and(|x| x.is_punct('=')) && p > 0 && toks[p - 1].is_punct('.');
        if next_colon || after_let || field_assign {
            return Some(t.text.clone());
        }
    }
    None
}

/// Resolved acquisition sites (`.lock(` / `.read(` / `.write(`) in a
/// function body, with guard-liveness spans.
fn acquisitions(
    file: &SourceFile,
    body: (usize, usize),
    names: &HashMap<String, String>,
) -> Vec<Acq> {
    let toks = &file.toks;
    let (start, end) = body;
    let mut out = Vec::new();
    for i in start..end.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokKind::Ident || !matches!(t.text.as_str(), "lock" | "read" | "write") {
            continue;
        }
        let is_method_call =
            i > 0 && toks[i - 1].is_punct('.') && toks.get(i + 1).is_some_and(|x| x.is_punct('('));
        if !is_method_call {
            continue;
        }
        // Annotation override first (closure variables and tuple fields
        // have no resolvable receiver name), then the receiver name.
        let annotated = annotations_above(&file.comments, t.line)
            .into_iter()
            .find_map(|a| match a {
                Annotation::Lock(name) => Some(name),
                _ => None,
            });
        let rank = match annotated {
            Some(r) => r,
            None => {
                let recv = i
                    .checked_sub(2)
                    .and_then(|p| toks.get(p))
                    .filter(|r| r.kind == TokKind::Ident);
                match recv.and_then(|r| names.get(&r.text)) {
                    Some(r) => r.clone(),
                    None => continue,
                }
            }
        };
        out.push(Acq {
            rank,
            tok: i,
            line: t.line,
            span_end: guard_span_end(toks, i, end),
        });
    }
    out
}

/// One past the last token where the guard from the acquisition at
/// `acq` is live: end of the enclosing block for a `let`-bound guard,
/// end of the statement for a temporary. A chained call on the guard
/// (`x.lock().recv()`) consumes it within the expression — the binding,
/// if any, holds the chain's result, not the guard — so it counts as a
/// temporary even under `let`.
fn guard_span_end(toks: &[Tok], acq: usize, body_end: usize) -> usize {
    let chained = {
        let mut depth = 0i64;
        let mut j = acq + 1;
        let mut after = None;
        while j < body_end {
            if toks[j].is_punct('(') {
                depth += 1;
            } else if toks[j].is_punct(')') {
                depth -= 1;
                if depth == 0 {
                    after = Some(j + 1);
                    break;
                }
            }
            j += 1;
        }
        after
            .and_then(|a| toks.get(a))
            .is_some_and(|t| t.is_punct('.'))
    };
    let let_bound = !chained && {
        let mut p = acq;
        let mut found = false;
        while p > 0 {
            p -= 1;
            let t = &toks[p];
            if t.is_punct(';') || t.is_punct('{') || t.is_punct('}') {
                break;
            }
            if t.is_ident("let") {
                found = true;
                break;
            }
        }
        found
    };
    let mut depth = 0i64;
    let mut j = acq;
    while j < body_end {
        let t = &toks[j];
        if t.is_punct('{') {
            depth += 1;
        } else if t.is_punct('}') {
            depth -= 1;
            if depth < 0 {
                return j;
            }
        } else if !let_bound && depth == 0 && t.is_punct(';') {
            return j;
        }
        j += 1;
    }
    body_end
}
