//! Call-site extraction and call-target resolution for the
//! interprocedural passes. Extraction is purely lexical: an identifier
//! immediately followed by `(` is a call site. Macros never match (the
//! `!` sits between the name and the paren), and `fn` declarations are
//! excluded by looking one token back.
//!
//! Resolution is name-based but scoped: a qualified call `Q::f` binds
//! to the workspace `impl Q` functions named `f`; an unqualified call
//! prefers same-file functions, then falls back to every function of
//! that name anywhere. The fallback keeps the passes conservative
//! (over-approximate, never miss a resolved flow) while the two
//! preferred tiers stop ubiquitous names like `new` or `len` from
//! unioning unrelated summaries across the workspace.

use crate::symbols::{FnSym, SymbolTable};
use crate::{is_keyword, Tok, TokKind};
use std::collections::HashMap;

/// One syntactic call site inside a function body.
pub(crate) struct CallSite {
    pub(crate) callee: String,
    /// Token index of the callee identifier.
    pub(crate) tok: usize,
    pub(crate) line: usize,
}

/// All call sites in `toks[range.0..range.1]`.
pub(crate) fn calls_in(toks: &[Tok], range: (usize, usize)) -> Vec<CallSite> {
    let mut out = Vec::new();
    let (start, end) = range;
    for i in start..end.min(toks.len()) {
        let t = &toks[i];
        if t.kind != TokKind::Ident || is_keyword(&t.text) {
            continue;
        }
        if !toks.get(i + 1).is_some_and(|n| n.is_punct('(')) {
            continue;
        }
        if i > 0 && toks[i - 1].is_ident("fn") {
            continue;
        }
        out.push(CallSite {
            callee: t.text.clone(),
            tok: i,
            line: t.line,
        });
    }
    out
}

/// The `Q` of a `Q::f(` call whose callee identifier sits at `idx`.
pub(crate) fn qualifier_of(toks: &[Tok], idx: usize) -> Option<&str> {
    (idx >= 3
        && toks[idx - 1].is_punct(':')
        && toks[idx - 2].is_punct(':')
        && toks[idx - 3].kind == TokKind::Ident)
        .then(|| toks[idx - 3].text.as_str())
}

/// Method names every std container answers. A call to one of these
/// almost always targets `Vec`/`HashMap`/slice — not the workspace type
/// that happens to share the name — so they resolve through the owner
/// and same-file tiers only, never the whole-workspace fallback
/// (`buf.len()` must not inherit the summary of a grid's `len`).
const UBIQUITOUS: &[&str] = &[
    "new",
    "default",
    "from",
    "into",
    "clone",
    "iter",
    "iter_mut",
    "into_iter",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "insert",
    "remove",
    "push",
    "pop",
    "contains",
    "contains_key",
    "clear",
    "drain",
    "map",
    "sum",
    "min",
    "max",
    "next",
    "cmp",
    "eq",
    "fmt",
    "hash",
    "drop",
    "extend",
    "as_ref",
    "as_mut",
    "flush",
];

/// Call-target resolution with qualifier > same-file > whole-workspace
/// preference. An uppercase path qualifier that matches no workspace
/// impl resolves to nothing — it names a foreign type, and inheriting
/// an unrelated same-named function's summary would only add noise.
/// Lowercase qualifiers are module paths and fall through to the
/// name-based tiers; `Self::` resolves against the caller's own impl.
pub(crate) struct Resolver {
    by_owner: HashMap<(String, String), Vec<usize>>,
    by_file: HashMap<(usize, String), Vec<usize>>,
    by_name: HashMap<String, Vec<usize>>,
}

impl Resolver {
    pub(crate) fn build(syms: &SymbolTable) -> Resolver {
        let mut by_owner: HashMap<(String, String), Vec<usize>> = HashMap::new();
        let mut by_file: HashMap<(usize, String), Vec<usize>> = HashMap::new();
        let mut by_name: HashMap<String, Vec<usize>> = HashMap::new();
        for (i, f) in syms.fns.iter().enumerate() {
            if let Some(o) = &f.owner {
                by_owner
                    .entry((o.clone(), f.name.clone()))
                    .or_default()
                    .push(i);
            }
            by_file.entry((f.file, f.name.clone())).or_default().push(i);
            by_name.entry(f.name.clone()).or_default().push(i);
        }
        Resolver {
            by_owner,
            by_file,
            by_name,
        }
    }

    /// Symbol indices a call to `name` (qualified by `qualifier`, made
    /// from inside `caller`) can reach.
    pub(crate) fn resolve(&self, qualifier: Option<&str>, caller: &FnSym, name: &str) -> &[usize] {
        let q = match qualifier {
            Some("Self") => caller.owner.as_deref(),
            other => other,
        };
        if let Some(q) = q {
            if q.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
                return self
                    .by_owner
                    .get(&(q.to_string(), name.to_string()))
                    .map_or(&[], Vec::as_slice);
            }
        }
        if let Some(v) = self.by_file.get(&(caller.file, name.to_string())) {
            return v;
        }
        if UBIQUITOUS.contains(&name) {
            return &[];
        }
        self.by_name.get(name).map_or(&[], Vec::as_slice)
    }
}
