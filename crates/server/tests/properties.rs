//! Property-based tests of the query-processor guarantees.
//!
//! The headline invariants: private-query candidate sets are sound for
//! *every* possible user position inside the cloak; probabilistic count
//! answers are coherent (interval brackets reality, PDF is a
//! distribution whose mean is the expected count); public NN pruning
//! never discards a possible winner.

use lbsp_geom::{uniform_point_in_rect, Point, Rect};
use lbsp_server::{
    private_nn_candidates, private_range_candidates, refine_nn, refine_range, PoissonBinomial,
    PrivateRecord, PrivateStore, PublicCountQuery, PublicNnQuery, PublicObject, PublicStore,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

prop_compose! {
    fn upoint()(x in 0.0f64..1.0, y in 0.0f64..1.0) -> Point {
        Point::new(x, y)
    }
}

prop_compose! {
    fn urect()(x0 in 0.0f64..0.9, y0 in 0.0f64..0.9, w in 0.001f64..0.3, h in 0.001f64..0.3) -> Rect {
        Rect::new_unchecked(x0, y0, (x0 + w).min(1.0), (y0 + h).min(1.0))
    }
}

fn store_of(pts: &[Point]) -> PublicStore {
    PublicStore::bulk_load(
        pts.iter()
            .enumerate()
            .map(|(i, p)| PublicObject::new(i as u64, *p, 0))
            .collect(),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn private_range_candidates_are_sound_and_tight(
        pts in prop::collection::vec(upoint(), 1..150),
        cloak in urect(),
        radius in 0.0f64..0.3,
        seed in 0u64..1000,
    ) {
        let store = store_of(&pts);
        let candidates = private_range_candidates(&store, &cloak, radius);
        // Soundness at random in-cloak positions.
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..25 {
            let pos = uniform_point_in_rect(&mut rng, &cloak);
            let exact: Vec<u64> = pts
                .iter()
                .enumerate()
                .filter(|(_, p)| p.dist(pos) <= radius)
                .map(|(i, _)| i as u64)
                .collect();
            for id in &exact {
                prop_assert!(candidates.iter().any(|c| c.id == *id));
            }
            prop_assert_eq!(refine_range(&candidates, pos, radius).len(), exact.len());
        }
        // Tightness: every candidate is within radius of the cloak.
        for c in &candidates {
            prop_assert!(
                lbsp_geom::min_dist_point_rect(c.pos, &cloak) <= radius + 1e-9
            );
        }
    }

    #[test]
    fn private_nn_candidates_are_sound(
        pts in prop::collection::vec(upoint(), 1..120),
        cloak in urect(),
        seed in 0u64..1000,
    ) {
        let store = store_of(&pts);
        let candidates = private_nn_candidates(&store, &cloak);
        prop_assert!(!candidates.is_empty());
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..40 {
            let pos = uniform_point_in_rect(&mut rng, &cloak);
            let best = pts
                .iter()
                .map(|p| p.dist(pos))
                .fold(f64::INFINITY, f64::min);
            let refined = refine_nn(&candidates, pos).unwrap();
            prop_assert!(
                (refined.pos.dist(pos) - best).abs() < 1e-9,
                "candidate refinement must equal the true NN distance"
            );
        }
    }

    #[test]
    fn count_answer_is_coherent(
        regions in prop::collection::vec(urect(), 0..60),
        q in urect(),
    ) {
        let mut store = PrivateStore::new();
        for (i, r) in regions.iter().enumerate() {
            store.upsert(PrivateRecord::new(i as u64, *r));
        }
        let ans = PublicCountQuery::new(q).evaluate(&store);
        prop_assert!(ans.certain <= ans.possible);
        prop_assert!(ans.expected >= ans.certain as f64 - 1e-9);
        prop_assert!(ans.expected <= ans.possible as f64 + 1e-9);
        // The PDF is a distribution with the right mean.
        let total: f64 = ans.pdf.pmf_vec().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!((ans.pdf.mean() - ans.expected).abs() < 1e-6);
        // Counts below `certain` or above `possible` are impossible.
        for k in 0..ans.certain {
            prop_assert!(ans.probability_of(k) < 1e-9);
        }
        prop_assert!(ans.probability_of(ans.possible + 1) == 0.0);
    }

    #[test]
    fn count_interval_brackets_any_consistent_reality(
        positions in prop::collection::vec(upoint(), 1..60),
        k_half in 0.001f64..0.2,
        q in urect(),
    ) {
        // Build cloaks that truly contain their subject (centered
        // squares, clamped), then check the interval brackets the true
        // count — the scenario a deployed server faces.
        let world = Rect::new_unchecked(0.0, 0.0, 1.0, 1.0);
        let mut store = PrivateStore::new();
        for (i, p) in positions.iter().enumerate() {
            let cloak = Rect::centered_square(*p, k_half).unwrap().clamped_to(&world);
            store.upsert(PrivateRecord::new(i as u64, cloak));
        }
        let truth = positions.iter().filter(|p| q.contains_point(**p)).count();
        let ans = PublicCountQuery::new(q).evaluate(&store);
        prop_assert!(ans.certain <= truth, "certain {} > truth {}", ans.certain, truth);
        prop_assert!(truth <= ans.possible, "truth {} > possible {}", truth, ans.possible);
    }

    #[test]
    fn poisson_binomial_is_a_distribution(
        probs in prop::collection::vec(0.0f64..=1.0, 0..80),
    ) {
        let d = PoissonBinomial::new(&probs);
        let total: f64 = d.pmf_vec().iter().sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
        let expected: f64 = probs.iter().sum();
        prop_assert!((d.mean() - expected).abs() < 1e-6);
        prop_assert_eq!(d.trials(), probs.len());
        // Survival function is monotone decreasing.
        for k in 0..probs.len() {
            prop_assert!(d.sf(k) >= d.sf(k + 1) - 1e-12);
        }
    }

    #[test]
    fn continuous_nn_monitor_equals_one_shot_under_any_stream(
        updates in prop::collection::vec((0u64..12, urect()), 1..60),
        from in upoint(),
    ) {
        use lbsp_server::ContinuousNnMonitor;
        let mut store = PrivateStore::new();
        let mut monitor = ContinuousNnMonitor::new(from, std::iter::empty());
        for (id, r) in updates {
            store.upsert(PrivateRecord::new(id, r));
            monitor.on_update(id, Some(&r));
            let mut expect: Vec<u64> = PublicNnQuery::new(from)
                .candidate_records(&store)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            expect.sort_unstable();
            prop_assert_eq!(monitor.candidates(), expect);
        }
    }

    #[test]
    fn continuous_nn_monitor_equals_from_scratch_under_adversarial_churn(
        // Rects drawn from a pool of 4 so identical bands (threshold
        // ties) recur constantly; ops interleave updates, departures and
        // re-insertions of the same few pseudonyms, repeatedly removing
        // whichever record holds the pruning threshold.
        ops in prop::collection::vec((0u64..6, 0usize..5), 1..120),
        from in upoint(),
        pool in prop::collection::vec(urect(), 4..5),
    ) {
        use lbsp_server::ContinuousNnMonitor;
        use std::collections::HashMap;
        let mut model: HashMap<u64, Rect> = HashMap::new();
        let mut monitor = ContinuousNnMonitor::new(from, std::iter::empty());
        for (id, pick) in ops {
            if pick == 4 {
                // Departure (of the threshold holder as often as not,
                // since ids repeat); departing a ghost must be a no-op.
                model.remove(&id);
                monitor.on_update(id, None);
            } else {
                let r = pool[pick];
                model.insert(id, r);
                monitor.on_update(id, Some(&r));
            }
            // The incrementally maintained candidate set must equal a
            // monitor rebuilt from scratch after *every* step.
            let fresh = ContinuousNnMonitor::new(from, model.iter().map(|(&i, &r)| (i, r)));
            prop_assert_eq!(monitor.candidates(), fresh.candidates());
            prop_assert_eq!(monitor.tracked(), model.len());
        }
    }

    #[test]
    fn public_nn_pruning_never_discards_a_possible_winner(
        regions in prop::collection::vec(urect(), 1..40),
        from in upoint(),
        seed in 0u64..500,
    ) {
        let mut store = PrivateStore::new();
        for (i, r) in regions.iter().enumerate() {
            store.upsert(PrivateRecord::new(i as u64, *r));
        }
        let query = PublicNnQuery::new(from).with_seed(seed);
        let kept: std::collections::HashSet<u64> = query
            .candidate_records(&store)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        // Simulate true positions; the winner must always have been kept.
        let mut rng = StdRng::seed_from_u64(seed ^ 0xABCD);
        for _ in 0..50 {
            let mut best = (f64::INFINITY, 0u64);
            for (i, r) in regions.iter().enumerate() {
                let p = uniform_point_in_rect(&mut rng, r);
                let d = from.dist(p);
                if d < best.0 {
                    best = (d, i as u64);
                }
            }
            prop_assert!(
                kept.contains(&best.1),
                "winner {} was pruned (kept: {:?})",
                best.1,
                kept
            );
        }
        // Probabilities sum to ~1.
        let ans = query.evaluate(&store);
        prop_assert!((ans.total_probability() - 1.0).abs() < 1e-9);
    }
}
