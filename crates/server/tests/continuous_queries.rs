//! Integration tests for server-side continuous query evaluation
//! (`lbsp_server::continuous`): the register → incremental
//! re-evaluation on movement → deregister lifecycle, checked against
//! from-scratch snapshot queries at every step.

use lbsp_geom::{Point, Rect};
use lbsp_server::{
    ContinuousNnMonitor, ContinuousRangeCount, PrivateRecord, PrivateStore, PublicCountQuery,
    PublicNnQuery,
};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
    Rect::new_unchecked(x0, y0, x1, y1)
}

fn random_cloak(rng: &mut StdRng) -> Rect {
    let x0: f64 = rng.random_range(0.0..0.85);
    let y0: f64 = rng.random_range(0.0..0.85);
    let w: f64 = rng.random_range(0.02..0.15);
    let h: f64 = rng.random_range(0.02..0.15);
    rect(x0, y0, (x0 + w).min(1.0), (y0 + h).min(1.0))
}

/// A churning population — arrivals, movement, departures — against
/// three standing areas: the incrementally-maintained expected count
/// and interval equal a from-scratch evaluation after every update.
#[test]
fn incremental_equals_snapshot_under_churn() {
    let mut rng = StdRng::seed_from_u64(4242);
    let mut store = PrivateStore::new();
    let mut cont = ContinuousRangeCount::new();
    let areas = [
        rect(0.0, 0.0, 0.3, 0.3),
        rect(0.2, 0.2, 0.8, 0.8),
        rect(0.7, 0.0, 1.0, 1.0),
    ];
    let qs: Vec<_> = areas
        .iter()
        .map(|a| cont.register(*a, std::iter::empty()))
        .collect();

    for step in 0..400u64 {
        let id = rng.random_range(0..40u64);
        let departs = rng.random_range(0..10u32) == 0;
        if departs {
            if let Some(old) = store.remove(id) {
                cont.on_update(id, Some(&old), None);
            } else {
                cont.on_update(id, None, None);
            }
        } else {
            let region = random_cloak(&mut rng);
            let old = store.upsert(PrivateRecord::new(id, region));
            cont.on_update(id, old.as_ref(), Some(&region));
        }
        for (q, area) in qs.iter().zip(&areas) {
            let full = PublicCountQuery::new(*area).evaluate(&store);
            let inc = cont.expected(*q).unwrap();
            assert!(
                (full.expected - inc).abs() < 1e-9,
                "step {step}: incremental {inc} vs full {}",
                full.expected
            );
            let (certain, possible) = cont.interval(*q).unwrap();
            assert_eq!(possible, full.possible, "step {step}");
            assert!(certain <= possible, "step {step}");
        }
    }
    assert_eq!(cont.updates_processed(), 400);
}

/// Registering mid-stream seeds the query from the records already in
/// the store — a late subscriber sees the same count as one registered
/// from the start.
#[test]
fn late_registration_seeds_from_current_records() {
    let mut rng = StdRng::seed_from_u64(7);
    let mut store = PrivateStore::new();
    let mut cont = ContinuousRangeCount::new();
    let area = rect(0.25, 0.25, 0.75, 0.75);
    let early = cont.register(area, std::iter::empty());

    for id in 0..25u64 {
        let region = random_cloak(&mut rng);
        let old = store.upsert(PrivateRecord::new(id, region));
        cont.on_update(id, old.as_ref(), Some(&region));
    }
    let late = cont.register(area, store.iter().map(|r| (r.pseudonym, r.region)));
    assert!(
        (cont.expected(early).unwrap() - cont.expected(late).unwrap()).abs() < 1e-9,
        "late subscriber must agree with the early one"
    );
    assert_eq!(cont.interval(early), cont.interval(late));

    // And they keep agreeing as the population moves on.
    for id in 0..25u64 {
        let region = random_cloak(&mut rng);
        let old = store.upsert(PrivateRecord::new(id, region));
        cont.on_update(id, old.as_ref(), Some(&region));
    }
    assert!((cont.expected(early).unwrap() - cont.expected(late).unwrap()).abs() < 1e-9);
}

/// Deregistration removes the query immediately; surviving queries keep
/// being maintained and query ids are never recycled.
#[test]
fn deregistration_stops_maintenance() {
    let mut cont = ContinuousRangeCount::new();
    let area = rect(0.0, 0.0, 1.0, 1.0);
    let q1 = cont.register(area, std::iter::empty());
    let q2 = cont.register(area, std::iter::empty());

    let r = rect(0.4, 0.4, 0.6, 0.6);
    cont.on_update(1, None, Some(&r));
    assert!((cont.expected(q1).unwrap() - 1.0).abs() < 1e-12);

    assert!(cont.deregister(q1));
    assert!(!cont.deregister(q1));
    assert_eq!(cont.expected(q1), None);
    assert_eq!(cont.len(), 1);

    // q2 still tracks updates after q1 is gone.
    cont.on_update(2, None, Some(&r));
    assert!((cont.expected(q2).unwrap() - 2.0).abs() < 1e-12);

    let q3 = cont.register(area, std::iter::empty());
    assert_ne!(q3, q1, "ids are not recycled");
    assert_ne!(q3, q2);
}

/// The PDF derived from the maintained contributions matches a snapshot
/// evaluation even after records both entered and left the area.
#[test]
fn pdf_stays_consistent_after_movement() {
    let area = rect(0.0, 0.0, 0.5, 0.5);
    let mut store = PrivateStore::new();
    let mut cont = ContinuousRangeCount::new();
    let q = cont.register(area, std::iter::empty());

    // Three records: inside, straddling, then one moves fully outside.
    let placements = [
        (0u64, rect(0.1, 0.1, 0.2, 0.2)),
        (1, rect(0.4, 0.4, 0.6, 0.6)),
        (2, rect(0.2, 0.2, 0.3, 0.3)),
        (2, rect(0.7, 0.7, 0.9, 0.9)), // record 2 leaves the area
    ];
    for (id, region) in placements {
        let old = store.upsert(PrivateRecord::new(id, region));
        cont.on_update(id, old.as_ref(), Some(&region));
    }
    let snapshot = PublicCountQuery::new(area).evaluate(&store);
    let live = cont.pdf(q).unwrap();
    for k in 0..=3 {
        assert!(
            (snapshot.pdf.pmf(k) - live.pmf(k)).abs() < 1e-9,
            "pmf({k}) diverged"
        );
    }
}

/// The continuous NN monitor tracks a moving population with arrivals
/// and departures, and its candidate set equals the one-shot pruning
/// query at every step.
#[test]
fn nn_monitor_lifecycle_under_churn() {
    let mut rng = StdRng::seed_from_u64(314);
    let from = Point::new(0.5, 0.5);
    let mut store = PrivateStore::new();
    let mut monitor = ContinuousNnMonitor::new(from, std::iter::empty());

    for step in 0..250u64 {
        let id = rng.random_range(0..20u64);
        if rng.random_range(0..8u32) == 0 {
            store.remove(id);
            monitor.on_update(id, None);
        } else {
            let region = random_cloak(&mut rng);
            store.upsert(PrivateRecord::new(id, region));
            monitor.on_update(id, Some(&region));
        }
        let mut expect: Vec<_> = PublicNnQuery::new(from)
            .candidate_records(&store)
            .into_iter()
            .map(|(id, _)| id)
            .collect();
        expect.sort_unstable();
        assert_eq!(monitor.candidates(), expect, "step {step}");
        assert_eq!(monitor.tracked(), store.len(), "step {step}");
    }
    assert_eq!(
        monitor.fast_updates + monitor.recomputes,
        250,
        "every update took exactly one path"
    );
}
