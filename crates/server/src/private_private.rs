//! Private queries over private data — the fourth cell of the paper's
//! query matrix (Sec. 6.1).
//!
//! "At the other end of the spectrum, private queries over private data
//! can be reduced to any of the above two query types." Both sides are
//! cloaked: the querying user is a rectangle `Q` and every candidate
//! user is a rectangle too ("find my nearest *friend*", "how many of my
//! contacts are within a mile of me"). The reduction works exactly as
//! the paper suggests: the pruning logic of the public-over-private
//! queries (Fig. 6) lifts from point-to-rectangle distances to
//! rectangle-to-rectangle distances, and the probabilistic answers keep
//! the same uniform-position model, now applied to *both* positions.

use crate::{PrivateStore, PseudonymId};
use lbsp_geom::{max_dist_rect_rect, min_dist_rect_rect, uniform_point_in_rect, Rect};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One candidate's probability of being the nearest private user to the
/// (cloaked) querying user.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivateNnProbability {
    /// The candidate's pseudonym.
    pub pseudonym: PseudonymId,
    /// Estimated `P(this user is nearest to the querying user)`.
    pub probability: f64,
    /// Closest possible distance between the two cloaks.
    pub min_dist: f64,
    /// Farthest possible distance between the two cloaks.
    pub max_dist: f64,
}

/// Answer to a private-over-private NN query.
#[derive(Debug, Clone, PartialEq)]
pub struct PrivatePrivateNnAnswer {
    /// Candidates sorted by descending probability.
    pub candidates: Vec<PrivateNnProbability>,
}

impl PrivatePrivateNnAnswer {
    /// The most probable nearest user.
    pub fn most_probable(&self) -> Option<PseudonymId> {
        self.candidates.first().map(|c| c.pseudonym)
    }

    /// Total probability mass (≈ 1 when any candidate exists).
    pub fn total_probability(&self) -> f64 {
        self.candidates.iter().map(|c| c.probability).sum()
    }
}

/// A private NN query over private data: the querying user is known
/// only as the cloak `from`, every other user only as their cloak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivatePrivateNnQuery {
    /// The querying user's cloaked region.
    pub from: Rect,
    /// The querying user's pseudonym, excluded from candidacy (you are
    /// not your own nearest friend).
    pub querier: PseudonymId,
    /// Monte-Carlo rounds.
    pub samples: u32,
    /// RNG seed.
    pub seed: u64,
}

impl PrivatePrivateNnQuery {
    /// Creates a query with default estimation parameters.
    pub fn new(from: Rect, querier: PseudonymId) -> PrivatePrivateNnQuery {
        PrivatePrivateNnQuery {
            from,
            querier,
            samples: 4096,
            seed: 0x9E9D,
        }
    }

    /// Overrides the Monte-Carlo sample count.
    pub fn with_samples(mut self, samples: u32) -> PrivatePrivateNnQuery {
        self.samples = samples.max(1);
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> PrivatePrivateNnQuery {
        self.seed = seed;
        self
    }

    /// Rect-to-rect lift of the paper's Fig. 6b pruning rule: a record
    /// survives unless some other record's *max* distance to the query
    /// cloak is below its *min* distance — then that other user is
    /// closer for every pair of possible positions.
    pub fn candidate_records(&self, store: &PrivateStore) -> Vec<(PseudonymId, Rect)> {
        let records: Vec<(PseudonymId, Rect)> = store
            .iter()
            .filter(|r| r.pseudonym != self.querier)
            .map(|r| (r.pseudonym, r.region))
            .collect();
        if records.is_empty() {
            return Vec::new();
        }
        let best_max = records
            .iter()
            .map(|(_, r)| max_dist_rect_rect(&self.from, r))
            .fold(f64::INFINITY, f64::min);
        records
            .into_iter()
            .filter(|(_, r)| min_dist_rect_rect(&self.from, r) <= best_max)
            .collect()
    }

    /// Evaluates the query: prune, then jointly sample both the querier's
    /// and every candidate's position per Monte-Carlo round.
    pub fn evaluate(&self, store: &PrivateStore) -> PrivatePrivateNnAnswer {
        let candidates = self.candidate_records(store);
        if candidates.is_empty() {
            return PrivatePrivateNnAnswer {
                candidates: Vec::new(),
            };
        }
        let mut wins = vec![0u32; candidates.len()];
        let mut rng = StdRng::seed_from_u64(self.seed);
        for _ in 0..self.samples {
            let q = uniform_point_in_rect(&mut rng, &self.from);
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (i, (_, region)) in candidates.iter().enumerate() {
                let p = uniform_point_in_rect(&mut rng, region);
                let d = q.dist_sq(p);
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
            wins[best] += 1;
        }
        let mut out: Vec<PrivateNnProbability> = candidates
            .iter()
            .zip(&wins)
            .map(|(&(pseudonym, region), &w)| PrivateNnProbability {
                pseudonym,
                probability: w as f64 / self.samples as f64,
                min_dist: min_dist_rect_rect(&self.from, &region),
                max_dist: max_dist_rect_rect(&self.from, &region),
            })
            .collect();
        out.sort_by(|a, b| {
            b.probability
                .total_cmp(&a.probability)
                .then(a.pseudonym.cmp(&b.pseudonym))
        });
        PrivatePrivateNnAnswer { candidates: out }
    }
}

/// Probabilistic answer to "how many private users are within `radius`
/// of me", with the querying user herself cloaked: expected count plus
/// the certain/possible interval, lifted from Fig. 6a by replacing
/// point-in-region with rect-to-rect distance bands.
#[derive(Debug, Clone, PartialEq)]
pub struct PrivatePrivateCountAnswer {
    /// Monte-Carlo estimate of the expected count.
    pub expected: f64,
    /// Users certainly within range (`max_dist <= radius`).
    pub certain: usize,
    /// Users possibly within range (`min_dist <= radius`).
    pub possible: usize,
}

/// Evaluates a private-over-private range count.
pub fn private_private_range_count(
    store: &PrivateStore,
    from: &Rect,
    querier: PseudonymId,
    radius: f64,
    samples: u32,
    seed: u64,
) -> PrivatePrivateCountAnswer {
    let radius = radius.max(0.0);
    let records: Vec<Rect> = store
        .iter()
        .filter(|r| r.pseudonym != querier)
        .map(|r| r.region)
        .collect();
    let certain = records
        .iter()
        .filter(|r| max_dist_rect_rect(from, r) <= radius)
        .count();
    let maybe: Vec<&Rect> = records
        .iter()
        .filter(|r| min_dist_rect_rect(from, r) <= radius && max_dist_rect_rect(from, r) > radius)
        .collect();
    let possible = certain + maybe.len();
    // Monte-Carlo only over the uncertain band.
    let mut rng = StdRng::seed_from_u64(seed);
    let samples = samples.max(1);
    let mut total = 0u64;
    for _ in 0..samples {
        let q = uniform_point_in_rect(&mut rng, from);
        for r in &maybe {
            let p = uniform_point_in_rect(&mut rng, r);
            if q.dist(p) <= radius {
                total += 1;
            }
        }
    }
    PrivatePrivateCountAnswer {
        expected: certain as f64 + total as f64 / samples as f64,
        certain,
        possible,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PrivateRecord;

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new_unchecked(x0, y0, x1, y1)
    }

    fn store_with(regions: &[(PseudonymId, Rect)]) -> PrivateStore {
        let mut s = PrivateStore::new();
        for &(id, r) in regions {
            s.upsert(PrivateRecord::new(id, r));
        }
        s
    }

    #[test]
    fn querier_is_never_a_candidate() {
        let store = store_with(&[
            (1, rect(0.4, 0.4, 0.6, 0.6)),
            (2, rect(0.45, 0.45, 0.65, 0.65)),
        ]);
        let q = PrivatePrivateNnQuery::new(rect(0.4, 0.4, 0.6, 0.6), 1);
        let ans = q.evaluate(&store);
        assert_eq!(ans.candidates.len(), 1);
        assert_eq!(ans.most_probable(), Some(2));
        assert_eq!(ans.candidates[0].probability, 1.0);
    }

    #[test]
    fn dominated_records_are_pruned() {
        // A friend whose cloak overlaps mine always beats one across town.
        let store = store_with(&[
            (1, rect(0.45, 0.45, 0.55, 0.55)), // overlapping: min 0, max small
            (2, rect(0.9, 0.9, 0.95, 0.95)),   // far away
        ]);
        let q = PrivatePrivateNnQuery::new(rect(0.4, 0.4, 0.6, 0.6), 0);
        let cands = q.candidate_records(&store);
        let ids: Vec<_> = cands.iter().map(|&(id, _)| id).collect();
        assert_eq!(ids, vec![1]);
    }

    #[test]
    fn symmetric_friends_split_probability() {
        let store = store_with(&[(1, rect(0.1, 0.4, 0.3, 0.6)), (2, rect(0.7, 0.4, 0.9, 0.6))]);
        let q = PrivatePrivateNnQuery::new(rect(0.4, 0.4, 0.6, 0.6), 0).with_samples(40_000);
        let ans = q.evaluate(&store);
        assert_eq!(ans.candidates.len(), 2);
        for c in &ans.candidates {
            assert!((c.probability - 0.5).abs() < 0.02, "{c:?}");
        }
        assert!((ans.total_probability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_and_self_only_stores() {
        let empty = PrivateStore::new();
        let q = PrivatePrivateNnQuery::new(rect(0.0, 0.0, 1.0, 1.0), 0);
        assert!(q.evaluate(&empty).candidates.is_empty());
        let self_only = store_with(&[(0, rect(0.0, 0.0, 1.0, 1.0))]);
        assert!(q.evaluate(&self_only).candidates.is_empty());
    }

    #[test]
    fn reproducible_estimates() {
        let store = store_with(&[
            (1, rect(0.1, 0.1, 0.4, 0.4)),
            (2, rect(0.5, 0.5, 0.8, 0.8)),
            (3, rect(0.2, 0.6, 0.45, 0.85)),
        ]);
        let q = PrivatePrivateNnQuery::new(rect(0.3, 0.3, 0.5, 0.5), 0).with_seed(4);
        assert_eq!(q.evaluate(&store), q.evaluate(&store));
    }

    #[test]
    fn count_certain_and_possible_bands() {
        let from = rect(0.4, 0.4, 0.6, 0.6);
        let store = store_with(&[
            // Certain: entirely within 0.5 of every point of `from`.
            (1, rect(0.45, 0.45, 0.55, 0.55)),
            // Possible but not certain: overlaps the band boundary.
            (2, rect(0.8, 0.4, 1.0, 0.6)),
            // Impossible: min dist > 0.5.
            (3, rect(1.5, 1.5, 1.6, 1.6)),
        ]);
        let ans = private_private_range_count(&store, &from, 0, 0.5, 4000, 1);
        assert_eq!(ans.certain, 1);
        assert_eq!(ans.possible, 2);
        assert!(
            ans.expected >= 1.0 && ans.expected <= 2.0,
            "{}",
            ans.expected
        );
    }

    #[test]
    fn count_expected_matches_analytic_in_deterministic_case() {
        // Degenerate cloaks: both positions are points, so the count is
        // deterministic and the MC estimate must be exact.
        let from = Rect::from_point(lbsp_geom::Point::new(0.5, 0.5));
        let store = store_with(&[
            (1, Rect::from_point(lbsp_geom::Point::new(0.6, 0.5))), // dist 0.1
            (2, Rect::from_point(lbsp_geom::Point::new(0.9, 0.5))), // dist 0.4
        ]);
        let ans = private_private_range_count(&store, &from, 0, 0.2, 100, 1);
        assert_eq!(ans.expected, 1.0);
        assert_eq!((ans.certain, ans.possible), (1, 1));
    }

    #[test]
    fn count_excludes_querier_and_clamps_radius() {
        let store = store_with(&[(7, rect(0.4, 0.4, 0.6, 0.6))]);
        let ans = private_private_range_count(&store, &rect(0.4, 0.4, 0.6, 0.6), 7, -1.0, 100, 1);
        assert_eq!(ans.possible, 0);
        assert_eq!(ans.expected, 0.0);
    }
}
