//! Private nearest-neighbor queries over public data (Fig. 5b).
//!
//! "The privacy-aware query processor should manage to compute the set
//! of target objects that can be nearest to ANY point in the shaded
//! area." The paper's example shows both effects our algorithm must
//! reproduce: an object *nearer to the region* can be excluded when two
//! other objects dominate it everywhere in the region (target A), while
//! farther objects must stay because some corner of the region is
//! closest to them (target D).
//!
//! Algorithm — exact range-NN candidate set:
//!
//! 1. **Min/max-dist prefilter.** Any object `o*` gives the guarantee
//!    that every point of the cloak has a neighbor within
//!    `max_dist(o*, R)`; objects with `min_dist(o, R)` beyond the best
//!    such bound can never win and are pruned with one index pass.
//! 2. **Exact refinement** (the range-NN lemma, Hu & Lee 2005): the
//!    candidate set of a convex region equals the objects *inside* it
//!    plus the NN winners along its *boundary* — a Voronoi cell is
//!    convex, so if it reaches the interior from outside it must cross
//!    the boundary. Along each rectangle edge the squared distance of
//!    every object differs only by an affine function of the edge
//!    parameter, so per-edge winners reduce to a 1-D linear feasibility
//!    test per object (O(n²) on the tiny prefiltered set).
//!
//! The result is minimal *and* sound: it contains exactly the objects
//! that are the true NN for at least one possible user position
//! (boundary ties are kept, which can only over-include).

use crate::{PublicObject, PublicStore};
use lbsp_geom::{max_dist_point_rect, min_dist_point_rect, Point, Rect};

/// Tolerance for boundary dominance ties: keeping a tied object only
/// ever over-includes, which preserves soundness.
const TIE_EPS: f64 = 1e-12;

/// Computes the exact candidate set for a private NN query: all public
/// objects that are the nearest neighbor of at least one point of
/// `cloak`.
pub fn private_nn_candidates(store: &PublicStore, cloak: &Rect) -> Vec<PublicObject> {
    if store.is_empty() {
        return Vec::new();
    }
    // --- Stage 1: min/max pruning -------------------------------------
    // Seed the bound with the object nearest to the cloak's center.
    let seed = store
        .k_nearest(cloak.center(), 1)
        .pop()
        .expect("store is non-empty");
    let mut bound = max_dist_point_rect(seed.pos, cloak);
    // Gather every object that could beat the bound...
    let search = cloak.expanded(bound).expect("bound is non-negative");
    let mut pool: Vec<PublicObject> = Vec::new();
    store.tree().for_each_in_rect(&search, |rect, id| {
        let o = *store.get(id).expect("id from own tree");
        debug_assert_eq!(rect.center(), o.pos);
        pool.push(o);
    });
    // ...tighten the bound over the pool, then prune the pool with it.
    for o in &pool {
        bound = bound.min(max_dist_point_rect(o.pos, cloak));
    }
    pool.retain(|o| min_dist_point_rect(o.pos, cloak) <= bound + TIE_EPS);

    // --- Stage 2: exact refinement ------------------------------------
    let mut keep: Vec<bool> = pool.iter().map(|o| cloak.contains_point(o.pos)).collect();
    let corners = cloak.corners();
    for i in 0..4 {
        mark_edge_winners(&pool, corners[i], corners[(i + 1) % 4], &mut keep);
    }
    pool.into_iter()
        .zip(keep)
        .filter_map(|(o, k)| k.then_some(o))
        .collect()
}

/// Marks objects that are nearest neighbors of at least one point on
/// the segment `a -> b`.
///
/// With `p(t) = a + (b-a) t`, `|p(t) - o|²` has an identical `t²` term
/// for every `o`, so dominance comparisons reduce to the lines
/// `g_o(t) = β_o t + γ_o` with `β_o = 2 (b-a)·(a-o)` and
/// `γ_o = |a-o|²`. Object `o` wins somewhere on the edge iff the linear
/// system `g_o(t) <= g_{o'}(t) ∀ o'`, `0 <= t <= 1` is feasible.
fn mark_edge_winners(pool: &[PublicObject], a: Point, b: Point, keep: &mut [bool]) {
    let dir = b - a;
    let coeffs: Vec<(f64, f64)> = pool
        .iter()
        .map(|o| {
            let ao = a - o.pos;
            (
                2.0 * (dir.x * ao.x + dir.y * ao.y),
                ao.x * ao.x + ao.y * ao.y,
            )
        })
        .collect();
    for (i, &(beta_i, gamma_i)) in coeffs.iter().enumerate() {
        if keep[i] {
            continue; // already a candidate
        }
        let mut lo = 0.0f64;
        let mut hi = 1.0f64;
        let mut feasible = true;
        for (j, &(beta_j, gamma_j)) in coeffs.iter().enumerate() {
            if i == j {
                continue;
            }
            let ds = beta_i - beta_j;
            let di = gamma_i - gamma_j;
            // Need ds * t + di <= TIE_EPS.
            if ds > 0.0 {
                hi = hi.min((TIE_EPS - di) / ds);
            } else if ds < 0.0 {
                lo = lo.max((TIE_EPS - di) / ds);
            } else if di > TIE_EPS {
                feasible = false;
                break;
            }
            if lo > hi {
                feasible = false;
                break;
            }
        }
        if feasible && lo <= hi {
            keep[i] = true;
        }
    }
}

/// Client-side refinement: the true nearest neighbor given the user's
/// exact position. Returns `None` on an empty candidate list.
// lint: allow(taint) -- refinement runs on the user's own device; the
// exact position never leaves the trusted side of the boundary.
pub fn refine_nn(candidates: &[PublicObject], true_pos: Point) -> Option<PublicObject> {
    candidates
        .iter()
        .min_by(|x, y| true_pos.dist_sq(x.pos).total_cmp(&true_pos.dist_sq(y.pos)))
        .copied()
}

/// Extension beyond the paper: candidate set for a private **k-NN**
/// query — all objects that can be among the `k` nearest neighbors of
/// some point of `cloak`.
///
/// Pruning bound: let `T` be the k-th smallest `max_dist(o, cloak)`
/// over all objects. For every position in the cloak there are at least
/// `k` objects within distance `T`, so an object whose `min_dist`
/// exceeds `T` can never enter any position's k-NN set. The result is
/// sound (property-tested) though not minimal — exact minimality for
/// k > 1 needs k-th-order Voronoi machinery, which the paper's
/// follow-ups also avoid.
pub fn private_knn_candidates(store: &PublicStore, cloak: &Rect, k: usize) -> Vec<PublicObject> {
    if k == 0 || store.is_empty() {
        return Vec::new();
    }
    if k >= store.len() {
        return store.iter().copied().collect();
    }
    // Seed the bound with the k objects nearest to the center: their
    // max-dists give a valid (if loose) T to collect a pool with.
    let seed_t = store
        .k_nearest(cloak.center(), k)
        .iter()
        .map(|o| max_dist_point_rect(o.pos, cloak))
        .fold(0.0f64, f64::max);
    let search = cloak.expanded(seed_t).expect("non-negative bound");
    let mut pool: Vec<PublicObject> = Vec::new();
    store.tree().for_each_in_rect(&search, |_, id| {
        pool.push(*store.get(id).expect("id from own tree"));
    });
    // Tighten T: the k-th smallest max_dist within the pool.
    let mut maxds: Vec<f64> = pool
        .iter()
        .map(|o| max_dist_point_rect(o.pos, cloak))
        .collect();
    maxds.sort_by(|a, b| a.total_cmp(b));
    // The pool always contains at least the k seed objects (each lies
    // within `seed_t` of the cloak), so index k-1 is in range.
    let t = maxds[k - 1].min(seed_t);
    pool.retain(|o| min_dist_point_rect(o.pos, cloak) <= t + TIE_EPS);
    pool
}

/// Client-side refinement for k-NN: the `k` true nearest neighbors from
/// the candidate list, sorted by distance.
// lint: allow(taint) -- refinement runs on the user's own device; the
// exact position never leaves the trusted side of the boundary.
pub fn refine_knn(candidates: &[PublicObject], true_pos: Point, k: usize) -> Vec<PublicObject> {
    let mut v: Vec<PublicObject> = candidates.to_vec();
    v.sort_by(|a, b| true_pos.dist_sq(a.pos).total_cmp(&true_pos.dist_sq(b.pos)));
    v.truncate(k);
    v
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsp_geom::uniform_point_in_rect;
    use rand::rngs::StdRng;
    use rand::{RngExt as _, SeedableRng};

    fn store_from(points: &[(f64, f64)]) -> PublicStore {
        PublicStore::bulk_load(
            points
                .iter()
                .enumerate()
                .map(|(i, &(x, y))| PublicObject::new(i as u64, Point::new(x, y), 0))
                .collect(),
        )
    }

    /// The soundness invariant: for any position in the cloak, the true
    /// NN is in the candidate set.
    fn assert_sound(store: &PublicStore, cloak: &Rect, trials: usize, seed: u64) {
        let candidates = private_nn_candidates(store, cloak);
        let mut rng = StdRng::seed_from_u64(seed);
        for _ in 0..trials {
            let pos = uniform_point_in_rect(&mut rng, cloak);
            let true_nn = store.k_nearest(pos, 1)[0];
            assert!(
                candidates.iter().any(|c| c.id == true_nn.id),
                "true NN {} of {pos} missing (candidates: {:?})",
                true_nn.id,
                candidates.iter().map(|c| c.id).collect::<Vec<_>>()
            );
            // refine_nn agrees with a direct k-NN query.
            let refined = refine_nn(&candidates, pos).unwrap();
            assert!(
                (refined.pos.dist(pos) - true_nn.pos.dist(pos)).abs() < 1e-12,
                "refinement returns an equally-near object"
            );
        }
    }

    #[test]
    fn empty_store() {
        let store = PublicStore::new();
        assert!(private_nn_candidates(&store, &Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)).is_empty());
        assert!(refine_nn(&[], Point::ORIGIN).is_none());
    }

    #[test]
    fn single_object_is_the_candidate() {
        let store = store_from(&[(0.9, 0.9)]);
        let c = private_nn_candidates(&store, &Rect::new_unchecked(0.0, 0.0, 0.1, 0.1));
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn objects_inside_cloak_are_always_candidates() {
        let store = store_from(&[(0.5, 0.5), (0.52, 0.5), (0.9, 0.9)]);
        let cloak = Rect::new_unchecked(0.4, 0.4, 0.6, 0.6);
        let c = private_nn_candidates(&store, &cloak);
        let ids: Vec<_> = c.iter().map(|o| o.id).collect();
        assert!(ids.contains(&0) && ids.contains(&1));
        assert!(!ids.contains(&2), "far object dominated everywhere");
    }

    #[test]
    fn paper_effect_near_object_dominated_by_pair() {
        // Mirror of the paper's target-A effect: A is nearest to the
        // region's left edge, but B (above-left) and C (below-left)
        // together dominate it at every point of the region.
        let cloak = Rect::new_unchecked(0.4, 0.4, 0.6, 0.6);
        //       B
        //    A  [R]
        //       C
        let a = (0.30, 0.50);
        let b = (0.39, 0.58);
        let c = (0.39, 0.42);
        let store = store_from(&[a, b, c]);
        let cands = private_nn_candidates(&store, &cloak);
        let ids: Vec<_> = cands.iter().map(|o| o.id).collect();
        assert!(!ids.contains(&0), "A dominated by B and C: {ids:?}");
        assert!(ids.contains(&1) && ids.contains(&2));
        assert_sound(&store, &cloak, 300, 42);
    }

    #[test]
    fn paper_effect_far_object_kept_for_far_boundary() {
        // Target-D effect: D is farther from the region than A, but the
        // region's right boundary is nearest to D.
        let cloak = Rect::new_unchecked(0.4, 0.4, 0.6, 0.6);
        let a = (0.35, 0.5); // just left of the region
        let d = (0.75, 0.5); // farther, to the right
        let store = store_from(&[a, d]);
        let cands = private_nn_candidates(&store, &cloak);
        assert_eq!(cands.len(), 2, "both sides of the region have a winner");
        assert_sound(&store, &cloak, 200, 7);
    }

    #[test]
    fn soundness_random_configurations() {
        let mut rng = StdRng::seed_from_u64(99);
        for trial in 0..20 {
            let n = 3 + (trial % 30);
            let pts: Vec<(f64, f64)> = (0..n)
                .map(|_| (rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
                .collect();
            let store = store_from(&pts);
            let x0 = rng.random_range(0.0..0.7);
            let y0 = rng.random_range(0.0..0.7);
            let w = rng.random_range(0.01..0.3);
            let h = rng.random_range(0.01..0.3);
            let cloak = Rect::new_unchecked(x0, y0, x0 + w, y0 + h);
            assert_sound(&store, &cloak, 100, trial as u64);
        }
    }

    #[test]
    fn minimality_every_candidate_wins_somewhere() {
        // Dense sampling: each candidate should actually be the NN of
        // some sampled point (statistically; tiny winning slivers may be
        // missed, so use a generous sample and a modest configuration).
        let store = store_from(&[(0.2, 0.5), (0.8, 0.5), (0.5, 0.2), (0.5, 0.8), (0.5, 0.5)]);
        let cloak = Rect::new_unchecked(0.3, 0.3, 0.7, 0.7);
        let cands = private_nn_candidates(&store, &cloak);
        let mut winners = std::collections::HashSet::new();
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..20_000 {
            let pos = uniform_point_in_rect(&mut rng, &cloak);
            winners.insert(store.k_nearest(pos, 1)[0].id);
        }
        let cand_ids: std::collections::HashSet<_> = cands.iter().map(|o| o.id).collect();
        assert_eq!(cand_ids, winners, "candidate set is exactly the winner set");
    }

    #[test]
    fn degenerate_cloak_is_plain_nn() {
        let store = store_from(&[(0.1, 0.1), (0.9, 0.9), (0.4, 0.45)]);
        let pos = Point::new(0.5, 0.5);
        let c = private_nn_candidates(&store, &Rect::from_point(pos));
        assert_eq!(c.len(), 1);
        assert_eq!(c[0].id, 2);
    }

    #[test]
    fn candidate_count_grows_with_cloak_size() {
        let mut rng = StdRng::seed_from_u64(31);
        let pts: Vec<(f64, f64)> = (0..400)
            .map(|_| (rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
            .collect();
        let store = store_from(&pts);
        let small = private_nn_candidates(&store, &Rect::new_unchecked(0.48, 0.48, 0.52, 0.52));
        let large = private_nn_candidates(&store, &Rect::new_unchecked(0.3, 0.3, 0.7, 0.7));
        assert!(large.len() > small.len());
        // And stays far below "send everything".
        assert!(large.len() < 200, "len {}", large.len());
    }

    #[test]
    fn knn_candidates_are_sound() {
        use rand::rngs::StdRng;
        use rand::{RngExt as _, SeedableRng};
        let mut rng = StdRng::seed_from_u64(17);
        let pts: Vec<(f64, f64)> = (0..200)
            .map(|_| (rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
            .collect();
        let store = store_from(&pts);
        let cloak = Rect::new_unchecked(0.35, 0.45, 0.55, 0.6);
        for k in [1usize, 3, 10] {
            let cands = private_knn_candidates(&store, &cloak, k);
            assert!(cands.len() >= k);
            for _ in 0..100 {
                let pos = uniform_point_in_rect(&mut rng, &cloak);
                let true_knn = store.k_nearest(pos, k);
                for nn in &true_knn {
                    assert!(
                        cands.iter().any(|c| c.id == nn.id),
                        "k={k}: true kNN member {} missing",
                        nn.id
                    );
                }
                // Refinement returns k objects at the true distances.
                let refined = refine_knn(&cands, pos, k);
                assert_eq!(refined.len(), k);
                for (r, t) in refined.iter().zip(&true_knn) {
                    assert!((r.pos.dist(pos) - t.pos.dist(pos)).abs() < 1e-12);
                }
            }
        }
    }

    #[test]
    fn knn_candidate_edge_cases() {
        let store = store_from(&[(0.1, 0.1), (0.9, 0.9)]);
        let cloak = Rect::new_unchecked(0.4, 0.4, 0.6, 0.6);
        assert!(private_knn_candidates(&store, &cloak, 0).is_empty());
        // k >= population returns everything.
        assert_eq!(private_knn_candidates(&store, &cloak, 2).len(), 2);
        assert_eq!(private_knn_candidates(&store, &cloak, 5).len(), 2);
        // Empty store.
        assert!(private_knn_candidates(&PublicStore::new(), &cloak, 3).is_empty());
        // k = 1 candidates are a superset of the exact NN set (the
        // order-1 bound is looser than the lower-envelope refinement).
        let exact = private_nn_candidates(&store, &cloak);
        let k1 = private_knn_candidates(&store, &cloak, 1);
        for o in exact {
            assert!(k1.iter().any(|c| c.id == o.id));
        }
    }

    #[test]
    fn knn_pruning_is_effective() {
        use rand::rngs::StdRng;
        use rand::{RngExt as _, SeedableRng};
        let mut rng = StdRng::seed_from_u64(19);
        let pts: Vec<(f64, f64)> = (0..2000)
            .map(|_| (rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)))
            .collect();
        let store = store_from(&pts);
        let cloak = Rect::new_unchecked(0.48, 0.48, 0.52, 0.52);
        let cands = private_knn_candidates(&store, &cloak, 5);
        assert!(
            cands.len() < 100,
            "pruned to {} of 2000 objects",
            cands.len()
        );
    }

    #[test]
    fn coincident_objects_tie_soundly() {
        let store = store_from(&[(0.5, 0.5), (0.5, 0.5), (0.9, 0.9)]);
        let cloak = Rect::new_unchecked(0.45, 0.45, 0.55, 0.55);
        let c = private_nn_candidates(&store, &cloak);
        let ids: Vec<_> = c.iter().map(|o| o.id).collect();
        assert!(ids.contains(&0) && ids.contains(&1), "ties kept: {ids:?}");
    }
}
