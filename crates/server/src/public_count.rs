//! Public range counting over private data (Fig. 6a).
//!
//! "Figure 6a seeks the count of mobile users inside a certain
//! rectangular area. Dealing with each object as a non-zero size object
//! would return five as the query answer, which is [a] totally
//! inaccurate answer. Thus, it is better to deal with each object
//! individually."
//!
//! Each intersecting cloak contributes with probability equal to its
//! overlap ratio (the paper's uniform-position assumption), and the
//! answer is offered in the paper's three formats:
//!
//! 1. **absolute value** — the expected count (the paper's
//!    `1 + 0.75 + 0.5 + 0.2 + 0.25 = 2.7`);
//! 2. **interval** — `[certain, possible]` (the paper's `[1, 5]`);
//! 3. **probability density function** — `(i, p_i)` pairs over the
//!    interval, computed exactly via [`PoissonBinomial`].

use crate::{PoissonBinomial, PrivateStore, PseudonymId};
use lbsp_geom::Rect;

/// A public count query: how many mobile users are inside `area`?
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublicCountQuery {
    /// The query rectangle.
    pub area: Rect,
}

/// The probabilistic answer, in all three of the paper's formats.
#[derive(Debug, Clone, PartialEq)]
pub struct CountAnswer {
    /// Format 1: the expected count (sum of inclusion probabilities).
    pub expected: f64,
    /// Format 2, lower end: users certainly inside (overlap ratio 1).
    pub certain: usize,
    /// Format 2, upper end: users possibly inside (overlap ratio > 0).
    pub possible: usize,
    /// Format 3: `P(count = k)` for `k` in `0..=possible`.
    pub pdf: PoissonBinomial,
    /// The per-user evidence: `(pseudonym, inclusion probability)` for
    /// every cloak with non-zero overlap, in descending probability.
    pub contributions: Vec<(PseudonymId, f64)>,
}

impl PublicCountQuery {
    /// Creates the query.
    pub fn new(area: Rect) -> PublicCountQuery {
        PublicCountQuery { area }
    }

    /// Evaluates against the private store.
    pub fn evaluate(&self, store: &PrivateStore) -> CountAnswer {
        let mut contributions: Vec<(PseudonymId, f64)> = store
            .intersecting(&self.area)
            .into_iter()
            .filter_map(|rec| {
                let p = rec.region.overlap_fraction(&self.area);
                (p > 0.0).then_some((rec.pseudonym, p))
            })
            .collect();
        contributions.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        let probs: Vec<f64> = contributions.iter().map(|&(_, p)| p).collect();
        let certain = probs.iter().filter(|&&p| p >= 1.0).count();
        CountAnswer {
            expected: probs.iter().sum(),
            certain,
            possible: probs.len(),
            pdf: PoissonBinomial::new(&probs),
            contributions,
        }
    }
}

impl CountAnswer {
    /// The naive non-zero-size-object answer the paper criticizes: count
    /// every intersecting cloak as 1.
    pub fn naive_count(&self) -> usize {
        self.possible
    }

    /// Probability that the true count equals `k`.
    pub fn probability_of(&self, k: usize) -> f64 {
        self.pdf.pmf(k)
    }
}

/// A public range *report* query: not just how many users are in the
/// area, but which (pseudonymized) users, each with its membership
/// probability — the per-object evidence underlying Fig. 6a, exposed as
/// a query in its own right (e.g. "page everyone probably in the mall").
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublicReportQuery {
    /// The query rectangle.
    pub area: Rect,
    /// Only report users whose membership probability reaches this
    /// threshold (0 reports every possible member).
    pub min_probability: f64,
}

impl PublicReportQuery {
    /// Creates a report query with no probability threshold.
    pub fn new(area: Rect) -> PublicReportQuery {
        PublicReportQuery {
            area,
            min_probability: 0.0,
        }
    }

    /// Sets the reporting threshold.
    pub fn with_min_probability(mut self, p: f64) -> PublicReportQuery {
        self.min_probability = p.clamp(0.0, 1.0);
        self
    }

    /// Evaluates against the private store: `(pseudonym, probability)`
    /// pairs in descending probability.
    pub fn evaluate(&self, store: &PrivateStore) -> Vec<(PseudonymId, f64)> {
        let mut out: Vec<(PseudonymId, f64)> = store
            .intersecting(&self.area)
            .into_iter()
            .filter_map(|rec| {
                let p = rec.region.overlap_fraction(&self.area);
                (p >= self.min_probability && p > 0.0).then_some((rec.pseudonym, p))
            })
            .collect();
        out.sort_by(|a, b| b.1.total_cmp(&a.1).then(a.0.cmp(&b.0)));
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PrivateRecord;

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new_unchecked(x0, y0, x1, y1)
    }

    /// The exact worked example of Fig. 6a: six cloaked objects with
    /// overlap ratios 1.0 (D), 0.75 (A), 0.5 (B), 0.2 (E), 0.25 (F) and
    /// 0.0 (C).
    fn paper_store_and_query() -> (PrivateStore, PublicCountQuery) {
        let query = PublicCountQuery::new(rect(0.0, 0.0, 1.0, 1.0));
        let mut store = PrivateStore::new();
        // D: fully inside -> ratio 1.
        store.upsert(PrivateRecord::new(3, rect(0.4, 0.4, 0.6, 0.6)));
        // A: 75% inside (one quarter sticks out left).
        store.upsert(PrivateRecord::new(0, rect(-0.1, 0.0, 0.3, 0.2)));
        // B: 50% inside.
        store.upsert(PrivateRecord::new(1, rect(0.8, 0.2, 1.2, 0.4)));
        // E: 20% inside.
        store.upsert(PrivateRecord::new(4, rect(0.9, 0.6, 1.4, 0.8)));
        // F: 25% inside.
        store.upsert(PrivateRecord::new(5, rect(0.9, 0.9, 1.1, 1.1)));
        // C: completely outside -> ratio 0.
        store.upsert(PrivateRecord::new(2, rect(1.5, 1.5, 1.7, 1.7)));
        (store, query)
    }

    #[test]
    fn paper_worked_example_absolute_value() {
        let (store, query) = paper_store_and_query();
        let ans = query.evaluate(&store);
        assert!(
            (ans.expected - 2.7).abs() < 1e-9,
            "paper's 1 + 0.75 + 0.5 + 0.2 + 0.25 = 2.7, got {}",
            ans.expected
        );
    }

    #[test]
    fn paper_worked_example_interval() {
        let (store, query) = paper_store_and_query();
        let ans = query.evaluate(&store);
        assert_eq!((ans.certain, ans.possible), (1, 5), "paper's [1, 5]");
        assert_eq!(ans.naive_count(), 5, "the inaccurate non-zero-size answer");
    }

    #[test]
    fn paper_worked_example_pdf() {
        let (store, query) = paper_store_and_query();
        let ans = query.evaluate(&store);
        // P(0) = 0 because D is certain; mass concentrates on [1, 5].
        assert!(ans.probability_of(0) < 1e-12);
        let total: f64 = (1..=5).map(|k| ans.probability_of(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        // PDF mean agrees with the absolute-value format.
        assert!((ans.pdf.mean() - ans.expected).abs() < 1e-9);
        // Exact spot check: P(count = 5) = 0.75 * 0.5 * 0.2 * 0.25.
        assert!((ans.probability_of(5) - 0.01875).abs() < 1e-12);
    }

    #[test]
    fn contributions_are_sorted_and_labeled() {
        let (store, query) = paper_store_and_query();
        let ans = query.evaluate(&store);
        assert_eq!(ans.contributions.len(), 5, "C (zero overlap) excluded");
        let probs: Vec<f64> = ans.contributions.iter().map(|&(_, p)| p).collect();
        let expect = [1.0, 0.75, 0.5, 0.25, 0.2];
        for (got, want) in probs.iter().zip(expect) {
            assert!((got - want).abs() < 1e-9, "{got} vs {want}");
        }
        assert_eq!(ans.contributions[0].0, 3, "D is the certain one");
    }

    #[test]
    fn empty_store_answers_zero() {
        let store = PrivateStore::new();
        let ans = PublicCountQuery::new(rect(0.0, 0.0, 1.0, 1.0)).evaluate(&store);
        assert_eq!(ans.expected, 0.0);
        assert_eq!((ans.certain, ans.possible), (0, 0));
        assert!((ans.probability_of(0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_cloak_counts_as_point() {
        // A k=1 user (exact location) contributes 0 or 1, never a
        // fraction.
        let mut store = PrivateStore::new();
        store.upsert(PrivateRecord::new(
            1,
            Rect::from_point(lbsp_geom::Point::new(0.5, 0.5)),
        ));
        store.upsert(PrivateRecord::new(
            2,
            Rect::from_point(lbsp_geom::Point::new(2.0, 2.0)),
        ));
        let ans = PublicCountQuery::new(rect(0.0, 0.0, 1.0, 1.0)).evaluate(&store);
        assert_eq!(ans.expected, 1.0);
        assert_eq!((ans.certain, ans.possible), (1, 1));
    }

    #[test]
    fn touching_cloak_contributes_zero() {
        // A cloak sharing only an edge has zero overlap area.
        let mut store = PrivateStore::new();
        store.upsert(PrivateRecord::new(1, rect(1.0, 0.0, 1.5, 1.0)));
        let ans = PublicCountQuery::new(rect(0.0, 0.0, 1.0, 1.0)).evaluate(&store);
        assert_eq!(ans.possible, 0);
        assert_eq!(ans.expected, 0.0);
    }

    #[test]
    fn report_query_lists_members_with_threshold() {
        let (store, query) = paper_store_and_query();
        let all = PublicReportQuery::new(query.area).evaluate(&store);
        assert_eq!(all.len(), 5, "C excluded, the rest reported");
        assert_eq!(all[0], (3, 1.0), "D is certain and first");
        // Probabilities descend.
        for w in all.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
        // Threshold filters the long tail.
        let confident = PublicReportQuery::new(query.area)
            .with_min_probability(0.5)
            .evaluate(&store);
        assert_eq!(confident.len(), 3, "D (1.0), A (0.75), B (0.5)");
        // Thresholds clamp to [0, 1].
        let none = PublicReportQuery::new(query.area)
            .with_min_probability(7.0)
            .evaluate(&store);
        assert_eq!(none.len(), 1, "clamped to 1.0 keeps only certain members");
    }

    #[test]
    fn accuracy_degrades_with_larger_cloaks() {
        // The same 4 users with exact positions inside the query would
        // count 4; huge cloaks dilute the expected count — the
        // privacy/accuracy trade-off the experiments measure.
        let query = PublicCountQuery::new(rect(0.0, 0.0, 0.5, 0.5));
        let mut tight = PrivateStore::new();
        let mut loose = PrivateStore::new();
        for i in 0..4u64 {
            let c = lbsp_geom::Point::new(0.1 + 0.1 * i as f64, 0.25);
            tight.upsert(PrivateRecord::new(
                i,
                Rect::centered_square(c, 0.01).unwrap(),
            ));
            loose.upsert(PrivateRecord::new(
                i,
                Rect::centered_square(c, 0.4).unwrap(),
            ));
        }
        let t = query.evaluate(&tight);
        let l = query.evaluate(&loose);
        assert!((t.expected - 4.0).abs() < 1e-9);
        assert!(
            l.expected < 3.0,
            "loose cloaks leak mass out: {}",
            l.expected
        );
        assert_eq!(t.certain, 4);
        assert_eq!(l.certain, 0);
    }
}
