//! Public and private data stores.

use crate::{ObjectId, PrivateRecord, PseudonymId, PublicObject};
use lbsp_geom::{Point, Rect};
use lbsp_index::RTree;
use std::collections::HashMap;

/// Store of public objects: R-tree over exact locations plus an id map.
///
/// Supports both stationary objects (bulk loaded) and moving public
/// objects like police cars ([`PublicStore::update_position`]).
#[derive(Debug, Default)]
pub struct PublicStore {
    tree: RTree,
    objects: HashMap<ObjectId, PublicObject>,
}

impl PublicStore {
    /// Creates an empty store.
    pub fn new() -> PublicStore {
        PublicStore::default()
    }

    /// Bulk loads a store from objects (ids must be unique).
    ///
    /// # Panics
    /// Panics on duplicate ids — the caller owns id assignment and a
    /// duplicate means corrupted input.
    pub fn bulk_load(objects: Vec<PublicObject>) -> PublicStore {
        let entries: Vec<(Rect, ObjectId)> = objects
            .iter()
            .map(|o| (Rect::from_point(o.pos), o.id))
            .collect();
        let mut map = HashMap::with_capacity(objects.len());
        for o in objects {
            let prev = map.insert(o.id, o);
            assert!(prev.is_none(), "duplicate public object id {}", o.id);
        }
        PublicStore {
            tree: RTree::bulk_load(entries),
            objects: map,
        }
    }

    /// Number of objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    /// Inserts a new object (or replaces one with the same id).
    pub fn insert(&mut self, o: PublicObject) {
        if let Some(old) = self.objects.insert(o.id, o) {
            self.tree.remove_point(old.pos, old.id);
        }
        self.tree.insert_point(o.pos, o.id);
    }

    /// Removes an object.
    pub fn remove(&mut self, id: ObjectId) -> Option<PublicObject> {
        let o = self.objects.remove(&id)?;
        self.tree.remove_point(o.pos, o.id);
        Some(o)
    }

    /// Moves an object (e.g. a police car location update).
    pub fn update_position(&mut self, id: ObjectId, pos: Point) -> bool {
        let Some(o) = self.objects.get(&id).copied() else {
            return false;
        };
        self.tree.remove_point(o.pos, o.id);
        self.tree.insert_point(pos, o.id);
        self.objects.insert(id, PublicObject { pos, ..o });
        true
    }

    /// Looks up an object.
    pub fn get(&self, id: ObjectId) -> Option<&PublicObject> {
        self.objects.get(&id)
    }

    /// All objects with locations inside `r`.
    pub fn in_rect(&self, r: &Rect) -> Vec<PublicObject> {
        self.tree
            .search_rect(r)
            .into_iter()
            .map(|(_, id)| self.objects[&id])
            .collect()
    }

    /// The `k` objects nearest to `q`.
    pub fn k_nearest(&self, q: Point, k: usize) -> Vec<PublicObject> {
        self.tree
            .k_nearest(q, k)
            .into_iter()
            .map(|n| self.objects[&n.id])
            .collect()
    }

    /// Iterates over all objects (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = &PublicObject> {
        self.objects.values()
    }

    /// Access to the underlying R-tree (used by the query processors for
    /// incremental pruning).
    pub(crate) fn tree(&self) -> &RTree {
        &self.tree
    }
}

/// Store of private (cloaked) records: R-tree over regions + id map.
///
/// Each pseudonym holds exactly one current region; an update replaces
/// the previous one, which is how "the location anonymizer does not need
/// to store the exact location information" materializes server-side —
/// history is the *query's* problem, not the store's.
#[derive(Debug, Default)]
pub struct PrivateStore {
    tree: RTree,
    records: HashMap<PseudonymId, Rect>,
}

impl PrivateStore {
    /// Creates an empty store.
    pub fn new() -> PrivateStore {
        PrivateStore::default()
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// `true` when empty.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }

    /// Inserts or replaces the region for a pseudonym. Returns the
    /// previous region when the record existed.
    pub fn upsert(&mut self, rec: PrivateRecord) -> Option<Rect> {
        let prev = self.records.insert(rec.pseudonym, rec.region);
        if let Some(old) = prev {
            self.tree.remove(&old, rec.pseudonym);
        }
        self.tree.insert(rec.region, rec.pseudonym);
        prev
    }

    /// Removes a record.
    pub fn remove(&mut self, pseudonym: PseudonymId) -> Option<Rect> {
        let old = self.records.remove(&pseudonym)?;
        self.tree.remove(&old, pseudonym);
        Some(old)
    }

    /// Current region of a pseudonym.
    pub fn get(&self, pseudonym: PseudonymId) -> Option<Rect> {
        self.records.get(&pseudonym).copied()
    }

    /// All records whose region intersects `r`.
    pub fn intersecting(&self, r: &Rect) -> Vec<PrivateRecord> {
        self.tree
            .search_rect(r)
            .into_iter()
            .map(|(region, pseudonym)| PrivateRecord { pseudonym, region })
            .collect()
    }

    /// Iterates over all records (unspecified order).
    pub fn iter(&self) -> impl Iterator<Item = PrivateRecord> + '_ {
        self.records
            .iter()
            .map(|(&pseudonym, &region)| PrivateRecord { pseudonym, region })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obj(id: ObjectId, x: f64, y: f64) -> PublicObject {
        PublicObject::new(id, Point::new(x, y), 0)
    }

    #[test]
    fn public_store_crud() {
        let mut s = PublicStore::new();
        assert!(s.is_empty());
        s.insert(obj(1, 0.1, 0.1));
        s.insert(obj(2, 0.9, 0.9));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(1).unwrap().pos, Point::new(0.1, 0.1));
        // Replace same id.
        s.insert(obj(1, 0.2, 0.2));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(1).unwrap().pos, Point::new(0.2, 0.2));
        let hits = s.in_rect(&Rect::new_unchecked(0.0, 0.0, 0.5, 0.5));
        assert_eq!(hits.len(), 1);
        assert_eq!(hits[0].id, 1);
        assert!(s.remove(1).is_some());
        assert!(s.remove(1).is_none());
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn public_store_bulk_and_knn() {
        let objects: Vec<_> = (0..50)
            .map(|i| obj(i, (i as f64) / 50.0, ((i * 7) % 50) as f64 / 50.0))
            .collect();
        let s = PublicStore::bulk_load(objects.clone());
        assert_eq!(s.len(), 50);
        let q = Point::new(0.5, 0.5);
        let knn = s.k_nearest(q, 3);
        assert_eq!(knn.len(), 3);
        let mut brute = objects.clone();
        brute.sort_by(|a, b| q.dist_sq(a.pos).total_cmp(&q.dist_sq(b.pos)));
        assert_eq!(knn[0].id, brute[0].id);
    }

    #[test]
    #[should_panic(expected = "duplicate public object id")]
    fn bulk_load_rejects_duplicates() {
        PublicStore::bulk_load(vec![obj(1, 0.0, 0.0), obj(1, 0.5, 0.5)]);
    }

    #[test]
    fn moving_public_object() {
        let mut s = PublicStore::new();
        s.insert(obj(7, 0.1, 0.1));
        assert!(s.update_position(7, Point::new(0.8, 0.8)));
        assert!(!s.update_position(8, Point::new(0.5, 0.5)));
        let hits = s.in_rect(&Rect::new_unchecked(0.7, 0.7, 0.9, 0.9));
        assert_eq!(hits.len(), 1);
        assert!(s
            .in_rect(&Rect::new_unchecked(0.0, 0.0, 0.2, 0.2))
            .is_empty());
    }

    #[test]
    fn private_store_upsert_replaces_region() {
        let mut s = PrivateStore::new();
        let r1 = Rect::new_unchecked(0.0, 0.0, 0.2, 0.2);
        let r2 = Rect::new_unchecked(0.5, 0.5, 0.7, 0.7);
        assert_eq!(s.upsert(PrivateRecord::new(1, r1)), None);
        assert_eq!(s.upsert(PrivateRecord::new(1, r2)), Some(r1));
        assert_eq!(s.len(), 1);
        assert_eq!(s.get(1), Some(r2));
        // Old region no longer matches spatially.
        assert!(s.intersecting(&r1).is_empty());
        assert_eq!(s.intersecting(&r2).len(), 1);
        assert_eq!(s.remove(1), Some(r2));
        assert!(s.is_empty());
        assert_eq!(s.remove(1), None);
    }

    #[test]
    fn private_store_intersection_query() {
        let mut s = PrivateStore::new();
        for i in 0..10u64 {
            let x = i as f64 / 10.0;
            s.upsert(PrivateRecord::new(
                i,
                Rect::new_unchecked(x, 0.0, x + 0.05, 0.05),
            ));
        }
        let hits = s.intersecting(&Rect::new_unchecked(0.0, 0.0, 0.32, 1.0));
        // Regions starting at 0.0, 0.1, 0.2, 0.3 intersect.
        assert_eq!(hits.len(), 4);
        assert_eq!(s.iter().count(), 10);
    }
}
