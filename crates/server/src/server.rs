//! The privacy-aware location-based database server, assembled.
//!
//! Fig. 1 draws the server as one box with two inputs — cloaked updates
//! from the location anonymizer and public queries from untrusted
//! parties — and this type is that box: it owns the public and private
//! stores, the standing-query registry, and per-query-class statistics,
//! and exposes one typed method per supported operation. The
//! `lbsp-core` system wires it behind the anonymizer; it can equally be
//! driven directly (see the crate tests), which is exactly what an
//! untrusted third party does.

use crate::{
    private_knn_candidates, private_nn_candidates, private_private_range_count,
    private_range_candidates, ContinuousRangeCount, CountAnswer, PrivatePrivateCountAnswer,
    PrivatePrivateNnAnswer, PrivatePrivateNnQuery, PrivateRecord, PrivateStore, PseudonymId,
    PublicCountQuery, PublicNnAnswer, PublicNnQuery, PublicObject, PublicStore,
};
use lbsp_geom::{Point, Rect};
use std::time::Instant;

/// Counters per query class, for operations dashboards and experiments.
///
/// Besides the per-class request counts, the server accumulates the
/// time spent *inside* its query processors (`private_micros` /
/// `public_micros`), so callers that aggregate into the streaming
/// observability registry (`lbsp-core::obs`) can attribute latency to
/// the server stage without this crate depending on it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServerStats {
    /// Cloaked updates ingested.
    pub updates: u64,
    /// Private range queries served (Fig. 5a).
    pub private_range: u64,
    /// Private NN / kNN queries served (Fig. 5b).
    pub private_nn: u64,
    /// Public count/report queries served (Fig. 6a).
    pub public_count: u64,
    /// Public NN queries served (Fig. 6b).
    pub public_nn: u64,
    /// Private-over-private queries served (Sec. 6.1, fourth cell).
    pub private_private: u64,
    /// Total microseconds spent evaluating private-side queries
    /// (range/NN/kNN and private-over-private).
    pub private_micros: u64,
    /// Total microseconds spent evaluating public-side queries.
    pub public_micros: u64,
}

/// Microseconds elapsed since `t`, saturating into a u64.
fn micros_since(t: Instant) -> u64 {
    u64::try_from(t.elapsed().as_micros()).unwrap_or(u64::MAX)
}

/// The assembled privacy-aware database server.
#[derive(Debug, Default)]
pub struct Server {
    public: PublicStore,
    private: PrivateStore,
    continuous: ContinuousRangeCount,
    stats: ServerStats,
}

impl Server {
    /// Creates a server with the given public dataset.
    pub fn new(public_objects: Vec<PublicObject>) -> Server {
        Server {
            public: PublicStore::bulk_load(public_objects),
            private: PrivateStore::new(),
            continuous: ContinuousRangeCount::new(),
            stats: ServerStats::default(),
        }
    }

    /// Read access to the public store.
    pub fn public(&self) -> &PublicStore {
        &self.public
    }

    /// Mutable access to the public store (moving public objects —
    /// police cars — update through here).
    pub fn public_mut(&mut self) -> &mut PublicStore {
        &mut self.public
    }

    /// Read access to the private store (everything the server knows
    /// about mobile users).
    pub fn private(&self) -> &PrivateStore {
        &self.private
    }

    /// Query-class counters.
    pub fn stats(&self) -> ServerStats {
        self.stats
    }

    /// Ingests a cloaked update from the anonymizer: replaces the
    /// pseudonym's stored region and feeds the standing queries.
    pub fn ingest(&mut self, pseudonym: PseudonymId, region: Rect) {
        self.stats.updates += 1;
        let old = self.private.upsert(PrivateRecord::new(pseudonym, region));
        self.continuous
            .on_update(pseudonym, old.as_ref(), Some(&region));
    }

    /// Removes a pseudonym (user went passive).
    pub fn forget(&mut self, pseudonym: PseudonymId) -> bool {
        match self.private.remove(pseudonym) {
            Some(old) => {
                self.continuous.on_update(pseudonym, Some(&old), None);
                true
            }
            None => false,
        }
    }

    /// Private range query over public data (Fig. 5a).
    pub fn private_range(&mut self, cloak: &Rect, radius: f64) -> Vec<PublicObject> {
        self.stats.private_range += 1;
        let t = Instant::now();
        let out = private_range_candidates(&self.public, cloak, radius);
        self.stats.private_micros += micros_since(t);
        out
    }

    /// Private NN query over public data (Fig. 5b).
    pub fn private_nn(&mut self, cloak: &Rect) -> Vec<PublicObject> {
        self.stats.private_nn += 1;
        let t = Instant::now();
        let out = private_nn_candidates(&self.public, cloak);
        self.stats.private_micros += micros_since(t);
        out
    }

    /// Private k-NN query over public data (extension).
    pub fn private_knn(&mut self, cloak: &Rect, k: usize) -> Vec<PublicObject> {
        self.stats.private_nn += 1;
        let t = Instant::now();
        let out = private_knn_candidates(&self.public, cloak, k);
        self.stats.private_micros += micros_since(t);
        out
    }

    /// Public count query over private data (Fig. 6a).
    pub fn public_count(&mut self, area: Rect) -> CountAnswer {
        self.stats.public_count += 1;
        let t = Instant::now();
        let out = PublicCountQuery::new(area).evaluate(&self.private);
        self.stats.public_micros += micros_since(t);
        out
    }

    /// Public NN query over private data (Fig. 6b).
    pub fn public_nn(&mut self, from: Point) -> PublicNnAnswer {
        self.stats.public_nn += 1;
        let t = Instant::now();
        let out = PublicNnQuery::new(from).evaluate(&self.private);
        self.stats.public_micros += micros_since(t);
        out
    }

    /// Private NN over private data (Sec. 6.1's fourth cell).
    pub fn private_friend_nn(
        &mut self,
        cloak: &Rect,
        querier: PseudonymId,
    ) -> PrivatePrivateNnAnswer {
        self.stats.private_private += 1;
        let t = Instant::now();
        let out = PrivatePrivateNnQuery::new(*cloak, querier).evaluate(&self.private);
        self.stats.private_micros += micros_since(t);
        out
    }

    /// Private range count over private data.
    pub fn private_friend_count(
        &mut self,
        cloak: &Rect,
        querier: PseudonymId,
        radius: f64,
    ) -> PrivatePrivateCountAnswer {
        self.stats.private_private += 1;
        let t = Instant::now();
        let out = private_private_range_count(
            &self.private,
            cloak,
            querier,
            radius,
            2048,
            querier ^ 0xC0DE,
        );
        self.stats.private_micros += micros_since(t);
        out
    }

    /// Registers a standing count query seeded from the current records.
    pub fn add_standing_count(&mut self, area: Rect) -> u64 {
        self.continuous
            .register(area, self.private.iter().map(|r| (r.pseudonym, r.region)))
    }

    /// The standing-query registry.
    pub fn continuous(&self) -> &ContinuousRangeCount {
        &self.continuous
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pois() -> Vec<PublicObject> {
        (0..50)
            .map(|i| PublicObject::new(i, Point::new(0.1 + 0.016 * i as f64, 0.5), (i % 3) as u32))
            .collect()
    }

    #[test]
    fn ingest_and_query_lifecycle() {
        let mut s = Server::new(pois());
        assert_eq!(s.public().len(), 50);
        let qid = s.add_standing_count(Rect::new_unchecked(0.0, 0.0, 1.0, 1.0));
        // Ingest three cloaked users.
        for i in 0..3u64 {
            s.ingest(100 + i, Rect::new_unchecked(0.2, 0.2, 0.4, 0.4));
        }
        assert_eq!(s.private().len(), 3);
        assert_eq!(s.continuous().expected(qid), Some(3.0));
        // Query classes all function and count.
        let cloak = Rect::new_unchecked(0.3, 0.45, 0.5, 0.55);
        assert!(!s.private_range(&cloak, 0.1).is_empty());
        assert!(!s.private_nn(&cloak).is_empty());
        assert!(s.private_knn(&cloak, 5).len() >= 5);
        let count = s.public_count(Rect::new_unchecked(0.0, 0.0, 0.5, 0.5));
        assert!(count.expected > 0.0);
        let nn = s.public_nn(Point::new(0.3, 0.3));
        assert!(!nn.candidates.is_empty());
        let friends = s.private_friend_nn(&cloak, 100);
        assert!(!friends.candidates.is_empty());
        let fc = s.private_friend_count(&cloak, 100, 0.5);
        assert!(fc.possible >= 1);
        // Stats tracked everything.
        let st = s.stats();
        assert_eq!(st.updates, 3);
        assert_eq!(st.private_range, 1);
        assert_eq!(st.private_nn, 2, "nn + knn");
        assert_eq!(st.public_count, 1);
        assert_eq!(st.public_nn, 1);
        assert_eq!(st.private_private, 2);
    }

    #[test]
    fn forget_removes_and_updates_standing_queries() {
        let mut s = Server::new(Vec::new());
        let area = Rect::new_unchecked(0.0, 0.0, 1.0, 1.0);
        let qid = s.add_standing_count(area);
        s.ingest(7, Rect::new_unchecked(0.4, 0.4, 0.6, 0.6));
        assert_eq!(s.continuous().expected(qid), Some(1.0));
        assert!(s.forget(7));
        assert!(!s.forget(7));
        assert_eq!(s.continuous().expected(qid), Some(0.0));
        assert_eq!(s.private().len(), 0);
    }

    #[test]
    fn moving_public_objects_through_the_facade() {
        let mut s = Server::new(pois());
        // Police car 0 relocates; private NN must see the new position.
        assert!(s.public_mut().update_position(0, Point::new(0.9, 0.9)));
        let cloak = Rect::new_unchecked(0.88, 0.88, 0.92, 0.92);
        let nn = s.private_nn(&cloak);
        assert!(nn.iter().any(|o| o.id == 0));
    }
}
