//! Continuous public count queries with incremental evaluation.
//!
//! The paper's scalability story (Secs. 1 and 5.3) leans on the
//! SINA-style insight that "processing the continuous queries at the
//! location-based server should be done incrementally". This module
//! implements it for the public range-count query class: standing
//! queries register once, and each cloak update adjusts only the
//! affected queries by the *delta* of the record's inclusion
//! probability, instead of recomputing every query from scratch.
//!
//! The maintained quantity is the expected count (the paper's format 1);
//! the interval and PDF formats are derived on demand from the
//! maintained per-query contribution maps.

use crate::{PoissonBinomial, PseudonymId};
use lbsp_geom::Rect;
use std::collections::HashMap;

/// Identifier for a registered continuous query.
pub type QueryId = u64;

#[derive(Debug)]
struct StandingQuery {
    area: Rect,
    /// pseudonym -> current inclusion probability (only non-zero ones).
    contributions: HashMap<PseudonymId, f64>,
    expected: f64,
}

impl StandingQuery {
    fn set_contribution(&mut self, pseudonym: PseudonymId, p: f64) {
        let old = if p > 0.0 {
            self.contributions.insert(pseudonym, p).unwrap_or(0.0)
        } else {
            self.contributions.remove(&pseudonym).unwrap_or(0.0)
        };
        self.expected += p - old;
    }
}

/// A registry of standing count queries, maintained incrementally.
#[derive(Debug, Default)]
pub struct ContinuousRangeCount {
    queries: HashMap<QueryId, StandingQuery>,
    next_id: QueryId,
    /// Updates applied since creation (for experiment reporting).
    updates_processed: u64,
}

impl ContinuousRangeCount {
    /// Creates an empty registry.
    pub fn new() -> ContinuousRangeCount {
        ContinuousRangeCount::default()
    }

    /// Registers a standing query over `area`, seeded from the current
    /// private records (`initial` provides `(pseudonym, region)` pairs).
    pub fn register<I>(&mut self, area: Rect, initial: I) -> QueryId
    where
        I: IntoIterator<Item = (PseudonymId, Rect)>,
    {
        let id = self.next_id;
        self.next_id += 1;
        let mut q = StandingQuery {
            area,
            contributions: HashMap::new(),
            expected: 0.0,
        };
        for (pseudonym, region) in initial {
            q.set_contribution(pseudonym, region.overlap_fraction(&q.area));
        }
        self.queries.insert(id, q);
        id
    }

    /// Deregisters a query.
    pub fn deregister(&mut self, id: QueryId) -> bool {
        self.queries.remove(&id).is_some()
    }

    /// Number of standing queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` when no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Applies one cloak update: the record moved from `old` (None on
    /// first appearance) to `new` (None on departure). Only queries
    /// whose area intersects either region are touched.
    pub fn on_update(&mut self, pseudonym: PseudonymId, old: Option<&Rect>, new: Option<&Rect>) {
        self.updates_processed += 1;
        for q in self.queries.values_mut() {
            let affected = old.is_some_and(|r| r.intersects(&q.area))
                || new.is_some_and(|r| r.intersects(&q.area));
            if !affected {
                continue;
            }
            let p = new.map_or(0.0, |r| r.overlap_fraction(&q.area));
            q.set_contribution(pseudonym, p);
        }
    }

    /// Current expected count of a query.
    pub fn expected(&self, id: QueryId) -> Option<f64> {
        self.queries.get(&id).map(|q| q.expected)
    }

    /// Current `[certain, possible]` interval of a query.
    pub fn interval(&self, id: QueryId) -> Option<(usize, usize)> {
        let q = self.queries.get(&id)?;
        let certain = q.contributions.values().filter(|&&p| p >= 1.0).count();
        Some((certain, q.contributions.len()))
    }

    /// Current exact count PDF of a query (computed on demand).
    pub fn pdf(&self, id: QueryId) -> Option<PoissonBinomial> {
        let q = self.queries.get(&id)?;
        let probs: Vec<f64> = q.contributions.values().copied().collect();
        Some(PoissonBinomial::new(&probs))
    }

    /// The area a query monitors.
    pub fn area(&self, id: QueryId) -> Option<Rect> {
        self.queries.get(&id).map(|q| q.area)
    }

    /// Updates processed so far.
    pub fn updates_processed(&self) -> u64 {
        self.updates_processed
    }
}

/// A standing public NN query ("keep telling me my nearest mobile
/// user"), maintained incrementally.
///
/// The maintained state is the pruning threshold: the best (smallest)
/// max-distance over all records plus the current candidate set. An
/// update only triggers recomputation when it can change the answer —
/// the updated record enters the candidate band, leaves it, or tightens
/// the threshold — so a stream of far-away updates costs O(1) each.
#[derive(Debug)]
pub struct ContinuousNnMonitor {
    from: lbsp_geom::Point,
    /// pseudonym -> (min_dist, max_dist) for every known record.
    bands: HashMap<PseudonymId, (f64, f64)>,
    /// Smallest max_dist over all records (the pruning threshold).
    threshold: f64,
    /// Updates that required recomputing the threshold/candidates.
    pub recomputes: u64,
    /// Updates handled with the O(1) fast path.
    pub fast_updates: u64,
}

impl ContinuousNnMonitor {
    /// Creates a monitor for the query point, seeded from current
    /// records.
    pub fn new<I>(from: lbsp_geom::Point, initial: I) -> ContinuousNnMonitor
    where
        I: IntoIterator<Item = (PseudonymId, Rect)>,
    {
        let mut m = ContinuousNnMonitor {
            from,
            bands: HashMap::new(),
            threshold: f64::INFINITY,
            recomputes: 0,
            fast_updates: 0,
        };
        for (pseudonym, region) in initial {
            let band = m.band_of(&region);
            m.bands.insert(pseudonym, band);
            m.threshold = m.threshold.min(band.1);
        }
        m
    }

    fn band_of(&self, region: &Rect) -> (f64, f64) {
        (
            lbsp_geom::min_dist_point_rect(self.from, region),
            lbsp_geom::max_dist_point_rect(self.from, region),
        )
    }

    fn recompute_threshold(&mut self) {
        self.threshold = self
            .bands
            .values()
            .map(|&(_, max)| max)
            .fold(f64::INFINITY, f64::min);
        self.recomputes += 1;
    }

    /// Applies one record update (`None` region = departure).
    pub fn on_update(&mut self, pseudonym: PseudonymId, region: Option<&Rect>) {
        let old = self.bands.get(&pseudonym).copied();
        match region {
            Some(r) => {
                let band = self.band_of(r);
                self.bands.insert(pseudonym, band);
                if band.1 <= self.threshold {
                    // Tightens (or equals) the threshold: cheap update.
                    self.threshold = band.1;
                    self.fast_updates += 1;
                } else if old.is_some_and(|(_, omax)| omax <= self.threshold) {
                    // The previous holder of the threshold moved away.
                    self.recompute_threshold();
                } else {
                    self.fast_updates += 1;
                }
            }
            None => {
                if self.bands.remove(&pseudonym).is_some()
                    && old.is_some_and(|(_, omax)| omax <= self.threshold)
                {
                    self.recompute_threshold();
                } else {
                    self.fast_updates += 1;
                }
            }
        }
    }

    /// The current candidate set: every record whose min-distance is
    /// within the threshold (the same rule as [`crate::PublicNnQuery`]).
    pub fn candidates(&self) -> Vec<PseudonymId> {
        let mut out: Vec<PseudonymId> = self
            .bands
            .iter()
            .filter(|(_, &(min, _))| min <= self.threshold)
            .map(|(&id, _)| id)
            .collect();
        out.sort_unstable();
        out
    }

    /// Number of tracked records.
    pub fn tracked(&self) -> usize {
        self.bands.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PrivateRecord, PrivateStore, PublicCountQuery};

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new_unchecked(x0, y0, x1, y1)
    }

    #[test]
    fn register_seeds_from_existing_records() {
        let mut store = PrivateStore::new();
        store.upsert(PrivateRecord::new(1, rect(0.0, 0.0, 0.2, 0.2)));
        store.upsert(PrivateRecord::new(2, rect(0.4, 0.4, 0.8, 0.8)));
        let mut cont = ContinuousRangeCount::new();
        let q = cont.register(
            rect(0.0, 0.0, 0.5, 0.5),
            store.iter().map(|r| (r.pseudonym, r.region)),
        );
        // Record 1 fully inside (p=1); record 2 overlap fraction:
        // intersection [0.4,0.5]^2 area 0.01 over region area 0.16.
        let expected = cont.expected(q).unwrap();
        assert!((expected - (1.0 + 0.01 / 0.16)).abs() < 1e-9);
        assert_eq!(cont.interval(q), Some((1, 2)));
    }

    #[test]
    fn incremental_matches_full_recompute() {
        // Drive a store and the continuous monitor with the same update
        // stream; the maintained expected count must equal a from-scratch
        // evaluation at every step.
        let area = rect(0.25, 0.25, 0.75, 0.75);
        let mut store = PrivateStore::new();
        let mut cont = ContinuousRangeCount::new();
        let q = cont.register(area, std::iter::empty());
        let moves: Vec<(PseudonymId, Rect)> = (0..50u64)
            .map(|i| {
                let t = i as f64 / 50.0;
                let x = (t * 0.9).min(0.9);
                (i % 10, rect(x, 0.3, x + 0.1, 0.45))
            })
            .collect();
        for (pseudonym, region) in moves {
            let old = store.upsert(PrivateRecord::new(pseudonym, region));
            cont.on_update(pseudonym, old.as_ref(), Some(&region));
            let full = PublicCountQuery::new(area).evaluate(&store);
            let inc = cont.expected(q).unwrap();
            assert!(
                (full.expected - inc).abs() < 1e-9,
                "incremental {inc} vs full {}",
                full.expected
            );
            assert_eq!(cont.interval(q).unwrap().1, full.possible);
        }
        assert_eq!(cont.updates_processed(), 50);
    }

    #[test]
    fn departures_remove_contributions() {
        let area = rect(0.0, 0.0, 1.0, 1.0);
        let mut cont = ContinuousRangeCount::new();
        let q = cont.register(area, std::iter::empty());
        let r = rect(0.4, 0.4, 0.6, 0.6);
        cont.on_update(7, None, Some(&r));
        assert!((cont.expected(q).unwrap() - 1.0).abs() < 1e-12);
        cont.on_update(7, Some(&r), None);
        assert_eq!(cont.expected(q).unwrap(), 0.0);
        assert_eq!(cont.interval(q), Some((0, 0)));
    }

    #[test]
    fn unaffected_queries_are_untouched() {
        let mut cont = ContinuousRangeCount::new();
        let q1 = cont.register(rect(0.0, 0.0, 0.1, 0.1), std::iter::empty());
        let q2 = cont.register(rect(0.9, 0.9, 1.0, 1.0), std::iter::empty());
        let r = rect(0.4, 0.4, 0.6, 0.6);
        cont.on_update(1, None, Some(&r));
        assert_eq!(cont.expected(q1), Some(0.0));
        assert_eq!(cont.expected(q2), Some(0.0));
    }

    #[test]
    fn pdf_on_demand_matches_snapshot_query() {
        let area = rect(0.0, 0.0, 1.0, 1.0);
        let mut store = PrivateStore::new();
        let mut cont = ContinuousRangeCount::new();
        let q = cont.register(area, std::iter::empty());
        for i in 0..5u64 {
            let r = rect(0.8 + 0.04 * i as f64, 0.0, 1.2, 1.0);
            let old = store.upsert(PrivateRecord::new(i, r));
            cont.on_update(i, old.as_ref(), Some(&r));
        }
        let snapshot = PublicCountQuery::new(area).evaluate(&store);
        let live = cont.pdf(q).unwrap();
        for k in 0..=5 {
            assert!((snapshot.pdf.pmf(k) - live.pmf(k)).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn nn_monitor_matches_one_shot_query() {
        use crate::PublicNnQuery;
        use lbsp_geom::Point;
        use rand::rngs::StdRng;
        use rand::{RngExt as _, SeedableRng};
        let from = Point::new(0.5, 0.5);
        let mut rng = StdRng::seed_from_u64(13);
        let mut store = PrivateStore::new();
        let mut monitor = ContinuousNnMonitor::new(from, std::iter::empty());
        // Stream of random cloak updates over 30 pseudonyms.
        for step in 0..300u64 {
            let id = step % 30;
            let x0 = rng.random_range(0.0..0.9);
            let y0 = rng.random_range(0.0..0.9);
            let r = rect(x0, y0, x0 + 0.1, y0 + 0.1);
            store.upsert(PrivateRecord::new(id, r));
            monitor.on_update(id, Some(&r));
            // Invariant: the monitor's candidate set equals the one-shot
            // pruning over the same store state.
            let mut expect: Vec<_> = PublicNnQuery::new(from)
                .candidate_records(&store)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            expect.sort_unstable();
            assert_eq!(monitor.candidates(), expect, "step {step}");
        }
        // The fast path carried most of the load.
        assert!(monitor.fast_updates > monitor.recomputes);
        assert_eq!(monitor.tracked(), 30);
    }

    #[test]
    fn nn_monitor_handles_departures() {
        use lbsp_geom::Point;
        let from = Point::new(0.0, 0.0);
        let near = rect(0.1, 0.1, 0.2, 0.2);
        let far = rect(0.8, 0.8, 0.9, 0.9);
        let mut monitor = ContinuousNnMonitor::new(from, vec![(1, near), (2, far)]);
        assert_eq!(monitor.candidates(), vec![1], "far record pruned");
        // The near record leaves: the far one becomes the answer.
        monitor.on_update(1, None);
        assert_eq!(monitor.candidates(), vec![2]);
        assert_eq!(monitor.tracked(), 1);
        // Removing a ghost is a no-op fast update.
        let fast_before = monitor.fast_updates;
        monitor.on_update(99, None);
        assert_eq!(monitor.fast_updates, fast_before + 1);
    }

    #[test]
    fn deregister_and_bookkeeping() {
        let mut cont = ContinuousRangeCount::new();
        let q = cont.register(rect(0.0, 0.0, 1.0, 1.0), std::iter::empty());
        assert_eq!(cont.len(), 1);
        assert!(!cont.is_empty());
        assert!(cont.area(q).is_some());
        assert!(cont.deregister(q));
        assert!(!cont.deregister(q));
        assert!(cont.is_empty());
        assert_eq!(cont.expected(q), None);
        assert_eq!(cont.interval(q), None);
        assert!(cont.pdf(q).is_none());
    }
}
