//! Continuous public count queries with incremental evaluation.
//!
//! The paper's scalability story (Secs. 1 and 5.3) leans on the
//! SINA-style insight that "processing the continuous queries at the
//! location-based server should be done incrementally". This module
//! implements it for the public range-count query class: standing
//! queries register once, and each cloak update adjusts only the
//! affected queries by the *delta* of the record's inclusion
//! probability, instead of recomputing every query from scratch.
//!
//! The maintained quantity is the expected count (the paper's format 1);
//! the interval and PDF formats are derived on demand from the
//! maintained per-query contribution maps.
//!
//! Two long-run correctness hazards are handled explicitly:
//!
//! * **Float drift** — the expected count is a sum that is edited
//!   millions of times on a live server. It is kept with Neumaier
//!   compensated summation and re-summed from the contribution map
//!   every [`RECONCILE_EVERY`] mutations, so the incremental value
//!   tracks a full recompute to well under 1e-9 indefinitely. All
//!   float accumulation happens in a deterministic order (contributions
//!   are keyed in a `BTreeMap`, registration seeds are sorted), which
//!   is what lets the sharded engine reproduce the sequential path
//!   bit-for-bit.
//! * **Inexact "certain" membership** — a cloak that for any practical
//!   purpose lies inside the query area can produce an overlap ratio a
//!   few ulps below 1.0; the certain-count test tolerates
//!   [`lbsp_geom::EPSILON`].
//!
//! Update cost scales with the queries an update actually overlaps, not
//! with the number registered: a uniform grid over the query areas
//! ([`AreaIndex`]) routes each update to the handful of standing
//! queries whose area intersects the old or new cloak.

use crate::{PoissonBinomial, PseudonymId};
use lbsp_geom::{Rect, EPSILON};
use std::collections::{BTreeMap, BTreeSet, HashMap};

/// Identifier for a registered continuous query.
pub type QueryId = u64;

/// Contributions at or above `1 - EPSILON` count as certain members;
/// shares [`lbsp_geom::EPSILON`] with the rest of the geometry layer.
const CERTAIN_THRESHOLD: f64 = 1.0 - EPSILON;

/// Mutations between deterministic re-summations of a query's expected
/// count. The compensated sum alone keeps the error near one ulp per
/// mutation; the periodic reconcile bounds it outright.
const RECONCILE_EVERY: u64 = 4096;

#[derive(Debug)]
struct StandingQuery {
    area: Rect,
    /// pseudonym -> current inclusion probability (only non-zero ones).
    /// Ordered so re-summation and PDF extraction are deterministic.
    contributions: BTreeMap<PseudonymId, f64>,
    /// Neumaier running sum and compensation term of the contributions.
    sum: f64,
    comp: f64,
    /// Members whose contribution passes [`CERTAIN_THRESHOLD`].
    certain: usize,
    /// Contribution edits since the last reconcile.
    mutations: u64,
    /// Bumped whenever the `[certain, possible]` interval changes;
    /// drives standing-delta push over the wire.
    seq: u64,
}

impl StandingQuery {
    fn new(area: Rect) -> StandingQuery {
        StandingQuery {
            area,
            contributions: BTreeMap::new(),
            sum: 0.0,
            comp: 0.0,
            certain: 0,
            mutations: 0,
            seq: 0,
        }
    }

    /// Neumaier's variant of compensated summation: the low-order bits
    /// lost by `sum + v` are captured in `comp` whichever operand is
    /// larger.
    fn add(&mut self, v: f64) {
        let t = self.sum + v;
        if self.sum.abs() >= v.abs() {
            self.comp += (self.sum - t) + v;
        } else {
            self.comp += (v - t) + self.sum;
        }
        self.sum = t;
    }

    /// Re-derives the sum and certain count from the contribution map
    /// in key order. Deterministic, so both the sequential server and
    /// the sharded engine reconcile to identical bits.
    fn reconcile(&mut self) {
        self.sum = 0.0;
        self.comp = 0.0;
        let probs: Vec<f64> = self.contributions.values().copied().collect();
        for p in probs {
            self.add(p);
        }
        self.certain = self
            .contributions
            .values()
            .filter(|&&p| p >= CERTAIN_THRESHOLD)
            .count();
        self.mutations = 0;
    }

    fn set_contribution(&mut self, pseudonym: PseudonymId, p: f64) {
        let old = if p > 0.0 {
            self.contributions.insert(pseudonym, p).unwrap_or(0.0)
        } else {
            self.contributions.remove(&pseudonym).unwrap_or(0.0)
        };
        self.add(p);
        self.add(-old);
        self.certain += usize::from(p >= CERTAIN_THRESHOLD);
        self.certain -= usize::from(old >= CERTAIN_THRESHOLD);
        self.mutations += 1;
        if self.mutations >= RECONCILE_EVERY {
            self.reconcile();
        }
    }

    fn expected(&self) -> f64 {
        self.sum + self.comp
    }

    fn interval(&self) -> (usize, usize) {
        (self.certain, self.contributions.len())
    }
}

/// A uniform grid over the bounding box of all registered query areas.
///
/// Each cell lists the queries whose area touches it; an update only
/// examines the queries listed in the cells its old/new cloak covers.
/// Rebuilt on register/deregister (rare) so the per-update path stays
/// allocation-light. False positives from coarse cells are harmless:
/// every candidate is still checked against the actual query area.
#[derive(Debug, Default)]
struct AreaIndex {
    bounds: Option<Rect>,
    side: usize,
    cells: Vec<Vec<QueryId>>,
}

impl AreaIndex {
    fn rebuild(&mut self, queries: &HashMap<QueryId, StandingQuery>) {
        self.bounds = None;
        self.side = 0;
        self.cells.clear();
        let mut bounds: Option<Rect> = None;
        for q in queries.values() {
            bounds = Some(match bounds {
                Some(b) => b.union(&q.area),
                None => q.area,
            });
        }
        let Some(bounds) = bounds else { return };
        let side = ((queries.len() as f64).sqrt().ceil() as usize).clamp(1, 64);
        self.bounds = Some(bounds);
        self.side = side;
        self.cells = vec![Vec::new(); side * side];
        let mut ids: Vec<QueryId> = queries.keys().copied().collect();
        ids.sort_unstable();
        for id in ids {
            let Some(q) = queries.get(&id) else { continue };
            let (xs, ys) = self.span(&q.area);
            for cy in ys {
                for cx in xs.clone() {
                    self.cells[cy * side + cx].push(id);
                }
            }
        }
    }

    /// Inclusive cell ranges covered by `r`, clamped into the grid.
    fn span(
        &self,
        r: &Rect,
    ) -> (
        std::ops::RangeInclusive<usize>,
        std::ops::RangeInclusive<usize>,
    ) {
        let Some(b) = self.bounds else {
            #[allow(clippy::reversed_empty_ranges)]
            return (1..=0, 1..=0);
        };
        let hi = self.side as isize - 1;
        let axis = |lo: f64, up: f64, blo: f64, extent: f64| {
            let scale = if extent > 0.0 {
                self.side as f64 / extent
            } else {
                0.0
            };
            let i0 = (((lo - blo) * scale).floor() as isize).clamp(0, hi) as usize;
            let i1 = (((up - blo) * scale).floor() as isize).clamp(0, hi) as usize;
            i0..=i1
        };
        (
            axis(r.min_x(), r.max_x(), b.min_x(), b.width()),
            axis(r.min_y(), r.max_y(), b.min_y(), b.height()),
        )
    }

    /// Queries whose cells the old/new regions cover, sorted and
    /// deduplicated (the sorted order also makes downstream float
    /// application deterministic).
    fn candidates(&self, old: Option<&Rect>, new: Option<&Rect>) -> Vec<QueryId> {
        let Some(b) = self.bounds else {
            return Vec::new();
        };
        let mut out = Vec::new();
        for r in [old, new].into_iter().flatten() {
            if !r.intersects(&b) {
                continue;
            }
            let (xs, ys) = self.span(r);
            for cy in ys {
                for cx in xs.clone() {
                    out.extend_from_slice(&self.cells[cy * self.side + cx]);
                }
            }
        }
        out.sort_unstable();
        out.dedup();
        out
    }
}

/// Raw state of one standing count query, as exported for durability.
///
/// This is a *bit-exact* dump, not a logical summary: `sum`/`comp` are
/// the Neumaier accumulator pair (whose low-order bits depend on the
/// full history of contribution edits), `mutations` is the reconcile
/// countdown, and `seq` the change sequence number. Restoring anything
/// less would make a recovered registry diverge from one that never
/// crashed on the very next update. The `certain` count is *not*
/// exported — it is derivable from the contributions and re-derived on
/// restore.
#[derive(Debug, Clone, PartialEq)]
pub struct StandingCountQueryState {
    /// Query id.
    pub id: QueryId,
    /// Monitored area.
    pub area: Rect,
    /// `(pseudonym, inclusion probability)` pairs in ascending
    /// pseudonym order (the map's natural order).
    pub contributions: Vec<(PseudonymId, f64)>,
    /// Neumaier running sum (raw bits).
    pub sum: f64,
    /// Neumaier compensation term (raw bits).
    pub comp: f64,
    /// Contribution edits since the last reconcile.
    pub mutations: u64,
    /// Change sequence number.
    pub seq: u64,
}

/// Raw state of a [`ContinuousRangeCount`] registry (see
/// [`StandingCountQueryState`] for why this is a bit-exact dump).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct ContinuousCountState {
    /// Queries in ascending id order.
    pub queries: Vec<StandingCountQueryState>,
    /// Next id to assign.
    pub next_id: QueryId,
    /// Ids with undelivered interval changes, ascending.
    pub changed: Vec<QueryId>,
    /// Updates applied since creation.
    pub updates_processed: u64,
    /// Cumulative queries examined through the area index.
    pub examined_total: u64,
}

/// A registry of standing count queries, maintained incrementally.
#[derive(Debug, Default)]
pub struct ContinuousRangeCount {
    queries: HashMap<QueryId, StandingQuery>,
    next_id: QueryId,
    index: AreaIndex,
    /// Queries whose `[certain, possible]` interval changed since the
    /// last [`ContinuousRangeCount::take_changed`].
    changed: BTreeSet<QueryId>,
    /// Updates applied since creation (for experiment reporting).
    updates_processed: u64,
    /// Cumulative queries examined through the area index — the cost
    /// proxy the E14 experiment asserts on.
    examined_total: u64,
}

impl ContinuousRangeCount {
    /// Creates an empty registry.
    pub fn new() -> ContinuousRangeCount {
        ContinuousRangeCount::default()
    }

    /// Registers a standing query over `area`, seeded from the current
    /// private records (`initial` provides `(pseudonym, region)` pairs).
    ///
    /// Seeds are applied in pseudonym order regardless of the caller's
    /// iteration order, so the float accumulation — and therefore the
    /// wire-encoded expected count — is identical whether the seeds
    /// come from the sequential store or the sharded engine's shards.
    pub fn register<I>(&mut self, area: Rect, initial: I) -> QueryId
    where
        I: IntoIterator<Item = (PseudonymId, Rect)>,
    {
        let id = self.next_id;
        assert!(self.register_at(id, area, initial));
        id
    }

    /// Installs a standing query under a caller-chosen id (cluster
    /// mirrors install the id node 0 granted instead of allocating).
    /// Idempotent: returns `false` and leaves the registry untouched if
    /// `id` is already present. `next_id` advances past `id` so a later
    /// local allocation can never collide with an installed one. Seed
    /// ordering follows the same pseudonym-sort contract as
    /// [`ContinuousRangeCount::register`].
    pub fn register_at<I>(&mut self, id: QueryId, area: Rect, initial: I) -> bool
    where
        I: IntoIterator<Item = (PseudonymId, Rect)>,
    {
        if self.queries.contains_key(&id) {
            return false;
        }
        self.next_id = self.next_id.max(id + 1);
        let mut q = StandingQuery::new(area);
        let mut seeds: Vec<(PseudonymId, Rect)> = initial.into_iter().collect();
        seeds.sort_unstable_by_key(|&(pseudonym, _)| pseudonym);
        for (pseudonym, region) in seeds {
            q.set_contribution(pseudonym, region.overlap_fraction(&area));
        }
        self.queries.insert(id, q);
        self.index.rebuild(&self.queries);
        true
    }

    /// Deregisters a query.
    pub fn deregister(&mut self, id: QueryId) -> bool {
        let removed = self.queries.remove(&id).is_some();
        if removed {
            self.changed.remove(&id);
            self.index.rebuild(&self.queries);
        }
        removed
    }

    /// Number of standing queries.
    pub fn len(&self) -> usize {
        self.queries.len()
    }

    /// `true` when no queries are registered.
    pub fn is_empty(&self) -> bool {
        self.queries.is_empty()
    }

    /// Applies one cloak update: the record moved from `old` (None on
    /// first appearance) to `new` (None on departure). Only queries
    /// whose area intersects either region are touched; the area index
    /// keeps the scan proportional to overlapping queries, not to the
    /// number registered. Returns how many queries were adjusted.
    pub fn on_update(
        &mut self,
        pseudonym: PseudonymId,
        old: Option<&Rect>,
        new: Option<&Rect>,
    ) -> usize {
        self.updates_processed += 1;
        let ids = self.index.candidates(old, new);
        self.examined_total += ids.len() as u64;
        let mut fanout = 0;
        for id in ids {
            let Some(q) = self.queries.get_mut(&id) else {
                continue;
            };
            let affected = old.is_some_and(|r| r.intersects(&q.area))
                || new.is_some_and(|r| r.intersects(&q.area));
            if !affected {
                continue;
            }
            fanout += 1;
            let before = q.interval();
            let p = new.map_or(0.0, |r| r.overlap_fraction(&q.area));
            q.set_contribution(pseudonym, p);
            if q.interval() != before {
                q.seq += 1;
                self.changed.insert(id);
            }
        }
        fanout
    }

    /// `true` when a query with this id is registered.
    pub fn contains(&self, id: QueryId) -> bool {
        self.queries.contains_key(&id)
    }

    /// Current expected count of a query.
    pub fn expected(&self, id: QueryId) -> Option<f64> {
        self.queries.get(&id).map(StandingQuery::expected)
    }

    /// Current `[certain, possible]` interval of a query. A member is
    /// certain when its inclusion probability reaches `1 - EPSILON`:
    /// overlap ratios of fully-contained cloaks can land a few ulps
    /// below 1.0 and must not be demoted to merely possible.
    pub fn interval(&self, id: QueryId) -> Option<(usize, usize)> {
        self.queries.get(&id).map(StandingQuery::interval)
    }

    /// Current exact count PDF of a query (computed on demand).
    pub fn pdf(&self, id: QueryId) -> Option<PoissonBinomial> {
        let q = self.queries.get(&id)?;
        let probs: Vec<f64> = q.contributions.values().copied().collect();
        Some(PoissonBinomial::new(&probs))
    }

    /// The area a query monitors.
    pub fn area(&self, id: QueryId) -> Option<Rect> {
        self.queries.get(&id).map(|q| q.area)
    }

    /// Change sequence number of a query: bumped each time its
    /// `[certain, possible]` interval changes.
    pub fn seq(&self, id: QueryId) -> Option<u64> {
        self.queries.get(&id).map(|q| q.seq)
    }

    /// Drains the set of queries whose interval changed since the last
    /// call, in ascending id order.
    pub fn take_changed(&mut self) -> Vec<QueryId> {
        std::mem::take(&mut self.changed).into_iter().collect()
    }

    /// Updates processed so far.
    pub fn updates_processed(&self) -> u64 {
        self.updates_processed
    }

    /// Cumulative queries examined via the area index across all
    /// updates (including near-misses filtered by the exact area test).
    pub fn examined_total(&self) -> u64 {
        self.examined_total
    }

    /// Exports the registry's raw state for durability. Canonical: all
    /// vectors come out sorted, so two registries with equal logical
    /// state export equal values regardless of hash-map order.
    pub fn export_state(&self) -> ContinuousCountState {
        let mut queries: Vec<StandingCountQueryState> = self
            .queries
            .iter()
            .map(|(&id, q)| StandingCountQueryState {
                id,
                area: q.area,
                contributions: q.contributions.iter().map(|(&p, &v)| (p, v)).collect(),
                sum: q.sum,
                comp: q.comp,
                mutations: q.mutations,
                seq: q.seq,
            })
            .collect();
        queries.sort_unstable_by_key(|q| q.id);
        ContinuousCountState {
            queries,
            next_id: self.next_id,
            changed: self.changed.iter().copied().collect(),
            updates_processed: self.updates_processed,
            examined_total: self.examined_total,
        }
    }

    /// Rebuilds a registry from exported state. The `certain` count is
    /// re-derived from the contributions (it is a pure function of
    /// them) and the area index is rebuilt; everything else — including
    /// the raw accumulator bits — is restored verbatim, so the result
    /// behaves identically to the registry that produced the export.
    pub fn restore_state(state: &ContinuousCountState) -> ContinuousRangeCount {
        let mut queries: HashMap<QueryId, StandingQuery> =
            HashMap::with_capacity(state.queries.len());
        for qs in &state.queries {
            let contributions: BTreeMap<PseudonymId, f64> =
                qs.contributions.iter().copied().collect();
            let certain = contributions
                .values()
                .filter(|&&p| p >= CERTAIN_THRESHOLD)
                .count();
            queries.insert(
                qs.id,
                StandingQuery {
                    area: qs.area,
                    contributions,
                    sum: qs.sum,
                    comp: qs.comp,
                    certain,
                    mutations: qs.mutations,
                    seq: qs.seq,
                },
            );
        }
        let mut index = AreaIndex::default();
        index.rebuild(&queries);
        ContinuousRangeCount {
            queries,
            next_id: state.next_id,
            index,
            changed: state.changed.iter().copied().collect(),
            updates_processed: state.updates_processed,
            examined_total: state.examined_total,
        }
    }
}

/// A standing public NN query ("keep telling me my nearest mobile
/// user"), maintained incrementally.
///
/// The maintained state is the pruning threshold: the best (smallest)
/// max-distance over all records plus the current candidate set. An
/// update only triggers recomputation when it can change the answer —
/// the updated record enters the candidate band, leaves it, or tightens
/// the threshold — so a stream of far-away updates costs O(1) each.
#[derive(Debug)]
pub struct ContinuousNnMonitor {
    from: lbsp_geom::Point,
    /// pseudonym -> (min_dist, max_dist) for every known record.
    bands: HashMap<PseudonymId, (f64, f64)>,
    /// Smallest max_dist over all records (the pruning threshold).
    threshold: f64,
    /// Updates that required recomputing the threshold/candidates.
    pub recomputes: u64,
    /// Updates handled with the O(1) fast path.
    pub fast_updates: u64,
}

impl ContinuousNnMonitor {
    /// Creates a monitor for the query point, seeded from current
    /// records.
    pub fn new<I>(from: lbsp_geom::Point, initial: I) -> ContinuousNnMonitor
    where
        I: IntoIterator<Item = (PseudonymId, Rect)>,
    {
        let mut m = ContinuousNnMonitor {
            from,
            bands: HashMap::new(),
            threshold: f64::INFINITY,
            recomputes: 0,
            fast_updates: 0,
        };
        for (pseudonym, region) in initial {
            let band = m.band_of(&region);
            m.bands.insert(pseudonym, band);
            m.threshold = m.threshold.min(band.1);
        }
        m
    }

    fn band_of(&self, region: &Rect) -> (f64, f64) {
        (
            lbsp_geom::min_dist_point_rect(self.from, region),
            lbsp_geom::max_dist_point_rect(self.from, region),
        )
    }

    fn recompute_threshold(&mut self) {
        self.threshold = self
            .bands
            .values()
            .map(|&(_, max)| max)
            .fold(f64::INFINITY, f64::min);
        self.recomputes += 1;
    }

    /// Applies one record update (`None` region = departure).
    pub fn on_update(&mut self, pseudonym: PseudonymId, region: Option<&Rect>) {
        let old = self.bands.get(&pseudonym).copied();
        match region {
            Some(r) => {
                let band = self.band_of(r);
                self.bands.insert(pseudonym, band);
                if band.1 <= self.threshold {
                    // Tightens (or equals) the threshold: cheap update.
                    self.threshold = band.1;
                    self.fast_updates += 1;
                } else if old.is_some_and(|(_, omax)| omax <= self.threshold) {
                    // The previous holder of the threshold moved away.
                    self.recompute_threshold();
                } else {
                    self.fast_updates += 1;
                }
            }
            None => {
                if self.bands.remove(&pseudonym).is_some()
                    && old.is_some_and(|(_, omax)| omax <= self.threshold)
                {
                    self.recompute_threshold();
                } else {
                    self.fast_updates += 1;
                }
            }
        }
    }

    /// The current candidate set: every record whose min-distance is
    /// within the threshold (the same rule as [`crate::PublicNnQuery`]).
    pub fn candidates(&self) -> Vec<PseudonymId> {
        let mut out: Vec<PseudonymId> = self
            .bands
            .iter()
            .filter(|(_, &(min, _))| min <= self.threshold)
            .map(|(&id, _)| id)
            .collect();
        out.sort_unstable();
        out
    }

    /// Number of tracked records.
    pub fn tracked(&self) -> usize {
        self.bands.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{PrivateRecord, PrivateStore, PublicCountQuery};

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new_unchecked(x0, y0, x1, y1)
    }

    #[test]
    fn register_seeds_from_existing_records() {
        let mut store = PrivateStore::new();
        store.upsert(PrivateRecord::new(1, rect(0.0, 0.0, 0.2, 0.2)));
        store.upsert(PrivateRecord::new(2, rect(0.4, 0.4, 0.8, 0.8)));
        let mut cont = ContinuousRangeCount::new();
        let q = cont.register(
            rect(0.0, 0.0, 0.5, 0.5),
            store.iter().map(|r| (r.pseudonym, r.region)),
        );
        // Record 1 fully inside (p=1); record 2 overlap fraction:
        // intersection [0.4,0.5]^2 area 0.01 over region area 0.16.
        let expected = cont.expected(q).unwrap();
        assert!((expected - (1.0 + 0.01 / 0.16)).abs() < 1e-9);
        assert_eq!(cont.interval(q), Some((1, 2)));
    }

    #[test]
    fn register_at_is_idempotent_and_guides_next_id() {
        let mut cont = ContinuousRangeCount::new();
        assert!(cont.register_at(5, rect(0.0, 0.0, 0.5, 0.5), std::iter::empty()));
        // A replay of the same install is a no-op.
        assert!(!cont.register_at(5, rect(0.0, 0.0, 0.5, 0.5), std::iter::empty()));
        assert_eq!(cont.len(), 1);
        // Local allocation continues past the installed id.
        assert_eq!(
            cont.register(rect(0.5, 0.5, 1.0, 1.0), std::iter::empty()),
            6
        );
        // Out-of-order installs never collide with allocation either.
        assert!(cont.register_at(3, rect(0.0, 0.0, 0.1, 0.1), std::iter::empty()));
        assert_eq!(
            cont.register(rect(0.5, 0.5, 1.0, 1.0), std::iter::empty()),
            7
        );
    }

    #[test]
    fn incremental_matches_full_recompute() {
        // Drive a store and the continuous monitor with the same update
        // stream; the maintained expected count must equal a from-scratch
        // evaluation at every step.
        let area = rect(0.25, 0.25, 0.75, 0.75);
        let mut store = PrivateStore::new();
        let mut cont = ContinuousRangeCount::new();
        let q = cont.register(area, std::iter::empty());
        let moves: Vec<(PseudonymId, Rect)> = (0..50u64)
            .map(|i| {
                let t = i as f64 / 50.0;
                let x = (t * 0.9).min(0.9);
                (i % 10, rect(x, 0.3, x + 0.1, 0.45))
            })
            .collect();
        for (pseudonym, region) in moves {
            let old = store.upsert(PrivateRecord::new(pseudonym, region));
            cont.on_update(pseudonym, old.as_ref(), Some(&region));
            let full = PublicCountQuery::new(area).evaluate(&store);
            let inc = cont.expected(q).unwrap();
            assert!(
                (full.expected - inc).abs() < 1e-9,
                "incremental {inc} vs full {}",
                full.expected
            );
            assert_eq!(cont.interval(q).unwrap().1, full.possible);
        }
        assert_eq!(cont.updates_processed(), 50);
    }

    #[test]
    fn expected_does_not_drift_over_a_million_updates() {
        use rand::rngs::StdRng;
        use rand::{RngExt as _, SeedableRng};
        // A long randomized stream of moves and departures: the
        // incrementally-maintained expected count must still agree with
        // a from-scratch evaluation to 1e-9 at the end. This is the
        // regression test for the old `expected += p - old` drift.
        let mut rng = StdRng::seed_from_u64(20060406);
        let areas = [
            rect(0.0, 0.0, 0.3, 0.3),
            rect(0.2, 0.2, 0.7, 0.7),
            rect(0.6, 0.1, 0.9, 0.4),
            rect(0.1, 0.6, 0.8, 0.95),
        ];
        let mut store = PrivateStore::new();
        let mut cont = ContinuousRangeCount::new();
        let ids: Vec<QueryId> = areas
            .iter()
            .map(|a| cont.register(*a, std::iter::empty()))
            .collect();
        for step in 0..1_000_000u64 {
            let id = step % 500;
            if step % 97 == 0 {
                if let Some(old) = store.remove(id) {
                    cont.on_update(id, Some(&old), None);
                }
                continue;
            }
            let x0: f64 = rng.random_range(0.0..0.9);
            let y0: f64 = rng.random_range(0.0..0.9);
            let w: f64 = rng.random_range(0.01..0.1);
            let r = rect(x0, y0, (x0 + w).min(1.0), (y0 + w).min(1.0));
            let old = store.upsert(PrivateRecord::new(id, r));
            cont.on_update(id, old.as_ref(), Some(&r));
        }
        for (a, q) in areas.iter().zip(&ids) {
            let full = PublicCountQuery::new(*a).evaluate(&store);
            let inc = cont.expected(*q).unwrap();
            assert!(
                (full.expected - inc).abs() < 1e-9,
                "drift {:e} after 1M updates",
                (full.expected - inc).abs()
            );
            assert_eq!(cont.interval(*q).unwrap().1, full.possible);
        }
    }

    #[test]
    fn certain_membership_tolerates_inexact_overlap_ratios() {
        let area = rect(0.0, 0.0, 1.0, 1.0);
        let mut cont = ContinuousRangeCount::new();
        let q = cont.register(area, std::iter::empty());
        // The cloak overhangs the query edge by one ulp, so the overlap
        // ratio lands a hair below 1.0 even though the region is, for
        // any practical purpose, fully inside the query area. (A cloak
        // with bounds exactly inside yields intersection == cloak and
        // the ratio x/x is exactly 1.0 in IEEE arithmetic — the inexact
        // case needs this overhang.)
        let r = rect(0.9, 0.9, 1.0 + f64::EPSILON, 1.0);
        let frac = r.overlap_fraction(&area);
        assert!(frac < 1.0, "premise: the ratio is inexact ({frac})");
        assert!(frac > 1.0 - 1e-12, "premise: but only by ulps ({frac})");
        cont.on_update(3, None, Some(&r));
        assert_eq!(
            cont.interval(q),
            Some((1, 1)),
            "ulp-inexact full overlap still counts as certain"
        );
    }

    #[test]
    fn departures_remove_contributions() {
        let area = rect(0.0, 0.0, 1.0, 1.0);
        let mut cont = ContinuousRangeCount::new();
        let q = cont.register(area, std::iter::empty());
        let r = rect(0.4, 0.4, 0.6, 0.6);
        cont.on_update(7, None, Some(&r));
        assert!((cont.expected(q).unwrap() - 1.0).abs() < 1e-12);
        cont.on_update(7, Some(&r), None);
        assert_eq!(cont.expected(q).unwrap(), 0.0);
        assert_eq!(cont.interval(q), Some((0, 0)));
    }

    #[test]
    fn unaffected_queries_are_untouched() {
        let mut cont = ContinuousRangeCount::new();
        let q1 = cont.register(rect(0.0, 0.0, 0.1, 0.1), std::iter::empty());
        let q2 = cont.register(rect(0.9, 0.9, 1.0, 1.0), std::iter::empty());
        let r = rect(0.4, 0.4, 0.6, 0.6);
        let fanout = cont.on_update(1, None, Some(&r));
        assert_eq!(fanout, 0, "no query overlaps the update");
        assert_eq!(cont.expected(q1), Some(0.0));
        assert_eq!(cont.expected(q2), Some(0.0));
    }

    #[test]
    fn area_index_routes_updates_to_overlapping_queries_only() {
        // Many queries packed into the left half of the world; updates
        // confined to the right half must examine only the handful of
        // right-half queries, independent of the left-half population.
        let mut cont = ContinuousRangeCount::new();
        for i in 0..200u64 {
            let x = (i % 20) as f64 * 0.02;
            let y = (i / 20) as f64 * 0.04;
            cont.register(rect(x, y, x + 0.02, y + 0.04), std::iter::empty());
        }
        let right = cont.register(rect(0.8, 0.1, 0.9, 0.3), std::iter::empty());
        let examined_before = cont.examined_total();
        let r = rect(0.82, 0.15, 0.86, 0.2);
        let fanout = cont.on_update(1, None, Some(&r));
        assert_eq!(fanout, 1, "only the right-half query is adjusted");
        let examined = cont.examined_total() - examined_before;
        assert!(
            examined < 20,
            "grid examined {examined} of 201 registered queries"
        );
        assert!((cont.expected(right).unwrap() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn interval_changes_bump_seq_and_feed_take_changed() {
        let mut cont = ContinuousRangeCount::new();
        let q = cont.register(rect(0.0, 0.0, 0.5, 0.5), std::iter::empty());
        assert_eq!(cont.seq(q), Some(0));
        assert!(cont.take_changed().is_empty());
        // A record appears inside the area: possible count changes.
        let r = rect(0.1, 0.1, 0.2, 0.2);
        cont.on_update(9, None, Some(&r));
        assert_eq!(cont.seq(q), Some(1));
        assert_eq!(cont.take_changed(), vec![q]);
        assert!(cont.take_changed().is_empty(), "drained");
        // The record moves within the area, staying certain: the
        // interval is unchanged, so no delta is signalled.
        let r2 = rect(0.2, 0.2, 0.3, 0.3);
        cont.on_update(9, Some(&r), Some(&r2));
        assert_eq!(cont.seq(q), Some(1));
        assert!(cont.take_changed().is_empty());
        // Departure changes the interval again.
        cont.on_update(9, Some(&r2), None);
        assert_eq!(cont.seq(q), Some(2));
        assert_eq!(cont.take_changed(), vec![q]);
    }

    #[test]
    fn pdf_on_demand_matches_snapshot_query() {
        let area = rect(0.0, 0.0, 1.0, 1.0);
        let mut store = PrivateStore::new();
        let mut cont = ContinuousRangeCount::new();
        let q = cont.register(area, std::iter::empty());
        for i in 0..5u64 {
            let r = rect(0.8 + 0.04 * i as f64, 0.0, 1.2, 1.0);
            let old = store.upsert(PrivateRecord::new(i, r));
            cont.on_update(i, old.as_ref(), Some(&r));
        }
        let snapshot = PublicCountQuery::new(area).evaluate(&store);
        let live = cont.pdf(q).unwrap();
        for k in 0..=5 {
            assert!((snapshot.pdf.pmf(k) - live.pmf(k)).abs() < 1e-9, "k={k}");
        }
    }

    #[test]
    fn nn_monitor_matches_one_shot_query() {
        use crate::PublicNnQuery;
        use lbsp_geom::Point;
        use rand::rngs::StdRng;
        use rand::{RngExt as _, SeedableRng};
        let from = Point::new(0.5, 0.5);
        let mut rng = StdRng::seed_from_u64(13);
        let mut store = PrivateStore::new();
        let mut monitor = ContinuousNnMonitor::new(from, std::iter::empty());
        // Stream of random cloak updates over 30 pseudonyms.
        for step in 0..300u64 {
            let id = step % 30;
            let x0 = rng.random_range(0.0..0.9);
            let y0 = rng.random_range(0.0..0.9);
            let r = rect(x0, y0, x0 + 0.1, y0 + 0.1);
            store.upsert(PrivateRecord::new(id, r));
            monitor.on_update(id, Some(&r));
            // Invariant: the monitor's candidate set equals the one-shot
            // pruning over the same store state.
            let mut expect: Vec<_> = PublicNnQuery::new(from)
                .candidate_records(&store)
                .into_iter()
                .map(|(id, _)| id)
                .collect();
            expect.sort_unstable();
            assert_eq!(monitor.candidates(), expect, "step {step}");
        }
        // The fast path carried most of the load.
        assert!(monitor.fast_updates > monitor.recomputes);
        assert_eq!(monitor.tracked(), 30);
    }

    #[test]
    fn nn_monitor_handles_departures() {
        use lbsp_geom::Point;
        let from = Point::new(0.0, 0.0);
        let near = rect(0.1, 0.1, 0.2, 0.2);
        let far = rect(0.8, 0.8, 0.9, 0.9);
        let mut monitor = ContinuousNnMonitor::new(from, vec![(1, near), (2, far)]);
        assert_eq!(monitor.candidates(), vec![1], "far record pruned");
        // The near record leaves: the far one becomes the answer.
        monitor.on_update(1, None);
        assert_eq!(monitor.candidates(), vec![2]);
        assert_eq!(monitor.tracked(), 1);
        // Removing a ghost is a no-op fast update.
        let fast_before = monitor.fast_updates;
        monitor.on_update(99, None);
        assert_eq!(monitor.fast_updates, fast_before + 1);
    }

    #[test]
    fn nn_monitor_survives_threshold_ties_and_holder_churn() {
        use lbsp_geom::Point;
        let from = Point::new(0.0, 0.0);
        // Two mirror-image rects with identical distance bands: a tie
        // at the threshold.
        let tie_a = rect(0.3, 0.0, 0.4, 0.1);
        let tie_b = rect(0.0, 0.3, 0.1, 0.4);
        let far = rect(0.7, 0.7, 0.8, 0.8);
        let mut model: HashMap<PseudonymId, Rect> = HashMap::new();
        let mut monitor = ContinuousNnMonitor::new(from, std::iter::empty());
        let apply = |m: &mut ContinuousNnMonitor,
                     model: &mut HashMap<PseudonymId, Rect>,
                     id: PseudonymId,
                     r: Option<Rect>| {
            match r {
                Some(r) => {
                    model.insert(id, r);
                    m.on_update(id, Some(&r));
                }
                None => {
                    model.remove(&id);
                    m.on_update(id, None);
                }
            }
            let fresh = ContinuousNnMonitor::new(from, model.iter().map(|(&id, &r)| (id, r)));
            assert_eq!(m.candidates(), fresh.candidates(), "after touching {id}");
        };
        apply(&mut monitor, &mut model, 1, Some(tie_a));
        apply(&mut monitor, &mut model, 2, Some(tie_b));
        apply(&mut monitor, &mut model, 3, Some(far));
        // Repeatedly remove whichever tied record holds the threshold,
        // then re-insert the departed pseudonym.
        for _ in 0..5 {
            apply(&mut monitor, &mut model, 1, None);
            apply(&mut monitor, &mut model, 2, None);
            apply(&mut monitor, &mut model, 1, Some(tie_a));
            apply(&mut monitor, &mut model, 2, Some(tie_b));
        }
        // Threshold holder moves far away, then comes back.
        apply(&mut monitor, &mut model, 1, Some(far));
        apply(&mut monitor, &mut model, 2, Some(far));
        apply(&mut monitor, &mut model, 1, Some(tie_a));
        assert_eq!(monitor.candidates(), vec![1]);
    }

    #[test]
    fn export_restore_roundtrip_is_exact() {
        use rand::rngs::StdRng;
        use rand::{RngExt as _, SeedableRng};
        let mut rng = StdRng::seed_from_u64(77);
        let mut cont = ContinuousRangeCount::new();
        for a in [
            rect(0.0, 0.0, 0.4, 0.4),
            rect(0.3, 0.3, 0.9, 0.9),
            rect(0.5, 0.0, 1.0, 0.5),
        ] {
            cont.register(a, std::iter::empty());
        }
        let mut stream = Vec::new();
        for step in 0..500u64 {
            let id = step % 40;
            let x0 = rng.random_range(0.0..0.9);
            let y0 = rng.random_range(0.0..0.9);
            stream.push((id, rect(x0, y0, x0 + 0.08, y0 + 0.08)));
        }
        let mut prev: HashMap<PseudonymId, Rect> = HashMap::new();
        for &(id, r) in &stream[..300] {
            let old = prev.insert(id, r);
            cont.on_update(id, old.as_ref(), Some(&r));
        }
        // Partially drain change notifications so the restored registry
        // also has to reproduce the undelivered set.
        let _ = cont.take_changed();
        for &(id, r) in &stream[300..400] {
            let old = prev.insert(id, r);
            cont.on_update(id, old.as_ref(), Some(&r));
        }
        let state = cont.export_state();
        let mut restored = ContinuousRangeCount::restore_state(&state);
        assert_eq!(restored.export_state(), state, "roundtrip is lossless");
        // Both registries must now evolve identically, bit for bit.
        for &(id, r) in &stream[400..] {
            let old = prev.insert(id, r);
            cont.on_update(id, old.as_ref(), Some(&r));
            restored.on_update(id, old.as_ref(), Some(&r));
        }
        for q in 0..3u64 {
            assert_eq!(
                cont.expected(q).map(f64::to_bits),
                restored.expected(q).map(f64::to_bits),
                "expected count bits diverged for query {q}"
            );
            assert_eq!(cont.interval(q), restored.interval(q));
            assert_eq!(cont.seq(q), restored.seq(q));
        }
        assert_eq!(cont.take_changed(), restored.take_changed());
        assert_eq!(cont.updates_processed(), restored.updates_processed());
        assert_eq!(cont.examined_total(), restored.examined_total());
    }

    #[test]
    fn deregister_and_bookkeeping() {
        let mut cont = ContinuousRangeCount::new();
        let q = cont.register(rect(0.0, 0.0, 1.0, 1.0), std::iter::empty());
        assert_eq!(cont.len(), 1);
        assert!(!cont.is_empty());
        assert!(cont.area(q).is_some());
        assert!(cont.deregister(q));
        assert!(!cont.deregister(q));
        assert!(cont.is_empty());
        assert_eq!(cont.expected(q), None);
        assert_eq!(cont.interval(q), None);
        assert!(cont.pdf(q).is_none());
    }
}
