//! Public nearest-neighbor queries over private data (Fig. 6b).
//!
//! "A public object (e.g., a gas station) asks about its nearest mobile
//! user to send her a personalized e-coupon." The mobile users are only
//! known as cloaked rectangles, so the answer is probabilistic. The
//! paper's pruning rule: eliminate user `A` when some user `D` satisfies
//! "any location of object D within its cloaked region would be more
//! near to the gas station than any location of [A]" — i.e.
//! `max_dist(q, D) < min_dist(q, A)`.
//!
//! The three answer formats of the paper are all provided:
//! 1. the set of potential nearest users;
//! 2. the single user with the highest probability of being nearest;
//! 3. a probability density function `{(user, p_user)}`.
//!
//! Win probabilities are estimated by seeded Monte-Carlo integration
//! under the paper's stated uniform-position assumption; each candidate's
//! position is sampled independently inside its cloak and the nearest
//! one wins the round.

use crate::{PrivateStore, PseudonymId};
use lbsp_geom::{max_dist_point_rect, min_dist_point_rect, uniform_point_in_rect, Point, Rect};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// One candidate's estimated probability of being the nearest user.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NnProbability {
    /// The candidate's pseudonym.
    pub pseudonym: PseudonymId,
    /// Estimated `P(this user is the nearest)`.
    pub probability: f64,
    /// Closest possible distance to the query point.
    pub min_dist: f64,
    /// Farthest possible distance to the query point.
    pub max_dist: f64,
}

/// The full answer to a public NN query.
#[derive(Debug, Clone, PartialEq)]
pub struct PublicNnAnswer {
    /// Candidates with probabilities, sorted by descending probability
    /// (format 3; its keys are format 1; its head is format 2).
    pub candidates: Vec<NnProbability>,
}

impl PublicNnAnswer {
    /// Format 1: the set of potential nearest users.
    pub fn candidate_set(&self) -> Vec<PseudonymId> {
        self.candidates.iter().map(|c| c.pseudonym).collect()
    }

    /// Format 2: the most probable nearest user.
    pub fn most_probable(&self) -> Option<PseudonymId> {
        self.candidates.first().map(|c| c.pseudonym)
    }

    /// Total probability mass (≈ 1 when any candidate exists).
    pub fn total_probability(&self) -> f64 {
        self.candidates.iter().map(|c| c.probability).sum()
    }
}

/// A public NN query issued from an exact location (e.g. a gas station).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublicNnQuery {
    /// The querying object's exact location.
    pub from: Point,
    /// Monte-Carlo rounds for probability estimation.
    pub samples: u32,
    /// RNG seed so answers are reproducible.
    pub seed: u64,
}

impl PublicNnQuery {
    /// Creates a query with default estimation parameters.
    pub fn new(from: Point) -> PublicNnQuery {
        PublicNnQuery {
            from,
            samples: 4096,
            seed: 0x5EED,
        }
    }

    /// Overrides the Monte-Carlo sample count.
    pub fn with_samples(mut self, samples: u32) -> PublicNnQuery {
        self.samples = samples.max(1);
        self
    }

    /// Overrides the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> PublicNnQuery {
        self.seed = seed;
        self
    }

    /// The paper's pruning rule: keep a record iff no other record's
    /// max-distance beats its min-distance.
    pub fn candidate_records(&self, store: &PrivateStore) -> Vec<(PseudonymId, Rect)> {
        let records: Vec<(PseudonymId, Rect)> =
            store.iter().map(|r| (r.pseudonym, r.region)).collect();
        if records.is_empty() {
            return Vec::new();
        }
        let best_max = records
            .iter()
            .map(|(_, r)| max_dist_point_rect(self.from, r))
            .fold(f64::INFINITY, f64::min);
        records
            .into_iter()
            .filter(|(_, r)| min_dist_point_rect(self.from, r) <= best_max)
            .collect()
    }

    /// Evaluates the query: prune, then estimate win probabilities.
    pub fn evaluate(&self, store: &PrivateStore) -> PublicNnAnswer {
        let candidates = self.candidate_records(store);
        if candidates.is_empty() {
            return PublicNnAnswer {
                candidates: Vec::new(),
            };
        }
        if candidates.len() == 1 {
            let (pseudonym, region) = candidates[0];
            return PublicNnAnswer {
                candidates: vec![NnProbability {
                    pseudonym,
                    probability: 1.0,
                    min_dist: min_dist_point_rect(self.from, &region),
                    max_dist: max_dist_point_rect(self.from, &region),
                }],
            };
        }
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut wins = vec![0u32; candidates.len()];
        for _ in 0..self.samples {
            let mut best = 0usize;
            let mut best_d = f64::INFINITY;
            for (i, (_, region)) in candidates.iter().enumerate() {
                let p = uniform_point_in_rect(&mut rng, region);
                let d = self.from.dist_sq(p);
                if d < best_d {
                    best_d = d;
                    best = i;
                }
            }
            wins[best] += 1;
        }
        let mut out: Vec<NnProbability> = candidates
            .iter()
            .zip(&wins)
            .map(|(&(pseudonym, region), &w)| NnProbability {
                pseudonym,
                probability: w as f64 / self.samples as f64,
                min_dist: min_dist_point_rect(self.from, &region),
                max_dist: max_dist_point_rect(self.from, &region),
            })
            .collect();
        out.sort_by(|a, b| {
            b.probability
                .total_cmp(&a.probability)
                .then(a.pseudonym.cmp(&b.pseudonym))
        });
        PublicNnAnswer { candidates: out }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::PrivateRecord;

    fn rect(x0: f64, y0: f64, x1: f64, y1: f64) -> Rect {
        Rect::new_unchecked(x0, y0, x1, y1)
    }

    /// Geometry mirroring Fig. 6b: gas station `q`, with D close, E and
    /// F overlapping D's distance band, and A, B, C strictly dominated
    /// by D.
    fn paper_store() -> (Point, PrivateStore) {
        let q = Point::new(0.5, 0.5);
        let mut store = PrivateStore::new();
        // D: tight cloak near the query. Distances in [0.04, ~0.061].
        store.upsert(PrivateRecord::new(3, rect(0.54, 0.49, 0.56, 0.51)));
        // E: cloak whose min distance (0.04) beats D's max somewhere.
        store.upsert(PrivateRecord::new(4, rect(0.42, 0.46, 0.46, 0.54)));
        // F: another overlapping band, min 0.055, max ~0.13.
        store.upsert(PrivateRecord::new(5, rect(0.5, 0.555, 0.56, 0.615)));
        // A, B, C: min distances all beyond D's max (~0.061).
        store.upsert(PrivateRecord::new(0, rect(0.1, 0.1, 0.2, 0.2)));
        store.upsert(PrivateRecord::new(1, rect(0.8, 0.8, 0.9, 0.9)));
        store.upsert(PrivateRecord::new(2, rect(0.1, 0.8, 0.2, 0.9)));
        (q, store)
    }

    #[test]
    fn paper_worked_example_candidate_set() {
        let (q, store) = paper_store();
        let ans = PublicNnQuery::new(q).evaluate(&store);
        let mut set = ans.candidate_set();
        set.sort_unstable();
        assert_eq!(set, vec![3, 4, 5], "the paper's {{E, D, F}}");
    }

    #[test]
    fn paper_worked_example_most_probable_is_d() {
        let (q, store) = paper_store();
        let ans = PublicNnQuery::new(q).with_samples(20_000).evaluate(&store);
        // D's whole cloak sits at distance <= 0.078 while E and F are
        // mostly farther: D should win the probability race.
        assert_eq!(ans.most_probable(), Some(3));
        assert!((ans.total_probability() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn pruning_rule_matches_paper_quote() {
        let (q, store) = paper_store();
        let query = PublicNnQuery::new(q);
        let cands = query.candidate_records(&store);
        let ids: Vec<_> = cands.iter().map(|&(id, _)| id).collect();
        for dominated in [0u64, 1, 2] {
            assert!(
                !ids.contains(&dominated),
                "any location of D is nearer than any location of {dominated}"
            );
        }
    }

    #[test]
    fn empty_store() {
        let store = PrivateStore::new();
        let ans = PublicNnQuery::new(Point::ORIGIN).evaluate(&store);
        assert!(ans.candidates.is_empty());
        assert_eq!(ans.most_probable(), None);
        assert_eq!(ans.total_probability(), 0.0);
    }

    #[test]
    fn single_candidate_gets_probability_one() {
        let mut store = PrivateStore::new();
        store.upsert(PrivateRecord::new(9, rect(0.4, 0.4, 0.6, 0.6)));
        let ans = PublicNnQuery::new(Point::ORIGIN).evaluate(&store);
        assert_eq!(ans.candidates.len(), 1);
        assert_eq!(ans.candidates[0].probability, 1.0);
        assert!(ans.candidates[0].min_dist > 0.0);
        assert!(ans.candidates[0].max_dist >= ans.candidates[0].min_dist);
    }

    #[test]
    fn symmetric_cloaks_split_probability_evenly() {
        // Two congruent cloaks mirrored across the query point must get
        // ~equal win probability — an analytic anchor for the
        // Monte-Carlo estimator.
        let q = Point::new(0.5, 0.5);
        let mut store = PrivateStore::new();
        store.upsert(PrivateRecord::new(1, rect(0.2, 0.4, 0.4, 0.6)));
        store.upsert(PrivateRecord::new(2, rect(0.6, 0.4, 0.8, 0.6)));
        let ans = PublicNnQuery::new(q).with_samples(40_000).evaluate(&store);
        for c in &ans.candidates {
            assert!(
                (c.probability - 0.5).abs() < 0.02,
                "pseudonym {} got {}",
                c.pseudonym,
                c.probability
            );
        }
    }

    #[test]
    fn disjoint_distance_bands_are_deterministic() {
        // When one cloak's max distance is below the other's min, the
        // near one wins with probability 1 (and the far one is pruned).
        let q = Point::new(0.0, 0.0);
        let mut store = PrivateStore::new();
        store.upsert(PrivateRecord::new(1, rect(0.1, 0.1, 0.2, 0.2)));
        store.upsert(PrivateRecord::new(2, rect(0.7, 0.7, 0.8, 0.8)));
        let ans = PublicNnQuery::new(q).evaluate(&store);
        assert_eq!(ans.candidate_set(), vec![1]);
        assert_eq!(ans.candidates[0].probability, 1.0);
    }

    #[test]
    fn answers_are_reproducible_across_runs() {
        let (q, store) = paper_store();
        let a = PublicNnQuery::new(q).with_seed(7).evaluate(&store);
        let b = PublicNnQuery::new(q).with_seed(7).evaluate(&store);
        assert_eq!(a, b);
        let c = PublicNnQuery::new(q).with_seed(8).evaluate(&store);
        // Same candidates, slightly different estimates.
        assert_eq!(a.candidate_set().len(), c.candidate_set().len());
    }

    #[test]
    fn analytic_1d_check() {
        // Query at origin; two unit-height cloaks on the x-axis:
        // X1 ~ U[1, 2] (degenerate in y), X2 ~ U[1, 2]. By symmetry each
        // wins 1/2. Then shift cloak 2 to U[1.5, 2.5]:
        // P(X2 < X1) = P(U2 < U1) where U1~U[1,2], U2~U[1.5,2.5]:
        // = ∫ P(U2 < u) f1(u) du = ∫_{1.5}^{2} (u-1.5) du = 0.125.
        let q = Point::new(0.0, 0.0);
        let mut store = PrivateStore::new();
        store.upsert(PrivateRecord::new(1, rect(1.0, 0.0, 2.0, 0.0)));
        store.upsert(PrivateRecord::new(2, rect(1.5, 0.0, 2.5, 0.0)));
        let ans = PublicNnQuery::new(q).with_samples(60_000).evaluate(&store);
        let p2 = ans
            .candidates
            .iter()
            .find(|c| c.pseudonym == 2)
            .unwrap()
            .probability;
        assert!((p2 - 0.125).abs() < 0.01, "analytic 0.125 vs {p2}");
    }
}
