//! Poisson–binomial distribution: the exact PDF of a sum of independent,
//! non-identical Bernoulli trials.
//!
//! This is the "probability density function" answer format of Fig. 6a:
//! each cloaked object contributes to the count with its own inclusion
//! probability `p_i` (its region's overlap ratio with the query area),
//! and the count's distribution is exactly Poisson–binomial. The classic
//! O(n²) dynamic program is exact and ample at these scales (a query
//! rarely overlaps more than a few thousand cloaks).

/// The distribution of `X = Σ Bernoulli(p_i)`.
///
/// ```
/// use lbsp_server::PoissonBinomial;
///
/// // The paper's Fig. 6a inclusion probabilities.
/// let d = PoissonBinomial::new(&[1.0, 0.75, 0.5, 0.2, 0.25]);
/// assert!((d.mean() - 2.7).abs() < 1e-12);  // the "absolute value" answer
/// assert_eq!(d.pmf(0), 0.0);                // one object is certain
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct PoissonBinomial {
    pmf: Vec<f64>,
}

impl PoissonBinomial {
    /// Builds the distribution from inclusion probabilities.
    ///
    /// # Panics
    /// Panics when any probability is outside `[0, 1]` or non-finite —
    /// overlap ratios are clamped upstream, so an out-of-range value
    /// here is a logic error worth failing loudly on.
    pub fn new(probs: &[f64]) -> PoissonBinomial {
        assert!(
            probs
                .iter()
                .all(|p| p.is_finite() && (0.0..=1.0).contains(p)),
            "probabilities must lie in [0, 1]"
        );
        // dp[j] = P(j successes among the trials seen so far).
        let mut pmf = Vec::with_capacity(probs.len() + 1);
        pmf.push(1.0f64);
        for &p in probs {
            pmf.push(0.0);
            // Traverse backwards so each trial is counted once.
            for j in (0..pmf.len()).rev() {
                let stay = if j < pmf.len() - 1 {
                    pmf[j] * (1.0 - p)
                } else {
                    0.0
                };
                let step = if j > 0 { pmf[j - 1] * p } else { 0.0 };
                pmf[j] = stay + step;
            }
        }
        PoissonBinomial { pmf }
    }

    /// `P(X = k)`; zero outside the support.
    pub fn pmf(&self, k: usize) -> f64 {
        self.pmf.get(k).copied().unwrap_or(0.0)
    }

    /// The full PMF vector, indices `0..=n`.
    pub fn pmf_vec(&self) -> &[f64] {
        &self.pmf
    }

    /// Number of trials `n`.
    pub fn trials(&self) -> usize {
        self.pmf.len() - 1
    }

    /// `E[X] = Σ p_i` (computed from the PMF; equals the probability sum
    /// up to float error).
    pub fn mean(&self) -> f64 {
        self.pmf.iter().enumerate().map(|(k, p)| k as f64 * p).sum()
    }

    /// `P(X >= k)`.
    pub fn sf(&self, k: usize) -> f64 {
        self.pmf.iter().skip(k).sum()
    }

    /// Smallest interval `[lo, hi]` with `P(lo <= X <= hi) >= level`,
    /// grown greedily around the mode.
    pub fn credible_interval(&self, level: f64) -> (usize, usize) {
        let n = self.pmf.len();
        let mode = (0..n)
            .max_by(|&a, &b| self.pmf[a].total_cmp(&self.pmf[b]))
            .unwrap_or(0);
        let (mut lo, mut hi) = (mode, mode);
        let mut mass = self.pmf[mode];
        while mass < level && (lo > 0 || hi + 1 < n) {
            let left = if lo > 0 { self.pmf[lo - 1] } else { -1.0 };
            let right = if hi + 1 < n { self.pmf[hi + 1] } else { -1.0 };
            if left >= right {
                lo -= 1;
                mass += self.pmf[lo];
            } else {
                hi += 1;
                mass += self.pmf[hi];
            }
        }
        (lo, hi)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn assert_close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-12, "{a} vs {b}");
    }

    #[test]
    fn empty_is_point_mass_at_zero() {
        let d = PoissonBinomial::new(&[]);
        assert_eq!(d.trials(), 0);
        assert_close(d.pmf(0), 1.0);
        assert_close(d.pmf(1), 0.0);
        assert_close(d.mean(), 0.0);
    }

    #[test]
    fn single_trial() {
        let d = PoissonBinomial::new(&[0.3]);
        assert_close(d.pmf(0), 0.7);
        assert_close(d.pmf(1), 0.3);
        assert_close(d.mean(), 0.3);
    }

    #[test]
    fn matches_binomial_closed_form() {
        let p = 0.4;
        let n = 10;
        let d = PoissonBinomial::new(&vec![p; n]);
        let mut binom = 1.0f64; // C(n, 0)
        for k in 0..=n {
            let expect = binom * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32);
            assert!((d.pmf(k) - expect).abs() < 1e-12, "k={k}");
            binom = binom * (n - k) as f64 / (k + 1) as f64;
        }
        assert_close(d.mean(), p * n as f64);
    }

    #[test]
    fn pmf_sums_to_one_and_mean_matches_prob_sum() {
        let probs = [0.75, 0.5, 0.2, 0.25, 1.0, 0.0];
        let d = PoissonBinomial::new(&probs);
        let total: f64 = d.pmf_vec().iter().sum();
        assert_close(total, 1.0);
        assert_close(d.mean(), probs.iter().sum());
    }

    #[test]
    fn deterministic_trials_shift_the_distribution() {
        // p = 1 and p = 0 trials shift/no-op exactly.
        let d = PoissonBinomial::new(&[1.0, 1.0, 0.0]);
        assert_close(d.pmf(2), 1.0);
        assert_close(d.pmf(0), 0.0);
        assert_close(d.pmf(3), 0.0);
    }

    #[test]
    fn survival_function() {
        let d = PoissonBinomial::new(&[0.5, 0.5]);
        assert_close(d.sf(0), 1.0);
        assert_close(d.sf(1), 0.75);
        assert_close(d.sf(2), 0.25);
        assert_close(d.sf(3), 0.0);
    }

    #[test]
    fn credible_interval_grows_to_cover() {
        let d = PoissonBinomial::new(&[0.5; 20]);
        let (lo, hi) = d.credible_interval(0.95);
        assert!(lo <= 10 && 10 <= hi);
        let mass: f64 = (lo..=hi).map(|k| d.pmf(k)).sum();
        assert!(mass >= 0.95);
        // Full coverage interval is the whole support.
        let (lo, hi) = d.credible_interval(1.0);
        let mass: f64 = (lo..=hi).map(|k| d.pmf(k)).sum();
        assert!(mass > 0.999999);
    }

    #[test]
    #[should_panic(expected = "probabilities must lie in")]
    fn rejects_out_of_range() {
        PoissonBinomial::new(&[1.5]);
    }

    #[test]
    fn paper_example_distribution() {
        // Fig. 6a: inclusion probabilities 1, 0.75, 0.5, 0.2, 0.25 (and
        // one certain exclusion). Expected count 2.7; support [1, 5]
        // because one object is certain.
        let d = PoissonBinomial::new(&[1.0, 0.75, 0.5, 0.2, 0.25]);
        assert_close(d.mean(), 2.7);
        assert_close(d.pmf(0), 0.0);
        assert!(d.pmf(1) > 0.0 && d.pmf(5) > 0.0);
        let total: f64 = (1..=5).map(|k| d.pmf(k)).sum();
        assert_close(total, 1.0);
    }
}
