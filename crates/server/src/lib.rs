//! The privacy-aware location-based database server (Sec. 6).
//!
//! The server stores two kinds of data:
//!
//! * **Public data** ([`PublicStore`]) — gas stations, restaurants,
//!   police cars; exact locations, indexed in an R-tree.
//! * **Private data** ([`PrivateStore`]) — mobile users represented
//!   *only* by the cloaked rectangles received from the location
//!   anonymizer, keyed by pseudonym. The server never sees an exact
//!   private location; this module enforces that by construction (there
//!   is no API to store one).
//!
//! On top of the stores sit the two novel query classes of Sec. 6.2:
//!
//! * **Private queries over public data** — the querying user is cloaked:
//!   - [`private_range_candidates`] (Fig. 5a): all public objects that
//!     can be within distance `r` of *any* point of the cloaked region;
//!   - [`private_nn_candidates`] (Fig. 5b): the exact minimal candidate
//!     set containing the nearest neighbor of every possible user
//!     position (min/max-dist pruning + per-edge lower-envelope
//!     refinement).
//!     Both come with the client-side refinement step
//!     ([`refine_range`] / [`refine_nn`]) the mobile user runs locally on
//!     the candidate list.
//! * **Public queries over private data** — the data are cloaked:
//!   - [`PublicCountQuery`] (Fig. 6a): probabilistic range counting with
//!     the paper's three answer formats (expected value, interval,
//!     probability density function via an exact Poisson–binomial DP);
//!   - [`PublicNnQuery`] (Fig. 6b): probabilistic nearest neighbor over
//!     cloaked rectangles (min/max-dist pruning + Monte-Carlo win
//!     probabilities under the paper's uniform-position assumption).
//!
//! [`ContinuousRangeCount`] adds the incremental continuous-query
//! machinery (Sec. 5.3) for standing public count queries over the
//! moving private population.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod continuous;
mod object;
mod pdf;
mod private_nn;
mod private_private;
mod private_range;
mod public_count;
mod public_nn;
mod server;
mod store;

pub use continuous::{
    ContinuousCountState, ContinuousNnMonitor, ContinuousRangeCount, StandingCountQueryState,
};
pub use object::{PrivateRecord, PublicObject};
pub use pdf::PoissonBinomial;
pub use private_nn::{private_knn_candidates, private_nn_candidates, refine_knn, refine_nn};
pub use private_private::{
    private_private_range_count, PrivateNnProbability, PrivatePrivateCountAnswer,
    PrivatePrivateNnAnswer, PrivatePrivateNnQuery,
};
pub use private_range::{private_range_candidates, refine_range};
pub use public_count::{CountAnswer, PublicCountQuery, PublicReportQuery};
pub use public_nn::{NnProbability, PublicNnAnswer, PublicNnQuery};
pub use server::{Server, ServerStats};
pub use store::{PrivateStore, PublicStore};

/// Identifier for a public object.
pub type ObjectId = u64;
/// Pseudonymized identifier for a private (cloaked) record.
pub type PseudonymId = u64;
