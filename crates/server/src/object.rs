//! The two data types the server stores (Sec. 6.1).

use crate::{ObjectId, PseudonymId};
use lbsp_geom::{Point, Rect};

/// A public object: exact location, willingly shared.
///
/// `tag` is an application-defined category code (the system layer maps
/// POI categories onto it) so the server can filter "gas stations only"
/// without depending on any particular category enum.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PublicObject {
    /// Identifier, unique within a [`crate::PublicStore`].
    pub id: ObjectId,
    /// Exact location.
    pub pos: Point,
    /// Application-defined category tag.
    pub tag: u32,
}

impl PublicObject {
    /// Creates a public object.
    pub fn new(id: ObjectId, pos: Point, tag: u32) -> PublicObject {
        PublicObject { id, pos, tag }
    }
}

/// A private record: all the server knows about a mobile user.
///
/// Contains only the pseudonym and the cloaked rectangle — by
/// construction there is no field for an exact location.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PrivateRecord {
    /// Pseudonymized identity from the anonymizer.
    pub pseudonym: PseudonymId,
    /// The cloaked spatial region.
    pub region: Rect,
}

impl PrivateRecord {
    /// Creates a private record.
    pub fn new(pseudonym: PseudonymId, region: Rect) -> PrivateRecord {
        PrivateRecord { pseudonym, region }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let o = PublicObject::new(1, Point::new(0.5, 0.5), 3);
        assert_eq!(o.id, 1);
        assert_eq!(o.tag, 3);
        let r = PrivateRecord::new(9, Rect::new_unchecked(0.0, 0.0, 0.1, 0.1));
        assert_eq!(r.pseudonym, 9);
        assert!(r.region.area() > 0.0);
    }
}
