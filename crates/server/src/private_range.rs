//! Private range queries over public data (Fig. 5a).
//!
//! "A mobile user in the shaded area is asking about all target objects
//! within three miles of her location. Since the privacy-aware
//! location-based database server has no idea about the exact location
//! of the mobile user within the shaded area, it should return all
//! target objects that can be within three miles from ANY point in the
//! shaded area."
//!
//! The exact answer region is the Minkowski sum of the cloaked rectangle
//! with a disk of the query radius — the "rounded rectangle" of Fig. 5a.
//! The paper notes real implementations approximate it by its MBR; we
//! use the MBR as the R-tree prefilter and then apply the exact rounded
//! test (`min_dist(point, rect) <= r`), which is both cheap and strictly
//! better than stopping at the MBR.

use crate::{PublicObject, PublicStore};
use lbsp_geom::{min_dist_point_rect, Point, Rect};

/// Candidate set for a private range query: every public object that
/// could be within `radius` of some point of `cloak`, in ascending id
/// order (the canonical wire order — independent of how the backing
/// store happens to iterate, so sequential and sharded paths agree
/// byte-for-byte).
///
/// Guarantee (tested): for any true user position inside `cloak`, every
/// object within `radius` of that position is in the returned set —
/// i.e. the candidate list always contains the full exact answer.
pub fn private_range_candidates(
    store: &PublicStore,
    cloak: &Rect,
    radius: f64,
) -> Vec<PublicObject> {
    let radius = radius.max(0.0);
    // MBR of the rounded rectangle (paper's stated approximation) as the
    // index prefilter...
    let mbr = cloak.expanded(radius).expect("radius clamped non-negative");
    let mut out = Vec::new();
    store.tree().for_each_in_rect(&mbr, |rect, id| {
        // ...then the exact rounded-rectangle test. Public entries are
        // degenerate rects (points), so min_dist is point-to-cloak.
        let p = rect.center();
        if min_dist_point_rect(p, cloak) <= radius {
            out.push(id);
        }
    });
    out.sort_unstable();
    out.into_iter()
        .map(|id| *store.get(id).expect("id came from the store's own tree"))
        .collect()
}

/// The client-side refinement step: the mobile user filters the
/// candidate list against her exact position ("internally, the mobile
/// user will go through the candidate list to find the actual answer").
// lint: allow(taint) -- refinement runs on the user's own device; the
// exact position never leaves the trusted side of the boundary.
pub fn refine_range(
    candidates: &[PublicObject],
    true_pos: Point,
    radius: f64,
) -> Vec<PublicObject> {
    candidates
        .iter()
        .filter(|o| o.pos.dist(true_pos) <= radius)
        .copied()
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use lbsp_geom::uniform_point_in_rect;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn store_grid() -> PublicStore {
        // 10x10 lattice of objects.
        let objects: Vec<_> = (0..100)
            .map(|i| {
                PublicObject::new(
                    i,
                    Point::new(0.05 + 0.1 * (i % 10) as f64, 0.05 + 0.1 * (i / 10) as f64),
                    0,
                )
            })
            .collect();
        PublicStore::bulk_load(objects)
    }

    #[test]
    fn candidates_cover_exact_answer_for_any_position() {
        let store = store_grid();
        let cloak = Rect::new_unchecked(0.4, 0.4, 0.6, 0.6);
        let radius = 0.15;
        let candidates = private_range_candidates(&store, &cloak, radius);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            let pos = uniform_point_in_rect(&mut rng, &cloak);
            let exact: Vec<_> = store
                .iter()
                .filter(|o| o.pos.dist(pos) <= radius)
                .map(|o| o.id)
                .collect();
            for id in &exact {
                assert!(
                    candidates.iter().any(|c| c.id == *id),
                    "object {id} missing from candidates for position {pos}"
                );
            }
            // And refinement returns exactly the exact answer.
            let refined = refine_range(&candidates, pos, radius);
            assert_eq!(refined.len(), exact.len());
        }
    }

    #[test]
    fn candidates_are_tight_rounded_rect_not_mbr() {
        // An object near the corner of the expanded MBR but outside the
        // rounded rectangle must NOT be a candidate.
        let mut store = PublicStore::new();
        let cloak = Rect::new_unchecked(0.4, 0.4, 0.6, 0.6);
        let r = 0.1;
        // Corner of MBR: (0.3, 0.3). Distance from cloak corner (0.4,0.4)
        // is sqrt(0.02) ~ 0.141 > 0.1: inside MBR, outside rounded rect.
        store.insert(PublicObject::new(1, Point::new(0.31, 0.31), 0));
        // On-axis point at distance 0.09: a genuine candidate.
        store.insert(PublicObject::new(2, Point::new(0.31, 0.5), 0));
        let c = private_range_candidates(&store, &cloak, r);
        let ids: Vec<_> = c.iter().map(|o| o.id).collect();
        assert!(!ids.contains(&1), "MBR corner artifact must be excluded");
        assert!(ids.contains(&2));
    }

    #[test]
    fn zero_radius_returns_objects_inside_cloak() {
        let store = store_grid();
        let cloak = Rect::new_unchecked(0.0, 0.0, 0.25, 0.25);
        let c = private_range_candidates(&store, &cloak, 0.0);
        // Lattice points inside [0,0.25]^2: 0.05, 0.15, 0.25 in each axis.
        assert_eq!(c.len(), 9);
        // Negative radius clamps to zero rather than panicking.
        let neg = private_range_candidates(&store, &cloak, -1.0);
        assert_eq!(neg.len(), 9);
    }

    #[test]
    fn degenerate_cloak_reduces_to_plain_range_query() {
        let store = store_grid();
        let pos = Point::new(0.55, 0.55);
        let cloak = Rect::from_point(pos);
        let c = private_range_candidates(&store, &cloak, 0.12);
        let exact: Vec<_> = store
            .iter()
            .filter(|o| o.pos.dist(pos) <= 0.12)
            .map(|o| o.id)
            .collect();
        assert_eq!(c.len(), exact.len());
    }

    #[test]
    fn candidate_count_grows_with_cloak_area_and_radius() {
        let store = store_grid();
        let small =
            private_range_candidates(&store, &Rect::new_unchecked(0.45, 0.45, 0.55, 0.55), 0.1);
        let bigger_cloak =
            private_range_candidates(&store, &Rect::new_unchecked(0.3, 0.3, 0.7, 0.7), 0.1);
        let bigger_radius =
            private_range_candidates(&store, &Rect::new_unchecked(0.45, 0.45, 0.55, 0.55), 0.25);
        assert!(bigger_cloak.len() > small.len());
        assert!(bigger_radius.len() > small.len());
    }

    #[test]
    fn empty_store_yields_no_candidates() {
        let store = PublicStore::new();
        let c = private_range_candidates(&store, &Rect::new_unchecked(0.0, 0.0, 1.0, 1.0), 1.0);
        assert!(c.is_empty());
    }
}
