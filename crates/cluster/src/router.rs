//! The cluster's routing front door.
//!
//! A [`Router`] speaks the ordinary client wire protocol on its public
//! socket and owns one pipelined connection to each cluster node.
//! Clients never learn the cluster topology: they connect to the router
//! exactly as they would to a single [`lbsp_net::NetServer`], and the
//! router forwards each request to the node owning it.
//!
//! ## Replication and ownership
//!
//! The cloaking algorithm is *global*: every cloak is computed against
//! the summed population of the whole world, so a partitioned cluster
//! can only answer byte-identically to one sequential engine if every
//! node sees the full position plane. The router therefore maintains
//! two replicated planes and one single-copy plane:
//!
//! * **Position plane** — after forwarding an `EXACT_UPDATE` to the
//!   owning node, the router mirrors the same row to every other node
//!   as a [`wire::tag::SHADOW_UPDATE`] frame (positions advance even
//!   when the cloak failed, exactly like the sequential engine).
//! * **Cloak plane** — when the owner answers with cloaked bytes, the
//!   router relays those exact bytes to every other node as a
//!   [`wire::tag::CLOAK_INGEST`] frame, so the private stores and
//!   standing-count registries stay in lockstep. Non-owners drain the
//!   resulting changed-set internally; only the owner pushes deltas.
//! * **User state (single copy)** — a user's privacy profile and
//!   standing-range registrations live on exactly one node. When a
//!   movement crosses a partition boundary the router performs an
//!   explicit handoff *before* forwarding the update:
//!   [`wire::tag::HANDOFF_PULL`] extracts the state from the old owner
//!   as a [`wire::tag::USER_HANDOFF`] reply, and
//!   [`wire::tag::HANDOFF_PUSH`] installs it on the new owner.
//!
//! Standing-query registrations go to node 0, the sole id allocator;
//! the granted id is then fanned to every other node in a
//! [`wire::tag::STANDING_INSTALL`] frame, which installs the query
//! *under that id* rather than allocating one. Deregistrations name an
//! id and broadcast directly. Mirror frames are therefore idempotent
//! by key — a replay after an ack-lost outage is a no-op — instead of
//! depending on every node allocating in lockstep; the client sees
//! node 0's reply. Deltas pushed by
//! whichever node processed an update are fanned out to subscribed
//! router connections through the same subscription-table idiom the
//! single-node server uses.
//!
//! ## Concurrency
//!
//! Each node connection is a [`NodeChannel`]: a pipelined send half
//! (serialized by a [`LockRank::ClusterNode`] mutex) plus a dedicated
//! reader thread that matches reply frames to an in-order ticket queue.
//! A routed request *begins* every hop it needs — the `EXACT_UPDATE` to
//! the owner and the `SHADOW_UPDATE` mirrors to every other node — and
//! only then *waits* for the replies, so one update costs roughly two
//! node round-trips regardless of cluster size, and updates owned by
//! distinct nodes make progress concurrently.
//!
//! What replaces the old global request mutex is a single
//! [`LockRank::ClusterRouter`] read/write gate. Per-user requests
//! (updates, queries, registrations of a user) hold it *shared*;
//! operations whose correctness depends on every node observing them at
//! the same point in the request stream — standing-query broadcasts,
//! which every registry must observe in the same order, and ownership
//! handoffs — hold it *exclusive*, quiescing in-flight updates first.
//! The ownership tables themselves live under a short
//! [`LockRank::ClusterCore`] mutex that is never held across node I/O.
//!
//! Single-connection ordering is unchanged: a closed-loop client still
//! observes byte-identical replies to the sequential engine, because
//! its own requests never overlap. Requests racing on *different*
//! connections for the *same* user keep the single-node doctrine — one
//! device is one connection, and cross-device races settle on whichever
//! hop reaches the owner first.
//!
//! ## Recovery doctrine
//!
//! A node that cannot be reached (connect failure, I/O error, timeout)
//! is *demoted*, not executed: its channel enters `Reconnecting` and a
//! per-node supervisor thread retries the connection under capped
//! exponential backoff with deterministic jitter. While a node is away:
//!
//! * Requests the node *owns* answer a kinded
//!   [`wire::tag::ROUTE_FAIL`] marked [`wire::ROUTE_FAIL_RETRYABLE`] —
//!   the client should simply retry. These bump `retryable_failures`,
//!   **not** `route_failures`.
//! * Replicated-plane traffic the node merely *mirrors* (shadow
//!   updates, cloak ingests, standing installs and deregisters,
//!   parked handoffs) is absorbed into a bounded per-node catch-up
//!   buffer and replayed in arrival order on rejoin, so a transient
//!   outage is invisible to clients of other nodes. Every such frame
//!   is idempotent by key, so replaying one that already landed
//!   before the cut is a no-op. A preserved-class frame is dropped
//!   only when its node turns terminally `Down`; the drop bumps the
//!   `mirror_drops` counter and logs, because it marks real
//!   divergence.
//! * If the buffer overflows its byte bound, reconstructible plane
//!   frames are dropped and the rejoin instead performs a bulk
//!   [`wire::tag::RESYNC_PULL`] / [`wire::tag::RESYNC_PUSH`] transfer
//!   from a healthy donor under the exclusive gate. Broadcast-class
//!   and handoff frames are retained across the overflow — they are
//!   not reconstructible from plane state — and replayed after the
//!   bulk image lands.
//!
//! Only when every reconnect attempt is exhausted does the node turn
//! `Down` — terminal, as before — and requests needing it answer
//! `ROUTE_FAIL` kind [`wire::ROUTE_FAIL_DOWN`], bumping
//! `route_failures`. Failure text names nodes by *index only*: socket
//! addresses are cluster topology and never cross the public socket.

use crate::partition::PartitionMap;
use lbsp_core::metrics::NetCounters;
use lbsp_core::{wire, LockRank, MetricsRegistry, TrackedMutex, TrackedRwLock};
use lbsp_geom::Rect;
use lbsp_net::frame::write_frame;
use lbsp_net::{classify_reply, Frame, FrameReader, NetConfig, Poll, Reply, MAX_FRAME_LEN};
use std::collections::{HashMap, VecDeque};
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicU8, Ordering};
use std::sync::mpsc::{self, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One queued outbound frame: (tag, payload bytes).
type Outbound = (u8, Vec<u8>);

/// Changed standing-query states drained from node connections during
/// one routed request: ((kind code, query id), state bytes).
type DeltaBatch = Vec<((u8, u64), Vec<u8>)>;

/// Node lifecycle states (the `state` atomic of a [`NodeChannel`]).
/// `Up → Reconnecting` on any transport fault, `Reconnecting → Up` when
/// the supervisor completes a rejoin, `Reconnecting → Down` when it
/// gives up. `Down` is terminal.
const NODE_UP: u8 = 0;
/// See [`NODE_UP`].
const NODE_RECONNECTING: u8 = 1;
/// See [`NODE_UP`].
const NODE_DOWN: u8 = 2;

/// Tuning knobs of a [`Router`].
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Client-facing connection handling (same knobs as the single-node
    /// server: worker pool, timeouts, bounded queues).
    pub net: NetConfig,
    /// Read/write timeout on each router→node connection. A node that
    /// stays quiet past this bound is demoted to `Reconnecting`.
    pub node_timeout: Duration,
    /// First reconnect backoff delay; doubles per attempt.
    pub reconnect_base: Duration,
    /// Ceiling on the reconnect backoff delay.
    pub reconnect_cap: Duration,
    /// Reconnect attempts before a node is declared down for good.
    pub reconnect_attempts: u32,
    /// Byte bound on the per-node catch-up buffer of mirror frames
    /// missed while a node reconnects. Overflowing it switches the
    /// rejoin from ordered replay to a bulk donor resync.
    pub catchup_buffer_bytes: usize,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            net: NetConfig::default(),
            node_timeout: Duration::from_secs(2),
            reconnect_base: Duration::from_millis(50),
            reconnect_cap: Duration::from_secs(1),
            reconnect_attempts: 20,
            catchup_buffer_bytes: 4 * 1024 * 1024,
        }
    }
}

/// What the cluster did over the router's lifetime, reported by
/// [`Router::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterReport {
    /// Boundary-crossing user migrations completed.
    pub handoffs: u64,
    /// Requests answered with a *fatal* [`wire::tag::ROUTE_FAIL`]
    /// (kind `DOWN`); retryable failures are counted separately.
    pub route_failures: u64,
    /// Client requests served.
    pub requests_served: u64,
}

/// What one reader thread hands back for one ticket: the reply frame
/// plus any standing-delta payloads that rode ahead of it.
type TicketResult = io::Result<(Frame, Vec<Vec<u8>>)>;

/// One outstanding request on a node channel, waiting for its reply.
struct Ticket {
    tx: mpsc::SyncSender<TicketResult>,
}

/// The mutable send half of a node channel, serialized so pipelined
/// frames (and their tickets) leave in one well-defined order.
struct SendHalf {
    /// Write half of the node socket, connected lazily.
    stream: Option<TcpStream>,
    /// Hands tickets to the reader thread in send order.
    tickets: Option<mpsc::Sender<Ticket>>,
    /// The reader thread, joined on reconnect install and shutdown.
    reader: Option<JoinHandle<()>>,
}

/// What a node missed while it was away: mirror frames queued for
/// ordered replay on rejoin, under [`LockRank::ClusterRecovery`].
struct Recovery {
    /// Frames to replay in arrival order.
    buffer: VecDeque<Outbound>,
    /// Approximate bytes queued (payload + per-frame overhead).
    buffered_bytes: usize,
    /// The buffer overflowed: plane frames were dropped and the rejoin
    /// must bulk-resync from a donor before replaying what remains.
    overflowed: bool,
    /// When the current outage began (drives the downtime histogram).
    down_since: Option<Instant>,
}

/// A pipelined connection to one cluster node: requests are written
/// under a short send lock (ticket first, then frame, so the reader
/// always finds the ticket queued before the reply can arrive) and
/// replies are matched to tickets in order by a dedicated reader
/// thread. Multiple requests may be in flight at once; per-node frame
/// order is exactly ticket order.
struct NodeChannel {
    index: usize,
    addr: String,
    node_timeout: Duration,
    /// [`NODE_UP`] / [`NODE_RECONNECTING`] / [`NODE_DOWN`]. Transport
    /// faults demote `Up → Reconnecting`; only the supervisor moves a
    /// node out of `Reconnecting`.
    state: Arc<AtomicU8>,
    send: TrackedMutex<SendHalf>,
    recovery: TrackedMutex<Recovery>,
    /// Byte bound on `recovery.buffer` (from [`RouterConfig`]).
    catchup_buffer_bytes: usize,
}

/// A begun call on a [`NodeChannel`]; [`PendingCall::wait`] blocks for
/// the reply. Dropping it without waiting is safe — the reader consumes
/// the reply and discards it, keeping the pipeline aligned.
struct PendingCall<'a> {
    channel: &'a NodeChannel,
    rx: mpsc::Receiver<TicketResult>,
}

/// `true` for buffered frame tags that must survive a catch-up buffer
/// overflow: unlike plane traffic they cannot be reconstructed from a
/// donor's state image (id counters and single-copy user state would
/// desynchronize).
fn retained_on_overflow(tag: u8) -> bool {
    matches!(
        tag,
        wire::tag::STANDING_INSTALL | wire::tag::DEREGISTER_STANDING | wire::tag::HANDOFF_PUSH
    )
}

/// Rough accounting cost of one buffered frame.
fn frame_cost(payload: &[u8]) -> usize {
    payload.len() + 8
}

/// Installs a fresh connection on a locked send half: joins the old
/// reader (it has already exited — its socket was cut), then wires the
/// write stream, ticket queue, and a new reader thread.
fn install_streams(
    send: &mut SendHalf,
    state: &Arc<AtomicU8>,
    wstream: TcpStream,
    rstream: TcpStream,
) {
    if let Some(old) = send.reader.take() {
        let _ = old.join();
    }
    let (ticket_tx, ticket_rx) = mpsc::channel::<Ticket>();
    send.reader = Some(spawn_node_reader(rstream, ticket_rx, Arc::clone(state)));
    send.stream = Some(wstream);
    send.tickets = Some(ticket_tx);
}

impl NodeChannel {
    fn new(
        index: usize,
        addr: String,
        node_timeout: Duration,
        catchup_buffer_bytes: usize,
    ) -> NodeChannel {
        NodeChannel {
            index,
            addr,
            node_timeout,
            state: Arc::new(AtomicU8::new(NODE_UP)),
            send: TrackedMutex::new(
                LockRank::ClusterNode,
                SendHalf {
                    stream: None,
                    tickets: None,
                    reader: None,
                },
            ),
            recovery: TrackedMutex::new(
                LockRank::ClusterRecovery,
                Recovery {
                    buffer: VecDeque::new(),
                    buffered_bytes: 0,
                    overflowed: false,
                    down_since: None,
                },
            ),
            catchup_buffer_bytes,
        }
    }

    /// Terminal failure: the node exhausted its reconnect budget.
    /// Client-facing — names the node by index only, never by address.
    fn down_error(&self) -> io::Error {
        io::Error::new(
            io::ErrorKind::NotConnected,
            format!("node {} is down", self.index),
        )
    }

    /// Transient failure: the supervisor is reconnecting; the client
    /// should retry. Marked by `WouldBlock`, which nothing else on this
    /// path produces, so [`handle_frame`] can pick the `ROUTE_FAIL`
    /// kind from the error alone. Client-facing — index only.
    fn retryable_error(&self, what: &str) -> io::Error {
        io::Error::new(
            io::ErrorKind::WouldBlock,
            format!("node {} {what}; retry shortly", self.index),
        )
    }

    /// Consistency failure: the node answered, but with something the
    /// protocol forbids. Not retryable. Client-facing — index only.
    fn failed_error(&self, e: &io::Error) -> io::Error {
        io::Error::new(
            io::ErrorKind::InvalidData,
            format!("node {} failed: {e}", self.index),
        )
    }

    /// Cuts the socket and drops the ticket queue, which makes the
    /// reader thread exit promptly and fail every outstanding ticket.
    fn cut(&self) {
        let mut send = self.send.lock();
        if let Some(s) = send.stream.take() {
            // Qualified call: `s.shutdown(..)` would collide with
            // `Router::shutdown` in the lint's same-file call
            // resolution and manufacture a phantom lock edge.
            let _ = TcpStream::shutdown(&s, Shutdown::Both);
        }
        send.tickets = None;
    }

    /// Transport fault: demote `Up → Reconnecting`, stamp the outage
    /// start, and cut the socket. The supervisor takes it from here. A
    /// node already reconnecting (or down) just gets the cut.
    fn demote(&self) {
        if self
            .state
            .compare_exchange(
                NODE_UP,
                NODE_RECONNECTING,
                Ordering::SeqCst,
                Ordering::SeqCst,
            )
            .is_ok()
        {
            let mut rec = self.recovery.lock();
            if rec.down_since.is_none() {
                rec.down_since = Some(Instant::now());
            }
        }
        self.cut();
    }

    /// Terminal: the node is down for the router's lifetime.
    fn poison(&self) {
        self.state.store(NODE_DOWN, Ordering::SeqCst);
        self.cut();
    }

    /// Shutdown path: poison the channel and join its reader.
    fn close(&self) {
        self.poison();
        let reader = self.send.lock().reader.take();
        if let Some(h) = reader {
            let _ = h.join();
        }
    }

    /// Sends one request frame and returns a handle to its future
    /// reply, fast-failing with the kinded error the recovery doctrine
    /// promises when the node is reconnecting or down.
    fn begin(&self, tag: u8, payload: &[u8]) -> io::Result<PendingCall<'_>> {
        match self.state.load(Ordering::SeqCst) {
            NODE_UP => self.begin_on_wire(tag, payload),
            NODE_RECONNECTING => Err(self.retryable_error("is reconnecting")),
            _ => Err(self.down_error()),
        }
    }

    /// [`NodeChannel::begin`] without the state gate: the supervisor
    /// replays buffered frames (and pushes resync images) while the
    /// node is still officially `Reconnecting`.
    fn begin_internal(&self, tag: u8, payload: &[u8]) -> io::Result<PendingCall<'_>> {
        self.begin_on_wire(tag, payload)
    }

    /// The shared send path. Every failure here is a transport fault:
    /// demote and surface the kinded retryable error. The demotion
    /// lives in this wrapper — outside any guard scope — so the locked
    /// half below never reaches for the recovery lock (rank
    /// `ClusterRecovery`) while the send lock (rank `ClusterNode`) is
    /// live.
    fn begin_on_wire(&self, tag: u8, payload: &[u8]) -> io::Result<PendingCall<'_>> {
        match self.begin_locked(tag, payload) {
            Ok(call) => Ok(call),
            Err(e) => {
                self.demote();
                Err(e)
            }
        }
    }

    /// Lazy connect, ticket, frame — all under the send lock; errors
    /// are returned pre-kinded but the caller performs the demotion.
    fn begin_locked(&self, tag: u8, payload: &[u8]) -> io::Result<PendingCall<'_>> {
        let mut send = self.send.lock();
        if send.stream.is_none() {
            match self.connect() {
                Ok((wstream, rstream)) => {
                    install_streams(&mut send, &self.state, wstream, rstream);
                }
                Err(e) => {
                    return Err(self.retryable_error(&format!("is unreachable ({e})")));
                }
            }
        }
        let (tx, rx) = mpsc::sync_channel::<TicketResult>(1);
        let Some(tickets) = send.tickets.as_ref() else {
            return Err(self.retryable_error("has no live connection"));
        };
        // Ticket before frame: the reply cannot arrive before the
        // request bytes leave, so the reader always finds the ticket
        // already queued when it pops the reply. The send result
        // matters: a closed ticket queue means the reader thread is
        // gone, and an orphaned ticket would burn the caller's full
        // node timeout discovering that.
        if tickets.send(Ticket { tx }).is_err() {
            return Err(self.retryable_error("lost its reader"));
        }
        let written = match send.stream.as_mut() {
            Some(s) => write_frame(s, tag, payload, MAX_FRAME_LEN),
            None => Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "channel has no stream",
            )),
        };
        if let Err(e) = written {
            return Err(self.retryable_error(&format!("write failed ({e})")));
        }
        Ok(PendingCall { channel: self, rx })
    }

    /// Establishes the node connection: write half + cloned read half
    /// for the reader thread.
    fn connect(&self) -> io::Result<(TcpStream, TcpStream)> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true).ok();
        stream.set_write_timeout(Some(self.node_timeout)).ok();
        let rstream = stream.try_clone()?;
        rstream.set_read_timeout(Some(self.node_timeout)).ok();
        Ok((stream, rstream))
    }

    /// Queues a mirror frame the reconnecting node will replay on
    /// rejoin. Returns `false` — nothing queued — if the node is no
    /// longer `Reconnecting` (the state is re-checked under the
    /// recovery lock, the same lock the supervisor holds when it flips
    /// the node back up, so a buffered frame is never stranded).
    ///
    /// Overflow policy: plane frames (shadow updates, cloak ingests)
    /// are dropped once the byte bound is hit — a bulk donor resync
    /// reconstructs them wholesale — while broadcast-class and handoff
    /// frames are retained regardless, because no state image can
    /// replace them. The first overflow also purges already-queued
    /// plane frames: the bulk image supersedes them.
    fn buffer_frame(&self, tag: u8, payload: &[u8]) -> bool {
        let mut rec = self.recovery.lock();
        if self.state.load(Ordering::SeqCst) != NODE_RECONNECTING {
            return false;
        }
        let cost = frame_cost(payload);
        let over = rec.overflowed || rec.buffered_bytes + cost > self.catchup_buffer_bytes;
        if over && !retained_on_overflow(tag) {
            if !rec.overflowed {
                rec.overflowed = true;
                rec.buffer.retain(|(t, _)| retained_on_overflow(*t));
                rec.buffered_bytes = rec.buffer.iter().map(|(_, p)| frame_cost(p)).sum();
            }
            return true;
        }
        rec.buffered_bytes += cost;
        rec.buffer.push_back((tag, payload.to_vec()));
        true
    }
}

/// The per-channel reply demultiplexer: stashes standing-delta pushes,
/// matches every other frame to the next ticket in send order, and on
/// any connection failure demotes the node to `Reconnecting` and fails
/// the remaining tickets so no caller ever hangs past its own timeout.
fn spawn_node_reader(
    mut stream: TcpStream,
    tickets: mpsc::Receiver<Ticket>,
    state: Arc<AtomicU8>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut reader = FrameReader::new(MAX_FRAME_LEN);
        let mut pushed: Vec<Vec<u8>> = Vec::new();
        loop {
            if state.load(Ordering::SeqCst) == NODE_DOWN {
                break;
            }
            match reader.poll(&mut stream) {
                Ok(Poll::Frame(f)) if f.tag == wire::tag::STANDING_DELTA => {
                    pushed.push(f.payload);
                }
                Ok(Poll::Frame(f)) => match tickets.try_recv() {
                    Ok(t) => {
                        let _ = t.tx.send(Ok((f, std::mem::take(&mut pushed))));
                    }
                    // A reply with no request outstanding: the stream
                    // desynchronized; drop the connection.
                    Err(_) => break,
                },
                // Read-timeout tick — liveness deadlines belong to the
                // waiting callers, not the reader.
                Ok(Poll::Pending) => {}
                Ok(Poll::Eof) | Err(_) => break,
            }
        }
        // Demote rather than kill: the supervisor decides whether this
        // outage is survivable.
        let _ = state.compare_exchange(
            NODE_UP,
            NODE_RECONNECTING,
            Ordering::SeqCst,
            Ordering::SeqCst,
        );
        while let Ok(t) = tickets.try_recv() {
            let _ = t.tx.send(Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "node connection lost",
            )));
        }
    })
}

impl PendingCall<'_> {
    /// Blocks for the reply; delta pushes that rode ahead of it are
    /// appended to `deltas`. A timeout or transport failure demotes the
    /// node (retryable); a protocol-violating reply poisons it (fatal —
    /// reconnecting cannot fix a node that answers garbage).
    fn wait(self, deltas: &mut DeltaBatch) -> io::Result<Outbound> {
        match self.rx.recv_timeout(self.channel.node_timeout) {
            Ok(Ok((frame, pushed))) => {
                for bytes in pushed {
                    if let Some(key) = delta_key(&bytes) {
                        deltas.push((key, bytes));
                    }
                }
                match classify_reply(frame) {
                    Ok(reply) => Ok(reply_frame(reply)),
                    Err(e) => {
                        self.channel.poison();
                        Err(self.channel.failed_error(&e))
                    }
                }
            }
            Ok(Err(e)) => {
                self.channel.demote();
                Err(self
                    .channel
                    .retryable_error(&format!("dropped the connection ({e})")))
            }
            Err(_) => {
                self.channel.demote();
                Err(self.channel.retryable_error("timed out"))
            }
        }
    }
}

/// The ownership bookkeeping, held only for table lookups — never
/// across node I/O.
#[derive(Default)]
struct Tables {
    /// Registered user → node currently holding the single-copy state.
    owner: HashMap<u64, usize>,
    /// Standing-range query id → subject user (routes snapshots to the
    /// node owning that user).
    range_user: HashMap<u64, u64>,
    /// Completed boundary-crossing migrations.
    handoffs: u64,
}

/// Subscription actions the core requests; applied after routing so the
/// subscription table never nests inside the routing path.
enum SubAction {
    /// Subscribe the requesting connection to a standing-query key.
    Subscribe((u8, u64)),
    /// Forget every subscription to a deregistered query.
    DropQuery((u8, u64)),
}

/// The router's routing core: the partition map, one pipelined channel
/// per node, the request gate, and the ownership tables.
struct Core {
    partition: PartitionMap,
    channels: Vec<NodeChannel>,
    /// The request gate. Shared by per-user routes; exclusive quiesces
    /// the cluster for operations every node must observe at the same
    /// point in the request stream (standing broadcasts, handoffs,
    /// bulk rejoin resyncs).
    gate: TrackedRwLock<()>,
    tables: TrackedMutex<Tables>,
    /// Counter sink for transport accounting on paths that do not
    /// otherwise carry the registry (mirror-frame drops).
    obs: Arc<MetricsRegistry>,
}

impl Core {
    fn channel(&self, i: usize) -> io::Result<&NodeChannel> {
        self.channels
            .get(i)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no node {i}")))
    }

    /// One closed-loop request to node `i` (begin + wait).
    fn call(
        &self,
        i: usize,
        tag: u8,
        payload: &[u8],
        deltas: &mut DeltaBatch,
    ) -> io::Result<Outbound> {
        self.channel(i)?.begin(tag, payload)?.wait(deltas)
    }

    /// Like [`Core::call`] but for cluster-internal frames whose only
    /// acceptable answer is `OK`; anything else is a cluster-consistency
    /// failure and surfaces loudly.
    fn expect_ok(
        &self,
        i: usize,
        tag: u8,
        payload: &[u8],
        deltas: &mut DeltaBatch,
    ) -> io::Result<()> {
        let (rtag, body) = self.call(i, tag, payload, deltas)?;
        if rtag == wire::tag::OK {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "node {i} rejected internal frame 0x{tag:02x}: {}",
                    String::from_utf8_lossy(&body)
                ),
            ))
        }
    }

    /// Absorbs a mirror frame a node cannot take right now: buffered
    /// while it reconnects, delivered inline if it raced back up
    /// between checks, dropped only when the node is terminally `Down`.
    /// Returns `false` on a drop; doctrine-preserved frames
    /// (broadcast-class installs/deregisters, handoff pushes) addi-
    /// tionally bump `mirror_drops` and log, because losing one means
    /// state diverged and stays diverged.
    ///
    /// The loop is unbounded on purpose — a flapping node must not
    /// shake a preserved frame loose — but it cannot spin hot: every
    /// arm consumes a state transition. A failed `begin`/`wait`
    /// demotes the node, a failed `buffer_frame` means the state
    /// changed under the recovery lock, and `Down` is terminal.
    fn absorb_mirror(&self, i: usize, tag: u8, payload: &[u8]) -> bool {
        let Ok(ch) = self.channel(i) else {
            return false;
        };
        let mut scratch: DeltaBatch = Vec::new();
        loop {
            match ch.state.load(Ordering::SeqCst) {
                NODE_RECONNECTING => {
                    if ch.buffer_frame(tag, payload) {
                        return true;
                    }
                }
                NODE_UP => {
                    if let Ok(call) = ch.begin(tag, payload) {
                        if call.wait(&mut scratch).is_ok() {
                            return true;
                        }
                    }
                }
                _ => {
                    if retained_on_overflow(tag) {
                        NetCounters::add(&self.obs.net().mirror_drops, 1);
                        eprintln!(
                            "router: node {i} went down holding an undeliverable \
                             preserved frame 0x{tag:02x}; state diverged"
                        );
                    }
                    return false;
                }
            }
        }
    }

    /// Begins a mirror-plane frame on node `i`. Only an `Up` node
    /// yields a pending call; a reconnecting node absorbs the frame
    /// into its catch-up buffer (to replay on rejoin) and a terminally
    /// down node drops it (counted by [`Core::absorb_mirror`] when the
    /// frame class is preserved) — either way the client request
    /// proceeds, because a `Down` node is lost as a whole, not one
    /// frame at a time.
    fn begin_mirror(&self, i: usize, tag: u8, payload: &[u8]) -> Option<PendingCall<'_>> {
        let Ok(ch) = self.channel(i) else { return None };
        if ch.state.load(Ordering::SeqCst) == NODE_UP {
            match ch.begin(tag, payload) {
                Ok(call) => return Some(call),
                // Fatal (down) — skip. Retryable falls through to the
                // absorb path, which buffers it.
                Err(e) if e.kind() != io::ErrorKind::WouldBlock => return None,
                Err(_) => {}
            }
        }
        self.absorb_mirror(i, tag, payload);
        None
    }

    /// Waits a begun mirror call. A transport failure parks the frame
    /// in the node's catch-up buffer and reports success — every frame
    /// class crossing this path is idempotent by key (plane rows key on
    /// pseudonym/user, standing installs carry the node-0-granted id,
    /// deregisters name an id), so a frame that *did* land before the
    /// cut re-applies as a no-op on replay. Only an explicit rejection
    /// (`expect_ok` and the node answered something else) fails the
    /// request: that is a consistency break, not an outage.
    fn wait_mirror(
        &self,
        i: usize,
        tag: u8,
        payload: &[u8],
        call: PendingCall<'_>,
        expect_ok: bool,
        deltas: &mut DeltaBatch,
    ) -> io::Result<()> {
        match call.wait(deltas) {
            Ok((rtag, body)) => {
                if expect_ok && rtag != wire::tag::OK {
                    return Err(io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!(
                            "node {i} rejected internal frame 0x{tag:02x}: {}",
                            String::from_utf8_lossy(&body)
                        ),
                    ));
                }
                Ok(())
            }
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                self.absorb_mirror(i, tag, payload);
                Ok(())
            }
            Err(e) => Err(e),
        }
    }

    /// Migrates `user`'s single-copy state from node `from` to node
    /// `to`: pull, push, then flip the ownership table. Caller holds
    /// the exclusive gate.
    ///
    /// A migration never *starts* toward a node that cannot take it —
    /// the pull is destructive (the old owner forgets the user), so
    /// extracting state with nowhere to put it would strand the user if
    /// the target never comes back. But once the pull has happened, a
    /// push lost to a transport cut is parked in `to`'s catch-up buffer
    /// (handoff frames survive overflow) and the table flips anyway:
    /// rejoin replay installs the state before any retried update can
    /// reach the node. If `to` instead dies *terminally* after the
    /// pull, the table does not flip: the state is pushed back into
    /// `from` — still up, it just answered the pull — and the request
    /// fails with the fatal kind, leaving ownership where the bytes
    /// are.
    fn handoff(
        &self,
        user: u64,
        from: usize,
        to: usize,
        deltas: &mut DeltaBatch,
    ) -> io::Result<()> {
        match self.channel(to)?.state.load(Ordering::SeqCst) {
            NODE_UP => {}
            NODE_RECONNECTING => return Err(self.channel(to)?.retryable_error("is reconnecting")),
            _ => return Err(self.channel(to)?.down_error()),
        }
        let pull = self.call(
            from,
            wire::tag::HANDOFF_PULL,
            &wire::encode_handoff_pull(user),
            deltas,
        )?;
        if pull.0 != wire::tag::USER_HANDOFF {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "node {from} failed handoff pull for subject {user}: {}",
                    String::from_utf8_lossy(&pull.1)
                ),
            ));
        }
        match self.expect_ok(to, wire::tag::HANDOFF_PUSH, &pull.1, deltas) {
            Ok(()) => {}
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                if !self.absorb_mirror(to, wire::tag::HANDOFF_PUSH, &pull.1) {
                    // `to` is terminally down and the pull already
                    // happened: reinstall on the old owner and abort
                    // the migration instead of flipping ownership
                    // toward a grave. If `from` also cannot take the
                    // state back, the drop was already counted and the
                    // user's state is genuinely lost with the node.
                    self.absorb_mirror(from, wire::tag::HANDOFF_PUSH, &pull.1);
                    return Err(self.channel(to)?.down_error());
                }
            }
            Err(e) => return Err(e),
        }
        let mut tables = self.tables.lock();
        tables.owner.insert(user, to);
        tables.handoffs += 1;
        Ok(())
    }

    /// Routes one client frame. `Err` means a node needed for the
    /// request is unavailable (or broke cluster consistency); the
    /// caller turns it into a kinded [`wire::tag::ROUTE_FAIL`] reply —
    /// `RETRYABLE` for `WouldBlock` errors, `DOWN` for the rest.
    fn route(
        &self,
        frame: &Frame,
        deltas: &mut DeltaBatch,
        subs_out: &mut Vec<SubAction>,
    ) -> io::Result<Vec<Outbound>> {
        match frame.tag {
            wire::tag::EXACT_UPDATE => self.route_update(frame, deltas),
            wire::tag::REGISTER => self.route_register(frame, deltas),
            wire::tag::USER_QUERY => self.route_user_query(frame, deltas),
            wire::tag::REGISTER_STANDING_COUNT
            | wire::tag::REGISTER_STANDING_RANGE
            | wire::tag::DEREGISTER_STANDING => self.route_broadcast(frame, deltas, subs_out),
            wire::tag::STANDING_SNAPSHOT => self.route_snapshot(frame, deltas),
            // Anything else — unknown tags and tags this router does not
            // special-case — is forwarded verbatim to node 0, whose
            // reply (typically an error with the same text a single
            // server would produce) is relayed unchanged.
            _ => {
                let _gate = self.gate.read();
                self.call(0, frame.tag, &frame.payload, deltas)
                    .map(|f| vec![f])
            }
        }
    }

    fn route_register(&self, frame: &Frame, deltas: &mut DeltaBatch) -> io::Result<Vec<Outbound>> {
        let Some(msg) = wire::decode_register(&frame.payload) else {
            // Malformed: let node 0 produce the canonical error text.
            let _gate = self.gate.read();
            return self
                .call(0, frame.tag, &frame.payload, deltas)
                .map(|f| vec![f]);
        };
        let _gate = self.gate.read();
        // Re-registration refreshes the profile wherever it currently
        // lives; new users start on node 0 and migrate on first update.
        let target = self
            .tables
            .lock()
            .owner
            .get(&msg.user)
            .copied()
            .unwrap_or(0);
        let reply = self.call(target, frame.tag, &frame.payload, deltas)?;
        if reply.0 == wire::tag::OK {
            self.tables.lock().owner.insert(msg.user, target);
        }
        Ok(vec![reply])
    }

    fn route_update(&self, frame: &Frame, deltas: &mut DeltaBatch) -> io::Result<Vec<Outbound>> {
        let Some(msg) = wire::decode_exact_update(&frame.payload) else {
            let _gate = self.gate.read();
            return self
                .call(0, frame.tag, &frame.payload, deltas)
                .map(|f| vec![f]);
        };
        let target = self.partition.node_of(msg.position);
        let gate = self.gate.read();
        let Some(cur) = self.tables.lock().owner.get(&msg.user).copied() else {
            // Never registered through this router: the node refuses
            // with the same unknown-user error the sequential engine
            // gives, and no node's position plane moves — a reference
            // no-op must stay a no-op fleet-wide.
            return self
                .call(target, frame.tag, &frame.payload, deltas)
                .map(|f| vec![f]);
        };
        if cur == target {
            return self.fan_out_update(target, frame, deltas);
        }
        // Boundary crossing: trade the shared gate for the exclusive
        // one, which quiesces in-flight updates so the handoff is the
        // only thing the cluster observes.
        drop(gate);
        let _gate = self.gate.write();
        // Re-check under the exclusive gate — another crossing of the
        // same user may have won it first.
        let cur = self
            .tables
            .lock()
            .owner
            .get(&msg.user)
            .copied()
            .unwrap_or(cur);
        if cur != target {
            self.handoff(msg.user, cur, target, deltas)?;
        }
        self.fan_out_update(target, frame, deltas)
    }

    /// The update fan-out: begin the `EXACT_UPDATE` on the owner and
    /// the `SHADOW_UPDATE` mirror on every other node, then wait all;
    /// if the owner cloaked, begin the `CLOAK_INGEST` relay on every
    /// other node and wait all. Two round-trip phases regardless of
    /// cluster size. Unavailable mirrors never fail the request — their
    /// frames are absorbed into catch-up buffers for rejoin replay.
    fn fan_out_update(
        &self,
        target: usize,
        frame: &Frame,
        deltas: &mut DeltaBatch,
    ) -> io::Result<Vec<Outbound>> {
        let main = self
            .channel(target)?
            .begin(wire::tag::EXACT_UPDATE, &frame.payload)?;
        let mut shadows = Vec::new();
        for i in 0..self.channels.len() {
            if i == target {
                continue;
            }
            if let Some(call) = self.begin_mirror(i, wire::tag::SHADOW_UPDATE, &frame.payload) {
                shadows.push((i, call));
            }
        }
        // Owner first: its deltas ride ahead of its reply and must land
        // ahead of the mirrors' (empty) batches, exactly as the old
        // sequential order appended them.
        let reply = main.wait(deltas);
        let mut mirror_err: Option<io::Error> = None;
        for (i, call) in shadows {
            if let Err(e) = self.wait_mirror(
                i,
                wire::tag::SHADOW_UPDATE,
                &frame.payload,
                call,
                true,
                deltas,
            ) {
                if mirror_err.is_none() {
                    mirror_err = Some(e);
                }
            }
        }
        let reply = reply?;
        if let Some(e) = mirror_err {
            return Err(e);
        }
        // A successful cloak also replicates into every non-owner's
        // private store / standing-count registry, as the exact bytes
        // the owner produced.
        if reply.0 == wire::tag::CLOAKED_UPDATE {
            let mut ingests = Vec::new();
            for i in 0..self.channels.len() {
                if i == target {
                    continue;
                }
                if let Some(call) = self.begin_mirror(i, wire::tag::CLOAK_INGEST, &reply.1) {
                    ingests.push((i, call));
                }
            }
            let mut ingest_err: Option<io::Error> = None;
            for (i, call) in ingests {
                if let Err(e) =
                    self.wait_mirror(i, wire::tag::CLOAK_INGEST, &reply.1, call, true, deltas)
                {
                    if ingest_err.is_none() {
                        ingest_err = Some(e);
                    }
                }
            }
            if let Some(e) = ingest_err {
                return Err(e);
            }
        }
        Ok(vec![reply])
    }

    fn route_user_query(
        &self,
        frame: &Frame,
        deltas: &mut DeltaBatch,
    ) -> io::Result<Vec<Outbound>> {
        let Some(msg) = wire::decode_user_query(&frame.payload) else {
            let _gate = self.gate.read();
            return self
                .call(0, frame.tag, &frame.payload, deltas)
                .map(|f| vec![f]);
        };
        let _gate = self.gate.read();
        // Queries need the user's profile, which lives on the owner;
        // unknown users go to node 0 for the canonical error text.
        let target = self
            .tables
            .lock()
            .owner
            .get(&msg.user)
            .copied()
            .unwrap_or(0);
        self.call(target, frame.tag, &frame.payload, deltas)
            .map(|f| vec![f])
    }

    /// Fans one frame out to every mirror node (1..n), waiting each
    /// begun call. Returns the first consistency error, if any.
    fn fan_out_mirrors(
        &self,
        tag: u8,
        payload: &[u8],
        expect_ok: bool,
        deltas: &mut DeltaBatch,
    ) -> io::Result<()> {
        let mut mirrors = Vec::new();
        for i in 1..self.channels.len() {
            if let Some(call) = self.begin_mirror(i, tag, payload) {
                mirrors.push((i, call));
            }
        }
        let mut first_err: Option<io::Error> = None;
        for (i, call) in mirrors {
            if let Err(e) = self.wait_mirror(i, tag, payload, call, expect_ok, deltas) {
                if first_err.is_none() {
                    first_err = Some(e);
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Standing registrations and deregistrations run on *every* node
    /// under the exclusive gate; the client sees node 0's reply, and
    /// node 0's *begin* gates the mirrors — if it is away the
    /// broadcast fails `RETRYABLE` before any other node observes the
    /// frame. Node 0 is the sole id allocator: a registration settles
    /// node 0's round trip, then fans the granted id to the mirrors as
    /// an idempotent [`wire::tag::STANDING_INSTALL`]; a deregistration
    /// (keyed by id already) pipelines node 0 and the mirrors in one
    /// round trip. Unavailable mirrors absorb their frame into the
    /// catch-up buffer; broadcast-class frames survive buffer
    /// overflow. (The narrow window where node 0 applied a
    /// registration but its ack was lost is documented in DESIGN.md.)
    fn route_broadcast(
        &self,
        frame: &Frame,
        deltas: &mut DeltaBatch,
        subs_out: &mut Vec<SubAction>,
    ) -> io::Result<Vec<Outbound>> {
        let _gate = self.gate.write();
        if frame.tag == wire::tag::DEREGISTER_STANDING {
            // Deregistration names an id, so mirrors need nothing from
            // node 0's reply and the fan-out pipelines: begin node 0,
            // begin every mirror, then wait. The gate property only
            // needs node 0's *begin* to fast-fail (demoted/down state)
            // before any mirror observes the frame — not its full
            // round trip — so the exclusive-gate hold is one round
            // trip, not two, even at worst-case node timeout.
            let call0 = self.channel(0)?.begin(frame.tag, &frame.payload)?;
            let mirror_res = self.fan_out_mirrors(frame.tag, &frame.payload, false, deltas);
            // Node 0's outcome decides the client reply; mirrors that
            // already deregistered (a replayed/raced frame) answer an
            // error that expect_ok=false tolerates.
            let reply = call0.wait(deltas)?;
            mirror_res?;
            if reply.0 == wire::tag::OK {
                if let Some(r) = wire::decode_standing_ref(&frame.payload) {
                    subs_out.push(SubAction::DropQuery((r.kind.code(), r.id)));
                    self.tables.lock().range_user.remove(&r.id);
                }
            }
            return Ok(vec![reply]);
        }
        // Registration cannot pipeline the same way: mirrors install
        // the id node 0 grants, and that id only exists once node 0 has
        // answered. The serialized round trip is the price of a keyed,
        // idempotent mirror frame (STANDING_INSTALL) — an ack-lost
        // replay re-installs the same id as a no-op instead of
        // double-allocating and desynchronizing the registries.
        let reply = self.call(0, frame.tag, &frame.payload, deltas)?;
        if reply.0 != wire::tag::STANDING_REGISTERED {
            // Node 0 refused (malformed frame, engine error): nothing
            // was allocated, so the mirrors must not observe it either.
            return Ok(vec![reply]);
        }
        let r = wire::decode_standing_ref(&reply.1).ok_or_else(|| {
            io::Error::new(
                io::ErrorKind::InvalidData,
                "node 0 answered a standing registration with a malformed reference",
            )
        })?;
        let install = match frame.tag {
            wire::tag::REGISTER_STANDING_COUNT => {
                wire::decode_register_standing_count(&frame.payload).map(|m| {
                    wire::StandingInstallMsg::Count {
                        id: r.id,
                        area: m.area,
                    }
                })
            }
            _ => wire::decode_register_standing_range(&frame.payload).map(|m| {
                wire::StandingInstallMsg::Range {
                    id: r.id,
                    user: m.user,
                    radius: m.radius,
                }
            }),
        }
        .ok_or_else(|| {
            // Node 0 granted an id for a payload this router cannot
            // parse — a version skew, not an outage.
            io::Error::new(
                io::ErrorKind::InvalidData,
                "standing registration granted by node 0 but undecodable at the router",
            )
        })?;
        let payload = wire::encode_standing_install(&install);
        self.fan_out_mirrors(wire::tag::STANDING_INSTALL, &payload, true, deltas)?;
        subs_out.push(SubAction::Subscribe((r.kind.code(), r.id)));
        if frame.tag == wire::tag::REGISTER_STANDING_RANGE {
            if let wire::StandingInstallMsg::Range { user, .. } = install {
                self.tables.lock().range_user.insert(r.id, user);
            }
        }
        Ok(vec![reply])
    }

    fn route_snapshot(&self, frame: &Frame, deltas: &mut DeltaBatch) -> io::Result<Vec<Outbound>> {
        let Some(msg) = wire::decode_standing_ref(&frame.payload) else {
            let _gate = self.gate.read();
            return self
                .call(0, frame.tag, &frame.payload, deltas)
                .map(|f| vec![f]);
        };
        let _gate = self.gate.read();
        // Count registries are replicated in lockstep, so any node can
        // answer; node 0 does. Range queries are maintained only on the
        // node owning their subject user.
        let target = match msg.kind {
            wire::StandingKind::Count => 0,
            wire::StandingKind::Range => {
                let tables = self.tables.lock();
                tables
                    .range_user
                    .get(&msg.id)
                    .and_then(|u| tables.owner.get(u))
                    .copied()
                    .unwrap_or(0)
            }
        };
        self.call(target, frame.tag, &frame.payload, deltas)
            .map(|f| vec![f])
    }
}

/// Maps a node's [`Reply`] back to the wire frame it arrived as.
fn reply_frame(reply: Reply) -> Outbound {
    match reply {
        Reply::Ok => (wire::tag::OK, Vec::new()),
        Reply::Cloaked(b) => (wire::tag::CLOAKED_UPDATE, b),
        Reply::Candidates(b) => (wire::tag::CANDIDATES, b),
        Reply::Pong(b) => (wire::tag::PONG, b),
        Reply::Stats(b) => (wire::tag::STATS_SNAPSHOT, b),
        Reply::StandingRegistered(b) => (wire::tag::STANDING_REGISTERED, b),
        Reply::StandingState(b) => (wire::tag::STANDING_STATE, b),
        Reply::Handoff(b) => (wire::tag::USER_HANDOFF, b),
        Reply::ResyncState(b) => (wire::tag::RESYNC_STATE, b),
        Reply::Error(s) => (wire::tag::ERROR, s.into_bytes()),
    }
}

/// The subscription key of a standing-delta payload.
fn delta_key(payload: &[u8]) -> Option<(u8, u64)> {
    match wire::decode_standing_state(payload)? {
        wire::StandingState::Count(s) => Some((wire::StandingKind::Count.code(), s.id)),
        wire::StandingState::Range(s) => Some((wire::StandingKind::Range.code(), s.id)),
    }
}

/// `true` for tags that only router→node hops may carry; a client
/// sending one to the router is refused rather than forwarded, so the
/// public socket cannot inject into the trusted replication planes.
fn is_internal(tag: u8) -> bool {
    matches!(
        tag,
        wire::tag::SHADOW_UPDATE
            | wire::tag::CLOAK_INGEST
            | wire::tag::HANDOFF_PULL
            | wire::tag::HANDOFF_PUSH
            | wire::tag::RESYNC_PULL
            | wire::tag::RESYNC_PUSH
            | wire::tag::STANDING_INSTALL
    )
}

/// Who hears about which standing query — same shape and semantics as
/// the single-node server's subscription table.
#[derive(Default)]
struct StandingSubs {
    by_query: HashMap<(u8, u64), Vec<u64>>,
    senders: HashMap<u64, mpsc::SyncSender<Outbound>>,
}

type SharedSubs = Arc<TrackedMutex<StandingSubs>>;
type SharedCore = Arc<Core>;

/// The cluster's client-facing front door.
pub struct Router {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    supervisors: Vec<JoinHandle<()>>,
    core: SharedCore,
    obs: Arc<MetricsRegistry>,
}

impl Router {
    /// Binds the public socket at `addr` and starts routing requests to
    /// the nodes at `node_addrs`, which partition `world` into vertical
    /// stripes in address order. Node connections are established
    /// lazily, so nodes may come up after the router. One reconnect
    /// supervisor per node heals transient outages per the recovery
    /// doctrine in the module docs.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        node_addrs: &[&str],
        world: Rect,
        cfg: RouterConfig,
    ) -> io::Result<Router> {
        if node_addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a cluster needs at least one node",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let obs = Arc::new(MetricsRegistry::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let core: SharedCore = Arc::new(Core {
            partition: PartitionMap::new(world, node_addrs.len()),
            channels: node_addrs
                .iter()
                .enumerate()
                .map(|(i, a)| {
                    NodeChannel::new(
                        i,
                        (*a).to_string(),
                        cfg.node_timeout,
                        cfg.catchup_buffer_bytes,
                    )
                })
                .collect(),
            gate: TrackedRwLock::new(LockRank::ClusterRouter, ()),
            tables: TrackedMutex::new(LockRank::ClusterCore, Tables::default()),
            obs: Arc::clone(&obs),
        });
        let subs: SharedSubs = Arc::new(TrackedMutex::new(
            LockRank::NetStandingSubs,
            StandingSubs::default(),
        ));
        let conn_ids = Arc::new(AtomicU64::new(1));

        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(cfg.net.accept_backlog.max(1));
        let conn_rx = Arc::new(TrackedMutex::new(LockRank::NetConnQueue, conn_rx));

        let workers = (0..cfg.net.workers.max(1))
            .map(|_| {
                let conn_rx = Arc::clone(&conn_rx);
                let core = Arc::clone(&core);
                let obs = Arc::clone(&obs);
                let shutdown = Arc::clone(&shutdown);
                let subs = Arc::clone(&subs);
                let conn_ids = Arc::clone(&conn_ids);
                let net = cfg.net;
                std::thread::spawn(move || loop {
                    let next = conn_rx.lock().recv_timeout(Duration::from_millis(50));
                    match next {
                        Ok(stream) => {
                            if shutdown.load(Ordering::Relaxed) {
                                let _ = stream.shutdown(Shutdown::Both);
                                NetCounters::add(&obs.net().connections_closed, 1);
                                continue;
                            }
                            serve_connection(
                                stream, &core, &obs, &net, &shutdown, &subs, &conn_ids,
                            );
                        }
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            if shutdown.load(Ordering::Relaxed) {
                                break;
                            }
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => break,
                    }
                })
            })
            .collect();

        let supervisors = (0..core.channels.len())
            .map(|i| {
                spawn_supervisor(
                    Arc::clone(&core),
                    i,
                    Arc::clone(&obs),
                    cfg,
                    Arc::clone(&shutdown),
                )
            })
            .collect();

        let acceptor = {
            let obs = Arc::clone(&obs);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    match stream {
                        Ok(s) => {
                            NetCounters::add(&obs.net().connections_accepted, 1);
                            if let Err(TrySendError::Full(s)) = conn_tx.try_send(s) {
                                NetCounters::add(&obs.net().connections_refused, 1);
                                let _ = s.shutdown(Shutdown::Both);
                            }
                        }
                        Err(_) => continue,
                    }
                }
            })
        };

        Ok(Router {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            workers,
            supervisors,
            core,
            obs,
        })
    }

    /// The bound public address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router's own observability registry (connection counters,
    /// `route_failures`, reconnect/rejoin/resync counters, the
    /// node-downtime histogram; scraped by `STATS` on the public
    /// socket).
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.obs
    }

    /// Boundary-crossing migrations completed so far.
    pub fn handoffs(&self) -> u64 {
        self.core.tables.lock().handoffs
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        for ch in &self.core.channels {
            ch.close();
        }
        for h in self.supervisors.drain(..) {
            let _ = h.join();
        }
    }

    /// Graceful shutdown: stops accepting, lets live connections drain
    /// (bounded by the configured grace), joins every thread —
    /// supervisors included — closes the node connections, and reports
    /// what the cluster did.
    pub fn shutdown(mut self) -> RouterReport {
        self.stop();
        let snap = self.obs.net().snapshot();
        RouterReport {
            handoffs: self.core.tables.lock().handoffs,
            route_failures: snap.route_failures,
            requests_served: snap.requests_served,
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.workers.is_empty() {
            self.stop();
        }
    }
}

/// One node's reconnect supervisor: dozes while the node is up, runs
/// the backoff/rejoin protocol when it observes `Reconnecting`, and
/// exits when the node turns terminally down (or the router stops).
fn spawn_supervisor(
    core: SharedCore,
    index: usize,
    obs: Arc<MetricsRegistry>,
    cfg: RouterConfig,
    shutdown: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        while !shutdown.load(Ordering::Relaxed) {
            let Some(ch) = core.channels.get(index) else {
                return;
            };
            match ch.state.load(Ordering::SeqCst) {
                NODE_RECONNECTING => supervise_outage(&core, index, &obs, &cfg, &shutdown),
                NODE_DOWN => return,
                _ => std::thread::sleep(Duration::from_millis(10)),
            }
        }
    })
}

/// Handles one outage end to end: reconnect under capped backoff, then
/// resync the node's planes and flip it back up — or declare it down
/// when the attempt budget runs out. Progress is narrated on stderr so
/// operators (and the CI chaos stage) can grep the recovery timeline.
fn supervise_outage(
    core: &SharedCore,
    index: usize,
    obs: &Arc<MetricsRegistry>,
    cfg: &RouterConfig,
    shutdown: &Arc<AtomicBool>,
) {
    let Ok(ch) = core.channel(index) else { return };
    {
        let mut rec = ch.recovery.lock();
        if rec.down_since.is_none() {
            rec.down_since = Some(Instant::now());
        }
    }
    eprintln!("router: node {index} connection lost; reconnecting");
    let mut attempt: u32 = 0;
    loop {
        if shutdown.load(Ordering::Relaxed) {
            return;
        }
        attempt += 1;
        if attempt > cfg.reconnect_attempts.max(1) {
            ch.poison();
            let ms = finish_outage(ch, obs);
            eprintln!(
                "router: node {index} declared down after {} reconnect attempts ({ms} ms)",
                attempt - 1
            );
            return;
        }
        NetCounters::add(&obs.net().reconnect_attempts, 1);
        match ch.connect() {
            Ok((wstream, rstream)) => {
                {
                    let mut send = ch.send.lock();
                    install_streams(&mut send, &ch.state, wstream, rstream);
                }
                match resync_node(core, index, obs) {
                    Ok(summary) => {
                        let ms = finish_outage(ch, obs);
                        NetCounters::add(&obs.net().node_rejoins, 1);
                        eprintln!("router: node {index} rejoined ({summary}, downtime {ms} ms)");
                        return;
                    }
                    // Transient: the node slipped away again mid-resync
                    // (the wait demoted it back); keep trying.
                    Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                        eprintln!("router: node {index} resync attempt {attempt} failed: {e}");
                        sleep_backoff(cfg, index, attempt, shutdown);
                    }
                    // Consistency failure: the node (or its donor)
                    // answered garbage. Reconnecting cannot fix that.
                    Err(e) => {
                        ch.poison();
                        let ms = finish_outage(ch, obs);
                        eprintln!(
                            "router: node {index} declared down — resync rejected: {e} ({ms} ms)"
                        );
                        return;
                    }
                }
            }
            Err(e) => {
                eprintln!("router: node {index} reconnect attempt {attempt} failed: {e}");
                sleep_backoff(cfg, index, attempt, shutdown);
            }
        }
    }
}

/// Ends the outage clock: records the downtime histogram sample and
/// returns the outage length in milliseconds.
fn finish_outage(ch: &NodeChannel, obs: &MetricsRegistry) -> u64 {
    let ms = {
        let mut rec = ch.recovery.lock();
        rec.down_since
            .take()
            .map(|t| u64::try_from(t.elapsed().as_millis()).unwrap_or(u64::MAX))
            .unwrap_or(0)
    };
    obs.node_downtime().record(ms as f64);
    ms
}

/// Brings a freshly reconnected node's planes back in sync and flips it
/// `Up`. The normal path replays the catch-up buffer in arrival order;
/// an overflowed buffer triggers a bulk donor resync under the
/// exclusive gate first, then replays the retained (non-reconstructible)
/// frames. Returns a human-readable summary for the rejoin log line.
fn resync_node(core: &SharedCore, index: usize, obs: &Arc<MetricsRegistry>) -> io::Result<String> {
    let ch = core.channel(index)?;
    // Liveness first: a freshly-accepted socket proves nothing (a dying
    // peer — or a chaos proxy — can accept and then drop). Requiring a
    // PING round trip before any replay keeps a node that cannot answer
    // in `Reconnecting` instead of flapping through phantom rejoins,
    // and keeps the `node_rejoins` counter honest.
    let mut scratch: DeltaBatch = Vec::new();
    let pong = ch
        .begin_internal(wire::tag::PING, b"rejoin")?
        .wait(&mut scratch)?;
    if pong.0 != wire::tag::PONG {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("node {index} failed the rejoin liveness check"),
        ));
    }
    let overflowed = ch.recovery.lock().overflowed;
    if overflowed {
        // Quiesce routing: the donor's image and the replayed tail must
        // land as one atomic step in the cluster's request stream.
        let _gate = core.gate.write();
        let bulk = bulk_resync(core, ch)?;
        NetCounters::add(
            &obs.net().resync_bytes,
            u64::try_from(bulk).unwrap_or(u64::MAX),
        );
        let replayed = replay_buffer(ch)?;
        Ok(format!(
            "bulk resync {bulk} bytes + {replayed} retained frames"
        ))
    } else {
        let replayed = replay_buffer(ch)?;
        Ok(format!("replayed {replayed} buffered frames"))
    }
}

/// The bulk half of an overflowed rejoin: pull a full plane image from
/// the first healthy donor and push it into the rejoining node. Caller
/// holds the exclusive gate.
fn bulk_resync(core: &Core, ch: &NodeChannel) -> io::Result<usize> {
    let donor = core
        .channels
        .iter()
        .position(|c| c.index != ch.index && c.state.load(Ordering::SeqCst) == NODE_UP)
        .ok_or_else(|| {
            // Retryable: a candidate donor may itself be mid-rejoin.
            io::Error::new(
                io::ErrorKind::WouldBlock,
                "no healthy donor for bulk resync",
            )
        })?;
    let mut scratch: DeltaBatch = Vec::new();
    let (rtag, body) = core.call(donor, wire::tag::RESYNC_PULL, &[], &mut scratch)?;
    if rtag != wire::tag::RESYNC_STATE {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "node {donor} failed resync pull: {}",
                String::from_utf8_lossy(&body)
            ),
        ));
    }
    let reply = ch
        .begin_internal(wire::tag::RESYNC_PUSH, &body)?
        .wait(&mut scratch)?;
    if reply.0 != wire::tag::OK {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!(
                "node {} rejected resync image: {}",
                ch.index,
                String::from_utf8_lossy(&reply.1)
            ),
        ));
    }
    Ok(body.len())
}

/// Replays the catch-up buffer head-first until it drains, then flips
/// the node `Up` *under the recovery lock* — the same lock appenders
/// hold — so no frame can slip in behind the flip and strand. Mirror
/// traffic arriving mid-replay simply queues behind the head and is
/// replayed in turn.
fn replay_buffer(ch: &NodeChannel) -> io::Result<usize> {
    let mut replayed = 0usize;
    loop {
        let next = {
            let mut rec = ch.recovery.lock();
            let head = rec.buffer.front().cloned();
            if head.is_none() {
                rec.overflowed = false;
                ch.state.store(NODE_UP, Ordering::SeqCst);
            }
            head
        };
        let Some((tag, payload)) = next else {
            return Ok(replayed);
        };
        let mut scratch: DeltaBatch = Vec::new();
        // Any well-formed reply is acceptance: replayed installs,
        // plane and handoff frames answer `OK`, and a replayed
        // deregister whose first delivery landed answers an unknown-id
        // error — the no-op outcome idempotence promises. Transport
        // failures propagate (retryable) and the supervisor starts the
        // outage over.
        let _ = ch.begin_internal(tag, &payload)?.wait(&mut scratch)?;
        let mut rec = ch.recovery.lock();
        rec.buffer.pop_front();
        rec.buffered_bytes = rec.buffered_bytes.saturating_sub(frame_cost(&payload));
        replayed += 1;
    }
}

/// Sleeps one backoff step — capped exponential with deterministic
/// xorshift jitter (no RNG, no clock seed: reruns take identical
/// schedules) — waking early on shutdown.
fn sleep_backoff(cfg: &RouterConfig, node: usize, attempt: u32, shutdown: &Arc<AtomicBool>) {
    let base = u64::try_from(cfg.reconnect_base.as_millis())
        .unwrap_or(u64::MAX)
        .max(1);
    let cap = u64::try_from(cfg.reconnect_cap.as_millis())
        .unwrap_or(u64::MAX)
        .max(base);
    let shift = attempt.saturating_sub(1).min(16);
    let delay = base.saturating_mul(1u64 << shift).min(cap);
    let mut x = u64::try_from(node)
        .unwrap_or(0)
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(u64::from(attempt))
        | 1;
    x ^= x << 13;
    x ^= x >> 7;
    x ^= x << 17;
    let delay = delay.saturating_add(x % (delay / 4 + 1));
    let deadline = Instant::now() + Duration::from_millis(delay);
    while Instant::now() < deadline && !shutdown.load(Ordering::Relaxed) {
        std::thread::sleep(Duration::from_millis(delay.min(5)));
    }
}

/// Why a client connection ended (drives which counter is bumped).
enum CloseReason {
    Normal,
    BadFrame,
    Slow,
    Idle,
}

/// Serves one client connection to completion; every exit path closes
/// the socket, forgets the connection's subscriptions, and bumps the
/// right counter.
fn serve_connection(
    stream: TcpStream,
    core: &SharedCore,
    obs: &Arc<MetricsRegistry>,
    cfg: &NetConfig,
    shutdown: &Arc<AtomicBool>,
    subs: &SharedSubs,
    conn_ids: &Arc<AtomicU64>,
) {
    let conn_id = conn_ids.fetch_add(1, Ordering::Relaxed);
    let reason = serve_connection_inner(&stream, core, obs, cfg, shutdown, subs, conn_id)
        .unwrap_or_else(|_| {
            unsubscribe_connection(subs, conn_id);
            CloseReason::Normal
        });
    let counters = obs.net();
    match reason {
        CloseReason::Normal => {}
        CloseReason::BadFrame => NetCounters::add(&counters.frames_rejected, 1),
        CloseReason::Slow => NetCounters::add(&counters.slow_disconnects, 1),
        CloseReason::Idle => NetCounters::add(&counters.idle_disconnects, 1),
    }
    let _ = stream.shutdown(Shutdown::Both);
    NetCounters::add(&counters.connections_closed, 1);
}

fn serve_connection_inner(
    stream: &TcpStream,
    core: &SharedCore,
    obs: &Arc<MetricsRegistry>,
    cfg: &NetConfig,
    shutdown: &Arc<AtomicBool>,
    subs: &SharedSubs,
    conn_id: u64,
) -> io::Result<CloseReason> {
    let counters = obs.net();
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(cfg.read_poll))?;
    let mut rstream = stream.try_clone()?;

    let wstream = stream.try_clone()?;
    wstream.set_write_timeout(Some(cfg.write_timeout))?;
    let (out_tx, out_rx) = mpsc::sync_channel::<Outbound>(cfg.outbound_bound.max(1));
    subs.lock().senders.insert(conn_id, out_tx.clone());
    let writer = {
        let obs = Arc::clone(obs);
        let max_frame = cfg.max_frame;
        let mut wstream = wstream;
        std::thread::spawn(move || -> bool {
            while let Ok((tag, payload)) = out_rx.recv() {
                let len = payload.len();
                if write_frame(&mut wstream, tag, &payload, max_frame).is_err() {
                    return false;
                }
                NetCounters::add(
                    &obs.net().bytes_out,
                    (len + lbsp_net::FRAME_OVERHEAD) as u64,
                );
            }
            true
        })
    };

    let mut reader = FrameReader::new(cfg.max_frame);
    let mut last_frame = Instant::now();
    let mut draining_since: Option<Instant> = None;
    let mut reason = CloseReason::Normal;

    'conn: loop {
        if shutdown.load(Ordering::Relaxed) && draining_since.is_none() {
            draining_since = Some(Instant::now());
        }
        if let Some(t) = draining_since {
            if t.elapsed() > cfg.drain_grace {
                break 'conn;
            }
        }
        match reader.poll(&mut rstream) {
            Ok(Poll::Frame(frame)) => {
                last_frame = Instant::now();
                NetCounters::add(&counters.bytes_in, frame.wire_len() as u64);
                let frames = handle_frame(core, obs, frame, conn_id, subs);
                NetCounters::add(&counters.requests_served, 1);
                if frames.last().is_some_and(|(t, _)| *t == wire::tag::ERROR) {
                    NetCounters::add(&counters.errors_returned, 1);
                }
                let deadline = Instant::now() + cfg.backpressure_timeout;
                for mut item in frames {
                    loop {
                        match out_tx.try_send(item) {
                            Ok(()) => break,
                            Err(TrySendError::Full(it)) => {
                                if Instant::now() >= deadline {
                                    reason = CloseReason::Slow;
                                    break 'conn;
                                }
                                item = it;
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            Err(TrySendError::Disconnected(_)) => {
                                reason = CloseReason::Slow;
                                break 'conn;
                            }
                        }
                    }
                }
            }
            Ok(Poll::Pending) => {
                if draining_since.is_some() {
                    break 'conn;
                }
                if last_frame.elapsed() > cfg.idle_timeout {
                    reason = CloseReason::Idle;
                    break 'conn;
                }
            }
            Ok(Poll::Eof) => break 'conn,
            Err(e) => {
                reason = match e.kind() {
                    io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof => {
                        CloseReason::BadFrame
                    }
                    _ => CloseReason::Normal,
                };
                break 'conn;
            }
        }
    }

    unsubscribe_connection(subs, conn_id);
    drop(out_tx);
    if let Ok(false) = writer.join().map_err(|_| ()) {
        if !matches!(reason, CloseReason::Slow) {
            reason = CloseReason::Slow;
        }
    }
    Ok(reason)
}

/// Routes one client frame end to end: answers liveness and stats
/// probes locally, refuses cluster-internal tags, and sends everything
/// else through the routing core (concurrently with other connections'
/// requests — only the gate serializes, and only against lockstep
/// operations). Standing deltas drained from node connections are
/// fanned out to subscribers; this connection's own deltas precede the
/// reply. Routing errors become kinded [`wire::tag::ROUTE_FAIL`]
/// replies: `WouldBlock` means a node is mid-reconnect (`RETRYABLE`,
/// bumping `retryable_failures`); anything else is fatal (`DOWN`,
/// bumping `route_failures`).
fn handle_frame(
    core: &SharedCore,
    obs: &Arc<MetricsRegistry>,
    frame: Frame,
    conn_id: u64,
    subs: &SharedSubs,
) -> Vec<Outbound> {
    let counters = obs.net();
    match frame.tag {
        wire::tag::PING => return vec![(wire::tag::PONG, frame.payload)],
        wire::tag::STATS => {
            if !frame.payload.is_empty() {
                NetCounters::add(&counters.frames_rejected, 1);
                return vec![(
                    wire::tag::ERROR,
                    b"stats request carries a payload".to_vec(),
                )];
            }
            let snap = obs.snapshot();
            return vec![(
                wire::tag::STATS_SNAPSHOT,
                wire::encode_stats_snapshot(&snap).to_vec(),
            )];
        }
        t if is_internal(t) => {
            NetCounters::add(&counters.frames_rejected, 1);
            return vec![(
                wire::tag::ERROR,
                format!("cluster-internal request tag 0x{t:02x}").into_bytes(),
            )];
        }
        _ => {}
    }
    let mut deltas: DeltaBatch = Vec::new();
    let mut sub_actions: Vec<SubAction> = Vec::new();
    let result = core.route(&frame, &mut deltas, &mut sub_actions);
    for action in sub_actions {
        match action {
            SubAction::Subscribe(key) => subscribe(subs, conn_id, key),
            SubAction::DropQuery(key) => {
                subs.lock().by_query.remove(&key);
            }
        }
    }
    let mut frames = route_deltas(subs, conn_id, deltas);
    match result {
        Ok(mut reply) => frames.append(&mut reply),
        Err(e) => {
            let kind = if e.kind() == io::ErrorKind::WouldBlock {
                NetCounters::add(&counters.retryable_failures, 1);
                wire::ROUTE_FAIL_RETRYABLE
            } else {
                NetCounters::add(&counters.route_failures, 1);
                wire::ROUTE_FAIL_DOWN
            };
            frames.push((
                wire::tag::ROUTE_FAIL,
                wire::encode_route_fail(kind, &e.to_string()).to_vec(),
            ));
        }
    }
    frames
}

fn unsubscribe_connection(subs: &SharedSubs, conn_id: u64) {
    let mut subs = subs.lock();
    subs.senders.remove(&conn_id);
    subs.by_query.retain(|_, conns| {
        conns.retain(|&c| c != conn_id);
        !conns.is_empty()
    });
}

fn subscribe(subs: &SharedSubs, conn_id: u64, key: (u8, u64)) {
    let mut subs = subs.lock();
    let conns = subs.by_query.entry(key).or_default();
    if !conns.contains(&conn_id) {
        conns.push(conn_id);
    }
}

/// Same fan-out contract as the single-node server: the requesting
/// connection's deltas are returned (they ride ahead of its reply);
/// other subscribers get best-effort pushes through their writer
/// queues.
fn route_deltas(subs: &SharedSubs, conn_id: u64, deltas: DeltaBatch) -> Vec<Outbound> {
    let mut own = Vec::new();
    if deltas.is_empty() {
        return own;
    }
    let subs = subs.lock();
    for (key, bytes) in deltas {
        let Some(conns) = subs.by_query.get(&key) else {
            continue;
        };
        for &cid in conns {
            if cid == conn_id {
                own.push((wire::tag::STANDING_DELTA, bytes.clone()));
            } else if let Some(tx) = subs.senders.get(&cid) {
                let _ = tx.try_send((wire::tag::STANDING_DELTA, bytes.clone()));
            }
        }
    }
    own
}
