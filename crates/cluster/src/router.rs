//! The cluster's routing front door.
//!
//! A [`Router`] speaks the ordinary client wire protocol on its public
//! socket and owns one pipelined connection to each cluster node.
//! Clients never learn the cluster topology: they connect to the router
//! exactly as they would to a single [`lbsp_net::NetServer`], and the
//! router forwards each request to the node owning it.
//!
//! ## Replication and ownership
//!
//! The cloaking algorithm is *global*: every cloak is computed against
//! the summed population of the whole world, so a partitioned cluster
//! can only answer byte-identically to one sequential engine if every
//! node sees the full position plane. The router therefore maintains
//! two replicated planes and one single-copy plane:
//!
//! * **Position plane** — after forwarding an `EXACT_UPDATE` to the
//!   owning node, the router mirrors the same row to every other node
//!   as a [`wire::tag::SHADOW_UPDATE`] frame (positions advance even
//!   when the cloak failed, exactly like the sequential engine).
//! * **Cloak plane** — when the owner answers with cloaked bytes, the
//!   router relays those exact bytes to every other node as a
//!   [`wire::tag::CLOAK_INGEST`] frame, so the private stores and
//!   standing-count registries stay in lockstep. Non-owners drain the
//!   resulting changed-set internally; only the owner pushes deltas.
//! * **User state (single copy)** — a user's privacy profile and
//!   standing-range registrations live on exactly one node. When a
//!   movement crosses a partition boundary the router performs an
//!   explicit handoff *before* forwarding the update:
//!   [`wire::tag::HANDOFF_PULL`] extracts the state from the old owner
//!   as a [`wire::tag::USER_HANDOFF`] reply, and
//!   [`wire::tag::HANDOFF_PUSH`] installs it on the new owner.
//!
//! Standing-query registrations and deregistrations are broadcast to
//! every node, which keeps the per-kind id counters in lockstep
//! cluster-wide; the client sees node 0's reply. Deltas pushed by
//! whichever node processed an update are fanned out to subscribed
//! router connections through the same subscription-table idiom the
//! single-node server uses.
//!
//! ## Concurrency
//!
//! Each node connection is a [`NodeChannel`]: a pipelined send half
//! (serialized by a [`LockRank::ClusterNode`] mutex) plus a dedicated
//! reader thread that matches reply frames to an in-order ticket queue.
//! A routed request *begins* every hop it needs — the `EXACT_UPDATE` to
//! the owner and the `SHADOW_UPDATE` mirrors to every other node — and
//! only then *waits* for the replies, so one update costs roughly two
//! node round-trips regardless of cluster size, and updates owned by
//! distinct nodes make progress concurrently.
//!
//! What replaces the old global request mutex is a single
//! [`LockRank::ClusterRouter`] read/write gate. Per-user requests
//! (updates, queries, registrations of a user) hold it *shared*;
//! operations whose correctness depends on every node observing them at
//! the same point in the request stream — standing-query broadcasts,
//! which must keep the per-kind id counters in lockstep, and ownership
//! handoffs — hold it *exclusive*, quiescing in-flight updates first.
//! The ownership tables themselves live under a short
//! [`LockRank::ClusterCore`] mutex that is never held across node I/O.
//!
//! Single-connection ordering is unchanged: a closed-loop client still
//! observes byte-identical replies to the sequential engine, because
//! its own requests never overlap. Requests racing on *different*
//! connections for the *same* user keep the single-node doctrine — one
//! device is one connection, and cross-device races settle on whichever
//! hop reaches the owner first.
//!
//! ## Failure doctrine
//!
//! A node that cannot be reached (connect failure, I/O error, timeout)
//! is marked dead and stays dead for the router's lifetime. Any request
//! that needs a dead node gets a loud [`wire::tag::ROUTE_FAIL`] reply
//! naming the node — never a hang, and never a reply that masquerades
//! as an application-level [`wire::tag::ERROR`] — and the router's
//! `route_failures` counter is bumped.

use crate::partition::PartitionMap;
use lbsp_core::metrics::NetCounters;
use lbsp_core::{wire, LockRank, MetricsRegistry, TrackedMutex, TrackedRwLock};
use lbsp_geom::Rect;
use lbsp_net::frame::write_frame;
use lbsp_net::{classify_reply, Frame, FrameReader, NetConfig, Poll, Reply, MAX_FRAME_LEN};
use std::collections::HashMap;
use std::io;
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{self, TrySendError};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// One queued outbound frame: (tag, payload bytes).
type Outbound = (u8, Vec<u8>);

/// Changed standing-query states drained from node connections during
/// one routed request: ((kind code, query id), state bytes).
type DeltaBatch = Vec<((u8, u64), Vec<u8>)>;

/// Tuning knobs of a [`Router`].
#[derive(Debug, Clone, Copy)]
pub struct RouterConfig {
    /// Client-facing connection handling (same knobs as the single-node
    /// server: worker pool, timeouts, bounded queues).
    pub net: NetConfig,
    /// Read/write timeout on each router→node connection. A node that
    /// stays quiet past this bound is declared dead.
    pub node_timeout: Duration,
}

impl Default for RouterConfig {
    fn default() -> RouterConfig {
        RouterConfig {
            net: NetConfig::default(),
            node_timeout: Duration::from_secs(2),
        }
    }
}

/// What the cluster did over the router's lifetime, reported by
/// [`Router::shutdown`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RouterReport {
    /// Boundary-crossing user migrations completed.
    pub handoffs: u64,
    /// Requests answered with [`wire::tag::ROUTE_FAIL`].
    pub route_failures: u64,
    /// Client requests served.
    pub requests_served: u64,
}

/// What one reader thread hands back for one ticket: the reply frame
/// plus any standing-delta payloads that rode ahead of it.
type TicketResult = io::Result<(Frame, Vec<Vec<u8>>)>;

/// One outstanding request on a node channel, waiting for its reply.
struct Ticket {
    tx: mpsc::SyncSender<TicketResult>,
}

/// The mutable send half of a node channel, serialized so pipelined
/// frames (and their tickets) leave in one well-defined order.
struct SendHalf {
    /// Write half of the node socket, connected lazily.
    stream: Option<TcpStream>,
    /// Hands tickets to the reader thread in send order.
    tickets: Option<mpsc::Sender<Ticket>>,
    /// The reader thread, joined on router shutdown.
    reader: Option<JoinHandle<()>>,
}

/// A pipelined connection to one cluster node: requests are written
/// under a short send lock (ticket first, then frame, so the reader
/// always finds the ticket queued before the reply can arrive) and
/// replies are matched to tickets in order by a dedicated reader
/// thread. Multiple requests may be in flight at once; per-node frame
/// order is exactly ticket order.
struct NodeChannel {
    index: usize,
    addr: String,
    node_timeout: Duration,
    /// Set on the first connect or I/O failure; never cleared — a dead
    /// node answers [`wire::tag::ROUTE_FAIL`] for the router's lifetime.
    dead: Arc<AtomicBool>,
    send: TrackedMutex<SendHalf>,
}

/// A begun call on a [`NodeChannel`]; [`PendingCall::wait`] blocks for
/// the reply. Dropping it without waiting is safe — the reader consumes
/// the reply and discards it, keeping the pipeline aligned.
struct PendingCall<'a> {
    channel: &'a NodeChannel,
    rx: mpsc::Receiver<TicketResult>,
}

impl NodeChannel {
    fn new(index: usize, addr: String, node_timeout: Duration) -> NodeChannel {
        NodeChannel {
            index,
            addr,
            node_timeout,
            dead: Arc::new(AtomicBool::new(false)),
            send: TrackedMutex::new(
                LockRank::ClusterNode,
                SendHalf {
                    stream: None,
                    tickets: None,
                    reader: None,
                },
            ),
        }
    }

    fn down_error(&self) -> io::Error {
        io::Error::new(
            io::ErrorKind::NotConnected,
            format!("node {} at {} is down", self.index, self.addr),
        )
    }

    fn failed_error(&self, e: &io::Error) -> io::Error {
        io::Error::new(
            io::ErrorKind::NotConnected,
            format!("node {} at {} failed: {e}", self.index, self.addr),
        )
    }

    /// Marks the node dead and shuts the socket down, which makes the
    /// reader thread exit promptly and fail every outstanding ticket.
    fn kill(&self) {
        self.dead.store(true, Ordering::Relaxed);
        let mut send = self.send.lock();
        if let Some(s) = send.stream.take() {
            // Qualified call: `s.shutdown(..)` would collide with
            // `Router::shutdown` in the lint's same-file call
            // resolution and manufacture a phantom lock edge.
            let _ = TcpStream::shutdown(&s, Shutdown::Both);
        }
        send.tickets = None;
    }

    /// Shutdown path: kill the channel and join its reader.
    fn close(&self) {
        self.kill();
        let reader = self.send.lock().reader.take();
        if let Some(h) = reader {
            let _ = h.join();
        }
    }

    /// Sends one request frame and returns a handle to its future
    /// reply. Errors when the node is dead, unreachable, or the write
    /// fails — each with the message shape the failure doctrine
    /// promises.
    fn begin(&self, tag: u8, payload: &[u8]) -> io::Result<PendingCall<'_>> {
        if self.dead.load(Ordering::Relaxed) {
            return Err(self.down_error());
        }
        let mut send = self.send.lock();
        // A racing call may have killed the channel while we waited for
        // the send lock.
        if self.dead.load(Ordering::Relaxed) {
            return Err(self.down_error());
        }
        if send.stream.is_none() {
            match self.connect() {
                Ok((wstream, rstream)) => {
                    let (ticket_tx, ticket_rx) = mpsc::channel::<Ticket>();
                    send.reader = Some(spawn_node_reader(
                        rstream,
                        ticket_rx,
                        Arc::clone(&self.dead),
                    ));
                    send.stream = Some(wstream);
                    send.tickets = Some(ticket_tx);
                }
                Err(e) => {
                    self.dead.store(true, Ordering::Relaxed);
                    return Err(io::Error::new(
                        io::ErrorKind::NotConnected,
                        format!("node {} at {} is unreachable: {e}", self.index, self.addr),
                    ));
                }
            }
        }
        let (tx, rx) = mpsc::sync_channel::<TicketResult>(1);
        // Ticket before frame: the reply cannot arrive before the
        // request bytes leave, so the reader always finds the ticket
        // already queued when it pops the reply.
        if let Some(tickets) = &send.tickets {
            let _ = tickets.send(Ticket { tx });
        }
        let written = match send.stream.as_mut() {
            Some(s) => write_frame(s, tag, payload, MAX_FRAME_LEN),
            None => Err(io::Error::new(
                io::ErrorKind::NotConnected,
                "channel has no stream",
            )),
        };
        drop(send);
        if let Err(e) = written {
            self.kill();
            return Err(self.failed_error(&e));
        }
        Ok(PendingCall { channel: self, rx })
    }

    /// Establishes the node connection: write half + cloned read half
    /// for the reader thread.
    fn connect(&self) -> io::Result<(TcpStream, TcpStream)> {
        let stream = TcpStream::connect(&self.addr)?;
        stream.set_nodelay(true).ok();
        stream.set_write_timeout(Some(self.node_timeout)).ok();
        let rstream = stream.try_clone()?;
        rstream.set_read_timeout(Some(self.node_timeout)).ok();
        Ok((stream, rstream))
    }
}

/// The per-channel reply demultiplexer: stashes standing-delta pushes,
/// matches every other frame to the next ticket in send order, and on
/// any connection failure marks the node dead and fails the remaining
/// tickets so no caller ever hangs past its own timeout.
fn spawn_node_reader(
    mut stream: TcpStream,
    tickets: mpsc::Receiver<Ticket>,
    dead: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::spawn(move || {
        let mut reader = FrameReader::new(MAX_FRAME_LEN);
        let mut pushed: Vec<Vec<u8>> = Vec::new();
        loop {
            if dead.load(Ordering::Relaxed) {
                break;
            }
            match reader.poll(&mut stream) {
                Ok(Poll::Frame(f)) if f.tag == wire::tag::STANDING_DELTA => {
                    pushed.push(f.payload);
                }
                Ok(Poll::Frame(f)) => match tickets.try_recv() {
                    Ok(t) => {
                        let _ = t.tx.send(Ok((f, std::mem::take(&mut pushed))));
                    }
                    // A reply with no request outstanding: the stream
                    // desynchronized; kill the channel.
                    Err(_) => break,
                },
                // Read-timeout tick — liveness deadlines belong to the
                // waiting callers, not the reader.
                Ok(Poll::Pending) => {}
                Ok(Poll::Eof) | Err(_) => break,
            }
        }
        dead.store(true, Ordering::Relaxed);
        while let Ok(t) = tickets.try_recv() {
            let _ = t.tx.send(Err(io::Error::new(
                io::ErrorKind::ConnectionAborted,
                "node connection lost",
            )));
        }
    })
}

impl PendingCall<'_> {
    /// Blocks for the reply; delta pushes that rode ahead of it are
    /// appended to `deltas`. A timeout, transport failure, or
    /// protocol-violating reply kills the node.
    fn wait(self, deltas: &mut DeltaBatch) -> io::Result<Outbound> {
        match self.rx.recv_timeout(self.channel.node_timeout) {
            Ok(Ok((frame, pushed))) => {
                for bytes in pushed {
                    if let Some(key) = delta_key(&bytes) {
                        deltas.push((key, bytes));
                    }
                }
                match classify_reply(frame) {
                    Ok(reply) => Ok(reply_frame(reply)),
                    Err(e) => {
                        self.channel.kill();
                        Err(self.channel.failed_error(&e))
                    }
                }
            }
            Ok(Err(e)) => {
                self.channel.kill();
                Err(self.channel.failed_error(&e))
            }
            Err(_) => {
                self.channel.kill();
                Err(self.channel.failed_error(&io::Error::new(
                    io::ErrorKind::TimedOut,
                    "timed out waiting for reply",
                )))
            }
        }
    }
}

/// The ownership bookkeeping, held only for table lookups — never
/// across node I/O.
#[derive(Default)]
struct Tables {
    /// Registered user → node currently holding the single-copy state.
    owner: HashMap<u64, usize>,
    /// Standing-range query id → subject user (routes snapshots to the
    /// node owning that user).
    range_user: HashMap<u64, u64>,
    /// Completed boundary-crossing migrations.
    handoffs: u64,
}

/// Subscription actions the core requests; applied after routing so the
/// subscription table never nests inside the routing path.
enum SubAction {
    /// Subscribe the requesting connection to a standing-query key.
    Subscribe((u8, u64)),
    /// Forget every subscription to a deregistered query.
    DropQuery((u8, u64)),
}

/// The router's routing core: the partition map, one pipelined channel
/// per node, the request gate, and the ownership tables.
struct Core {
    partition: PartitionMap,
    channels: Vec<NodeChannel>,
    /// The request gate. Shared by per-user routes; exclusive quiesces
    /// the cluster for operations every node must observe at the same
    /// point in the request stream (standing broadcasts, handoffs).
    gate: TrackedRwLock<()>,
    tables: TrackedMutex<Tables>,
}

impl Core {
    fn channel(&self, i: usize) -> io::Result<&NodeChannel> {
        self.channels
            .get(i)
            .ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, format!("no node {i}")))
    }

    /// One closed-loop request to node `i` (begin + wait).
    fn call(
        &self,
        i: usize,
        tag: u8,
        payload: &[u8],
        deltas: &mut DeltaBatch,
    ) -> io::Result<Outbound> {
        self.channel(i)?.begin(tag, payload)?.wait(deltas)
    }

    /// Like [`Core::call`] but for cluster-internal frames whose only
    /// acceptable answer is `OK`; anything else is a cluster-consistency
    /// failure and surfaces loudly.
    fn expect_ok(
        &self,
        i: usize,
        tag: u8,
        payload: &[u8],
        deltas: &mut DeltaBatch,
    ) -> io::Result<()> {
        let (rtag, body) = self.call(i, tag, payload, deltas)?;
        if rtag == wire::tag::OK {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "node {i} rejected internal frame 0x{tag:02x}: {}",
                    String::from_utf8_lossy(&body)
                ),
            ))
        }
    }

    /// Waits a batch of concurrently-begun internal calls, requiring
    /// `OK` from each. Every call is consumed even after a failure (the
    /// pipeline stays aligned); the first failure in node order wins.
    fn wait_all_ok(
        &self,
        tag: u8,
        calls: Vec<(usize, PendingCall<'_>)>,
        deltas: &mut DeltaBatch,
    ) -> io::Result<()> {
        let mut first_err: Option<io::Error> = None;
        for (i, call) in calls {
            match call.wait(deltas) {
                Ok((rtag, _)) if rtag == wire::tag::OK => {}
                Ok((_, body)) => {
                    if first_err.is_none() {
                        first_err = Some(io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!(
                                "node {i} rejected internal frame 0x{tag:02x}: {}",
                                String::from_utf8_lossy(&body)
                            ),
                        ));
                    }
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Migrates `user`'s single-copy state from node `from` to node
    /// `to`: pull, push, then flip the ownership table. Caller holds
    /// the exclusive gate.
    fn handoff(
        &self,
        user: u64,
        from: usize,
        to: usize,
        deltas: &mut DeltaBatch,
    ) -> io::Result<()> {
        let pull = self.call(
            from,
            wire::tag::HANDOFF_PULL,
            &wire::encode_handoff_pull(user),
            deltas,
        )?;
        if pull.0 != wire::tag::USER_HANDOFF {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!(
                    "node {from} failed handoff pull for subject {user}: {}",
                    String::from_utf8_lossy(&pull.1)
                ),
            ));
        }
        self.expect_ok(to, wire::tag::HANDOFF_PUSH, &pull.1, deltas)?;
        let mut tables = self.tables.lock();
        tables.owner.insert(user, to);
        tables.handoffs += 1;
        Ok(())
    }

    /// Routes one client frame. `Err` means a node needed for the
    /// request is unreachable (or broke cluster consistency); the
    /// caller turns it into a [`wire::tag::ROUTE_FAIL`] reply.
    fn route(
        &self,
        frame: &Frame,
        deltas: &mut DeltaBatch,
        subs_out: &mut Vec<SubAction>,
    ) -> io::Result<Vec<Outbound>> {
        match frame.tag {
            wire::tag::EXACT_UPDATE => self.route_update(frame, deltas),
            wire::tag::REGISTER => self.route_register(frame, deltas),
            wire::tag::USER_QUERY => self.route_user_query(frame, deltas),
            wire::tag::REGISTER_STANDING_COUNT
            | wire::tag::REGISTER_STANDING_RANGE
            | wire::tag::DEREGISTER_STANDING => self.route_broadcast(frame, deltas, subs_out),
            wire::tag::STANDING_SNAPSHOT => self.route_snapshot(frame, deltas),
            // Anything else — unknown tags and tags this router does not
            // special-case — is forwarded verbatim to node 0, whose
            // reply (typically an error with the same text a single
            // server would produce) is relayed unchanged.
            _ => {
                let _gate = self.gate.read();
                self.call(0, frame.tag, &frame.payload, deltas)
                    .map(|f| vec![f])
            }
        }
    }

    fn route_register(&self, frame: &Frame, deltas: &mut DeltaBatch) -> io::Result<Vec<Outbound>> {
        let Some(msg) = wire::decode_register(&frame.payload) else {
            // Malformed: let node 0 produce the canonical error text.
            let _gate = self.gate.read();
            return self
                .call(0, frame.tag, &frame.payload, deltas)
                .map(|f| vec![f]);
        };
        let _gate = self.gate.read();
        // Re-registration refreshes the profile wherever it currently
        // lives; new users start on node 0 and migrate on first update.
        let target = self
            .tables
            .lock()
            .owner
            .get(&msg.user)
            .copied()
            .unwrap_or(0);
        let reply = self.call(target, frame.tag, &frame.payload, deltas)?;
        if reply.0 == wire::tag::OK {
            self.tables.lock().owner.insert(msg.user, target);
        }
        Ok(vec![reply])
    }

    fn route_update(&self, frame: &Frame, deltas: &mut DeltaBatch) -> io::Result<Vec<Outbound>> {
        let Some(msg) = wire::decode_exact_update(&frame.payload) else {
            let _gate = self.gate.read();
            return self
                .call(0, frame.tag, &frame.payload, deltas)
                .map(|f| vec![f]);
        };
        let target = self.partition.node_of(msg.position);
        let gate = self.gate.read();
        let Some(cur) = self.tables.lock().owner.get(&msg.user).copied() else {
            // Never registered through this router: the node refuses
            // with the same unknown-user error the sequential engine
            // gives, and no node's position plane moves — a reference
            // no-op must stay a no-op fleet-wide.
            return self
                .call(target, frame.tag, &frame.payload, deltas)
                .map(|f| vec![f]);
        };
        if cur == target {
            return self.fan_out_update(target, frame, deltas);
        }
        // Boundary crossing: trade the shared gate for the exclusive
        // one, which quiesces in-flight updates so the handoff is the
        // only thing the cluster observes.
        drop(gate);
        let _gate = self.gate.write();
        // Re-check under the exclusive gate — another crossing of the
        // same user may have won it first.
        let cur = self
            .tables
            .lock()
            .owner
            .get(&msg.user)
            .copied()
            .unwrap_or(cur);
        if cur != target {
            self.handoff(msg.user, cur, target, deltas)?;
        }
        self.fan_out_update(target, frame, deltas)
    }

    /// The update fan-out: begin the `EXACT_UPDATE` on the owner and
    /// the `SHADOW_UPDATE` mirror on every other node, then wait all;
    /// if the owner cloaked, begin the `CLOAK_INGEST` relay on every
    /// other node and wait all. Two round-trip phases regardless of
    /// cluster size.
    fn fan_out_update(
        &self,
        target: usize,
        frame: &Frame,
        deltas: &mut DeltaBatch,
    ) -> io::Result<Vec<Outbound>> {
        let main = self
            .channel(target)?
            .begin(wire::tag::EXACT_UPDATE, &frame.payload)?;
        let mut shadows = Vec::new();
        let mut begin_err: Option<io::Error> = None;
        for (i, ch) in self.channels.iter().enumerate() {
            if i == target {
                continue;
            }
            match ch.begin(wire::tag::SHADOW_UPDATE, &frame.payload) {
                Ok(call) => shadows.push((i, call)),
                Err(e) => {
                    if begin_err.is_none() {
                        begin_err = Some(e);
                    }
                }
            }
        }
        // Owner first: its deltas ride ahead of its reply and must land
        // ahead of the mirrors' (empty) batches, exactly as the old
        // sequential order appended them.
        let reply = main.wait(deltas);
        let mirrored = self.wait_all_ok(wire::tag::SHADOW_UPDATE, shadows, deltas);
        let reply = reply?;
        if let Some(e) = begin_err {
            return Err(e);
        }
        mirrored?;
        // A successful cloak also replicates into every non-owner's
        // private store / standing-count registry, as the exact bytes
        // the owner produced.
        if reply.0 == wire::tag::CLOAKED_UPDATE {
            let mut ingests = Vec::new();
            let mut begin_err: Option<io::Error> = None;
            for (i, ch) in self.channels.iter().enumerate() {
                if i == target {
                    continue;
                }
                match ch.begin(wire::tag::CLOAK_INGEST, &reply.1) {
                    Ok(call) => ingests.push((i, call)),
                    Err(e) => {
                        if begin_err.is_none() {
                            begin_err = Some(e);
                        }
                    }
                }
            }
            let ingested = self.wait_all_ok(wire::tag::CLOAK_INGEST, ingests, deltas);
            if let Some(e) = begin_err {
                return Err(e);
            }
            ingested?;
        }
        Ok(vec![reply])
    }

    fn route_user_query(
        &self,
        frame: &Frame,
        deltas: &mut DeltaBatch,
    ) -> io::Result<Vec<Outbound>> {
        let Some(msg) = wire::decode_user_query(&frame.payload) else {
            let _gate = self.gate.read();
            return self
                .call(0, frame.tag, &frame.payload, deltas)
                .map(|f| vec![f]);
        };
        let _gate = self.gate.read();
        // Queries need the user's profile, which lives on the owner;
        // unknown users go to node 0 for the canonical error text.
        let target = self
            .tables
            .lock()
            .owner
            .get(&msg.user)
            .copied()
            .unwrap_or(0);
        self.call(target, frame.tag, &frame.payload, deltas)
            .map(|f| vec![f])
    }

    /// Standing registrations and deregistrations run on *every* node
    /// under the exclusive gate, keeping the per-kind id counters in
    /// lockstep cluster-wide; the client sees node 0's reply. The
    /// broadcast is pipelined — begun on every node, then waited — so
    /// it costs one round trip, not K. Malformed payloads are broadcast
    /// too: every node rejects identically, so the registries stay in
    /// lockstep either way.
    fn route_broadcast(
        &self,
        frame: &Frame,
        deltas: &mut DeltaBatch,
        subs_out: &mut Vec<SubAction>,
    ) -> io::Result<Vec<Outbound>> {
        let _gate = self.gate.write();
        let mut calls = Vec::new();
        let mut first_err: Option<io::Error> = None;
        for (i, ch) in self.channels.iter().enumerate() {
            match ch.begin(frame.tag, &frame.payload) {
                Ok(call) => calls.push((i, call)),
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        let mut first: Option<Outbound> = None;
        for (i, call) in calls {
            match call.wait(deltas) {
                Ok(reply) => {
                    if i == 0 {
                        first = Some(reply);
                    }
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        let reply =
            first.ok_or_else(|| io::Error::new(io::ErrorKind::NotFound, "cluster has no nodes"))?;
        match frame.tag {
            wire::tag::REGISTER_STANDING_COUNT | wire::tag::REGISTER_STANDING_RANGE
                if reply.0 == wire::tag::STANDING_REGISTERED =>
            {
                if let Some(r) = wire::decode_standing_ref(&reply.1) {
                    subs_out.push(SubAction::Subscribe((r.kind.code(), r.id)));
                    if frame.tag == wire::tag::REGISTER_STANDING_RANGE {
                        if let Some(msg) = wire::decode_register_standing_range(&frame.payload) {
                            self.tables.lock().range_user.insert(r.id, msg.user);
                        }
                    }
                }
            }
            wire::tag::DEREGISTER_STANDING if reply.0 == wire::tag::OK => {
                if let Some(r) = wire::decode_standing_ref(&frame.payload) {
                    subs_out.push(SubAction::DropQuery((r.kind.code(), r.id)));
                    self.tables.lock().range_user.remove(&r.id);
                }
            }
            _ => {}
        }
        Ok(vec![reply])
    }

    fn route_snapshot(&self, frame: &Frame, deltas: &mut DeltaBatch) -> io::Result<Vec<Outbound>> {
        let Some(msg) = wire::decode_standing_ref(&frame.payload) else {
            let _gate = self.gate.read();
            return self
                .call(0, frame.tag, &frame.payload, deltas)
                .map(|f| vec![f]);
        };
        let _gate = self.gate.read();
        // Count registries are replicated in lockstep, so any node can
        // answer; node 0 does. Range queries are maintained only on the
        // node owning their subject user.
        let target = match msg.kind {
            wire::StandingKind::Count => 0,
            wire::StandingKind::Range => {
                let tables = self.tables.lock();
                tables
                    .range_user
                    .get(&msg.id)
                    .and_then(|u| tables.owner.get(u))
                    .copied()
                    .unwrap_or(0)
            }
        };
        self.call(target, frame.tag, &frame.payload, deltas)
            .map(|f| vec![f])
    }
}

/// Maps a node's [`Reply`] back to the wire frame it arrived as.
fn reply_frame(reply: Reply) -> Outbound {
    match reply {
        Reply::Ok => (wire::tag::OK, Vec::new()),
        Reply::Cloaked(b) => (wire::tag::CLOAKED_UPDATE, b),
        Reply::Candidates(b) => (wire::tag::CANDIDATES, b),
        Reply::Pong(b) => (wire::tag::PONG, b),
        Reply::Stats(b) => (wire::tag::STATS_SNAPSHOT, b),
        Reply::StandingRegistered(b) => (wire::tag::STANDING_REGISTERED, b),
        Reply::StandingState(b) => (wire::tag::STANDING_STATE, b),
        Reply::Handoff(b) => (wire::tag::USER_HANDOFF, b),
        Reply::Error(s) => (wire::tag::ERROR, s.into_bytes()),
    }
}

/// The subscription key of a standing-delta payload.
fn delta_key(payload: &[u8]) -> Option<(u8, u64)> {
    match wire::decode_standing_state(payload)? {
        wire::StandingState::Count(s) => Some((wire::StandingKind::Count.code(), s.id)),
        wire::StandingState::Range(s) => Some((wire::StandingKind::Range.code(), s.id)),
    }
}

/// `true` for tags that only router→node hops may carry; a client
/// sending one to the router is refused rather than forwarded, so the
/// public socket cannot inject into the trusted replication planes.
fn is_internal(tag: u8) -> bool {
    matches!(
        tag,
        wire::tag::SHADOW_UPDATE
            | wire::tag::CLOAK_INGEST
            | wire::tag::HANDOFF_PULL
            | wire::tag::HANDOFF_PUSH
    )
}

/// Who hears about which standing query — same shape and semantics as
/// the single-node server's subscription table.
#[derive(Default)]
struct StandingSubs {
    by_query: HashMap<(u8, u64), Vec<u64>>,
    senders: HashMap<u64, mpsc::SyncSender<Outbound>>,
}

type SharedSubs = Arc<TrackedMutex<StandingSubs>>;
type SharedCore = Arc<Core>;

/// The cluster's client-facing front door.
pub struct Router {
    addr: SocketAddr,
    shutdown: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
    core: SharedCore,
    obs: Arc<MetricsRegistry>,
}

impl Router {
    /// Binds the public socket at `addr` and starts routing requests to
    /// the nodes at `node_addrs`, which partition `world` into vertical
    /// stripes in address order. Node connections are established
    /// lazily, so nodes may come up after the router.
    pub fn bind<A: ToSocketAddrs>(
        addr: A,
        node_addrs: &[&str],
        world: Rect,
        cfg: RouterConfig,
    ) -> io::Result<Router> {
        if node_addrs.is_empty() {
            return Err(io::Error::new(
                io::ErrorKind::InvalidInput,
                "a cluster needs at least one node",
            ));
        }
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        let obs = Arc::new(MetricsRegistry::new());
        let shutdown = Arc::new(AtomicBool::new(false));
        let core: SharedCore = Arc::new(Core {
            partition: PartitionMap::new(world, node_addrs.len()),
            channels: node_addrs
                .iter()
                .enumerate()
                .map(|(i, a)| NodeChannel::new(i, (*a).to_string(), cfg.node_timeout))
                .collect(),
            gate: TrackedRwLock::new(LockRank::ClusterRouter, ()),
            tables: TrackedMutex::new(LockRank::ClusterCore, Tables::default()),
        });
        let subs: SharedSubs = Arc::new(TrackedMutex::new(
            LockRank::NetStandingSubs,
            StandingSubs::default(),
        ));
        let conn_ids = Arc::new(AtomicU64::new(1));

        let (conn_tx, conn_rx) = mpsc::sync_channel::<TcpStream>(cfg.net.accept_backlog.max(1));
        let conn_rx = Arc::new(TrackedMutex::new(LockRank::NetConnQueue, conn_rx));

        let workers = (0..cfg.net.workers.max(1))
            .map(|_| {
                let conn_rx = Arc::clone(&conn_rx);
                let core = Arc::clone(&core);
                let obs = Arc::clone(&obs);
                let shutdown = Arc::clone(&shutdown);
                let subs = Arc::clone(&subs);
                let conn_ids = Arc::clone(&conn_ids);
                let net = cfg.net;
                std::thread::spawn(move || loop {
                    let next = conn_rx.lock().recv_timeout(Duration::from_millis(50));
                    match next {
                        Ok(stream) => {
                            if shutdown.load(Ordering::Relaxed) {
                                let _ = stream.shutdown(Shutdown::Both);
                                NetCounters::add(&obs.net().connections_closed, 1);
                                continue;
                            }
                            serve_connection(
                                stream, &core, &obs, &net, &shutdown, &subs, &conn_ids,
                            );
                        }
                        Err(mpsc::RecvTimeoutError::Timeout) => {
                            if shutdown.load(Ordering::Relaxed) {
                                break;
                            }
                        }
                        Err(mpsc::RecvTimeoutError::Disconnected) => break,
                    }
                })
            })
            .collect();

        let acceptor = {
            let obs = Arc::clone(&obs);
            let shutdown = Arc::clone(&shutdown);
            std::thread::spawn(move || {
                for stream in listener.incoming() {
                    if shutdown.load(Ordering::Relaxed) {
                        break;
                    }
                    match stream {
                        Ok(s) => {
                            NetCounters::add(&obs.net().connections_accepted, 1);
                            if let Err(TrySendError::Full(s)) = conn_tx.try_send(s) {
                                NetCounters::add(&obs.net().connections_refused, 1);
                                let _ = s.shutdown(Shutdown::Both);
                            }
                        }
                        Err(_) => continue,
                    }
                }
            })
        };

        Ok(Router {
            addr,
            shutdown,
            acceptor: Some(acceptor),
            workers,
            core,
            obs,
        })
    }

    /// The bound public address (useful with port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.addr
    }

    /// The router's own observability registry (connection counters,
    /// `route_failures`; scraped by `STATS` on the public socket).
    pub fn metrics_registry(&self) -> &Arc<MetricsRegistry> {
        &self.obs
    }

    /// Boundary-crossing migrations completed so far.
    pub fn handoffs(&self) -> u64 {
        self.core.tables.lock().handoffs
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::Relaxed);
        let _ = TcpStream::connect(self.addr);
        if let Some(h) = self.acceptor.take() {
            let _ = h.join();
        }
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        for ch in &self.core.channels {
            ch.close();
        }
    }

    /// Graceful shutdown: stops accepting, lets live connections drain
    /// (bounded by the configured grace), joins every thread, closes
    /// the node connections, and reports what the cluster did.
    pub fn shutdown(mut self) -> RouterReport {
        self.stop();
        let snap = self.obs.net().snapshot();
        RouterReport {
            handoffs: self.core.tables.lock().handoffs,
            route_failures: snap.route_failures,
            requests_served: snap.requests_served,
        }
    }
}

impl Drop for Router {
    fn drop(&mut self) {
        if self.acceptor.is_some() || !self.workers.is_empty() {
            self.stop();
        }
    }
}

/// Why a client connection ended (drives which counter is bumped).
enum CloseReason {
    Normal,
    BadFrame,
    Slow,
    Idle,
}

/// Serves one client connection to completion; every exit path closes
/// the socket, forgets the connection's subscriptions, and bumps the
/// right counter.
fn serve_connection(
    stream: TcpStream,
    core: &SharedCore,
    obs: &Arc<MetricsRegistry>,
    cfg: &NetConfig,
    shutdown: &Arc<AtomicBool>,
    subs: &SharedSubs,
    conn_ids: &Arc<AtomicU64>,
) {
    let conn_id = conn_ids.fetch_add(1, Ordering::Relaxed);
    let reason = serve_connection_inner(&stream, core, obs, cfg, shutdown, subs, conn_id)
        .unwrap_or_else(|_| {
            unsubscribe_connection(subs, conn_id);
            CloseReason::Normal
        });
    let counters = obs.net();
    match reason {
        CloseReason::Normal => {}
        CloseReason::BadFrame => NetCounters::add(&counters.frames_rejected, 1),
        CloseReason::Slow => NetCounters::add(&counters.slow_disconnects, 1),
        CloseReason::Idle => NetCounters::add(&counters.idle_disconnects, 1),
    }
    let _ = stream.shutdown(Shutdown::Both);
    NetCounters::add(&counters.connections_closed, 1);
}

fn serve_connection_inner(
    stream: &TcpStream,
    core: &SharedCore,
    obs: &Arc<MetricsRegistry>,
    cfg: &NetConfig,
    shutdown: &Arc<AtomicBool>,
    subs: &SharedSubs,
    conn_id: u64,
) -> io::Result<CloseReason> {
    let counters = obs.net();
    stream.set_nodelay(true).ok();
    stream.set_read_timeout(Some(cfg.read_poll))?;
    let mut rstream = stream.try_clone()?;

    let wstream = stream.try_clone()?;
    wstream.set_write_timeout(Some(cfg.write_timeout))?;
    let (out_tx, out_rx) = mpsc::sync_channel::<Outbound>(cfg.outbound_bound.max(1));
    subs.lock().senders.insert(conn_id, out_tx.clone());
    let writer = {
        let obs = Arc::clone(obs);
        let max_frame = cfg.max_frame;
        let mut wstream = wstream;
        std::thread::spawn(move || -> bool {
            while let Ok((tag, payload)) = out_rx.recv() {
                let len = payload.len();
                if write_frame(&mut wstream, tag, &payload, max_frame).is_err() {
                    return false;
                }
                NetCounters::add(
                    &obs.net().bytes_out,
                    (len + lbsp_net::FRAME_OVERHEAD) as u64,
                );
            }
            true
        })
    };

    let mut reader = FrameReader::new(cfg.max_frame);
    let mut last_frame = Instant::now();
    let mut draining_since: Option<Instant> = None;
    let mut reason = CloseReason::Normal;

    'conn: loop {
        if shutdown.load(Ordering::Relaxed) && draining_since.is_none() {
            draining_since = Some(Instant::now());
        }
        if let Some(t) = draining_since {
            if t.elapsed() > cfg.drain_grace {
                break 'conn;
            }
        }
        match reader.poll(&mut rstream) {
            Ok(Poll::Frame(frame)) => {
                last_frame = Instant::now();
                NetCounters::add(&counters.bytes_in, frame.wire_len() as u64);
                let frames = handle_frame(core, obs, frame, conn_id, subs);
                NetCounters::add(&counters.requests_served, 1);
                if frames.last().is_some_and(|(t, _)| *t == wire::tag::ERROR) {
                    NetCounters::add(&counters.errors_returned, 1);
                }
                let deadline = Instant::now() + cfg.backpressure_timeout;
                for mut item in frames {
                    loop {
                        match out_tx.try_send(item) {
                            Ok(()) => break,
                            Err(TrySendError::Full(it)) => {
                                if Instant::now() >= deadline {
                                    reason = CloseReason::Slow;
                                    break 'conn;
                                }
                                item = it;
                                std::thread::sleep(Duration::from_millis(1));
                            }
                            Err(TrySendError::Disconnected(_)) => {
                                reason = CloseReason::Slow;
                                break 'conn;
                            }
                        }
                    }
                }
            }
            Ok(Poll::Pending) => {
                if draining_since.is_some() {
                    break 'conn;
                }
                if last_frame.elapsed() > cfg.idle_timeout {
                    reason = CloseReason::Idle;
                    break 'conn;
                }
            }
            Ok(Poll::Eof) => break 'conn,
            Err(e) => {
                reason = match e.kind() {
                    io::ErrorKind::InvalidData | io::ErrorKind::UnexpectedEof => {
                        CloseReason::BadFrame
                    }
                    _ => CloseReason::Normal,
                };
                break 'conn;
            }
        }
    }

    unsubscribe_connection(subs, conn_id);
    drop(out_tx);
    if let Ok(false) = writer.join().map_err(|_| ()) {
        if !matches!(reason, CloseReason::Slow) {
            reason = CloseReason::Slow;
        }
    }
    Ok(reason)
}

/// Routes one client frame end to end: answers liveness and stats
/// probes locally, refuses cluster-internal tags, and sends everything
/// else through the routing core (concurrently with other connections'
/// requests — only the gate serializes, and only against lockstep
/// operations). Standing deltas drained from node connections are
/// fanned out to subscribers; this connection's own deltas precede the
/// reply.
fn handle_frame(
    core: &SharedCore,
    obs: &Arc<MetricsRegistry>,
    frame: Frame,
    conn_id: u64,
    subs: &SharedSubs,
) -> Vec<Outbound> {
    let counters = obs.net();
    match frame.tag {
        wire::tag::PING => return vec![(wire::tag::PONG, frame.payload)],
        wire::tag::STATS => {
            if !frame.payload.is_empty() {
                NetCounters::add(&counters.frames_rejected, 1);
                return vec![(
                    wire::tag::ERROR,
                    b"stats request carries a payload".to_vec(),
                )];
            }
            let snap = obs.snapshot();
            return vec![(
                wire::tag::STATS_SNAPSHOT,
                wire::encode_stats_snapshot(&snap).to_vec(),
            )];
        }
        t if is_internal(t) => {
            NetCounters::add(&counters.frames_rejected, 1);
            return vec![(
                wire::tag::ERROR,
                format!("cluster-internal request tag 0x{t:02x}").into_bytes(),
            )];
        }
        _ => {}
    }
    let mut deltas: DeltaBatch = Vec::new();
    let mut sub_actions: Vec<SubAction> = Vec::new();
    let result = core.route(&frame, &mut deltas, &mut sub_actions);
    for action in sub_actions {
        match action {
            SubAction::Subscribe(key) => subscribe(subs, conn_id, key),
            SubAction::DropQuery(key) => {
                subs.lock().by_query.remove(&key);
            }
        }
    }
    let mut frames = route_deltas(subs, conn_id, deltas);
    match result {
        Ok(mut reply) => frames.append(&mut reply),
        Err(e) => {
            NetCounters::add(&counters.route_failures, 1);
            frames.push((wire::tag::ROUTE_FAIL, e.to_string().into_bytes()));
        }
    }
    frames
}

fn unsubscribe_connection(subs: &SharedSubs, conn_id: u64) {
    let mut subs = subs.lock();
    subs.senders.remove(&conn_id);
    subs.by_query.retain(|_, conns| {
        conns.retain(|&c| c != conn_id);
        !conns.is_empty()
    });
}

fn subscribe(subs: &SharedSubs, conn_id: u64, key: (u8, u64)) {
    let mut subs = subs.lock();
    let conns = subs.by_query.entry(key).or_default();
    if !conns.contains(&conn_id) {
        conns.push(conn_id);
    }
}

/// Same fan-out contract as the single-node server: the requesting
/// connection's deltas are returned (they ride ahead of its reply);
/// other subscribers get best-effort pushes through their writer
/// queues.
fn route_deltas(subs: &SharedSubs, conn_id: u64, deltas: DeltaBatch) -> Vec<Outbound> {
    let mut own = Vec::new();
    if deltas.is_empty() {
        return own;
    }
    let subs = subs.lock();
    for (key, bytes) in deltas {
        let Some(conns) = subs.by_query.get(&key) else {
            continue;
        };
        for &cid in conns {
            if cid == conn_id {
                own.push((wire::tag::STANDING_DELTA, bytes.clone()));
            } else if let Some(tx) = subs.senders.get(&cid) {
                let _ = tx.try_send((wire::tag::STANDING_DELTA, bytes.clone()));
            }
        }
    }
    own
}
