//! The cluster's region → node map.
//!
//! Node ownership follows the same rule the in-process engine uses for
//! shard ownership: the world is cut into `n` equal-width vertical
//! stripes and a position belongs to the stripe containing its `x`
//! coordinate, clamped at the edges. Using the identical formula keeps
//! the two levels of partitioning (shards inside a node, nodes inside
//! the cluster) congruent, so reasoning that holds for one transfers to
//! the other.

use lbsp_geom::{Point, Rect};

/// Maps positions to the cluster node owning them.
#[derive(Debug, Clone, Copy)]
pub struct PartitionMap {
    world: Rect,
    nodes: usize,
}

impl PartitionMap {
    /// A map cutting `world` into `nodes` equal-width vertical stripes
    /// (`nodes` is clamped to at least 1).
    pub fn new(world: Rect, nodes: usize) -> PartitionMap {
        PartitionMap {
            world,
            nodes: nodes.max(1),
        }
    }

    /// Number of nodes in the map.
    pub fn nodes(&self) -> usize {
        self.nodes
    }

    /// The world rectangle the map partitions.
    pub fn world(&self) -> Rect {
        self.world
    }

    /// The node owning position `p` — the same clamped-stripe rule as
    /// the engine's shard assignment, so out-of-world positions land on
    /// the nearest edge node rather than erroring.
    // The cast is a clamped floor: NaN and negatives collapse to 0 via
    // `max`, and the `min` below bounds the top end.
    #[allow(clippy::cast_possible_truncation)]
    pub fn node_of(&self, p: Point) -> usize {
        let f = (p.x - self.world.min_x()) / self.world.width();
        let s = (f * self.nodes as f64).floor();
        (s.max(0.0) as usize).min(self.nodes - 1)
    }

    /// The stripe of world owned by `node` (for diagnostics and docs;
    /// routing uses [`PartitionMap::node_of`]). Out-of-range nodes get
    /// the whole world.
    pub fn region_of(&self, node: usize) -> Rect {
        let w = self.world.width() / self.nodes as f64;
        let lo = self.world.min_x() + w * node as f64;
        Rect::new(lo, self.world.min_y(), lo + w, self.world.max_y()).unwrap_or(self.world)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn unit() -> Rect {
        Rect::new(0.0, 0.0, 1.0, 1.0).unwrap()
    }

    #[test]
    fn stripes_cover_and_clamp() {
        let m = PartitionMap::new(unit(), 4);
        assert_eq!(m.node_of(Point::new(0.1, 0.5)), 0);
        assert_eq!(m.node_of(Point::new(0.26, 0.5)), 1);
        assert_eq!(m.node_of(Point::new(0.99, 0.5)), 3);
        // Edge clamping: out-of-world positions map to edge nodes.
        assert_eq!(m.node_of(Point::new(-5.0, 0.5)), 0);
        assert_eq!(m.node_of(Point::new(5.0, 0.5)), 3);
        // Exactly 1.0 is clamped into the last stripe.
        assert_eq!(m.node_of(Point::new(1.0, 0.5)), 3);
    }

    #[test]
    fn single_node_owns_everything() {
        let m = PartitionMap::new(unit(), 1);
        for x in [0.0, 0.3, 0.999, 12.0] {
            assert_eq!(m.node_of(Point::new(x, 0.0)), 0);
        }
        assert_eq!(m.region_of(0), unit());
    }

    #[test]
    fn regions_match_node_of() {
        let m = PartitionMap::new(unit(), 3);
        for node in 0..3 {
            let r = m.region_of(node);
            let c = r.center();
            assert_eq!(m.node_of(c), node);
        }
    }
}
