//! # lbsp-cluster — a region-sharded multi-node anonymizer cluster
//!
//! One anonymizer node bounds the system's throughput; the paper's
//! architecture invites horizontal scale-out at the trusted tier. This
//! crate provides it: `K` independent [`lbsp_net::NetServer`] nodes
//! each own a vertical stripe of the world, and a thin [`Router`]
//! front door speaks the ordinary client wire protocol, forwarding
//! each request to the owning node over framed TCP.
//!
//! The headline guarantee is **byte-identity**: a K-node cluster
//! answers every request — cloaked updates, query candidates, standing
//! deltas, error texts — with exactly the bytes one sequential engine
//! would produce, including for users whose movement crosses partition
//! boundaries (migrated with explicit `USER_HANDOFF` frames) and for
//! standing queries whose subscribers and subjects sit on different
//! nodes. See the [`router`] module docs for the replication scheme
//! that makes this possible and the failure doctrine for dead nodes.
//!
//! Std-only like the rest of the workspace; no async runtime, no new
//! dependencies.

#![forbid(unsafe_code)]
#![warn(missing_docs)]
// The router terminates client connections — a hostile-input surface —
// so the same pedantic lints as lbsp-net are promoted to hard errors.
#![deny(clippy::cast_possible_truncation, clippy::indexing_slicing)]
#![cfg_attr(
    test,
    allow(clippy::cast_possible_truncation, clippy::indexing_slicing)
)]

pub mod partition;
pub mod router;

pub use partition::PartitionMap;
pub use router::{Router, RouterConfig, RouterReport};
