//! Property-based tests for the workload substrate: everything the
//! experiments assume about the synthetic populations must actually
//! hold for arbitrary parameters.

use lbsp_geom::{Point, Rect};
use lbsp_mobility::{PoiSet, Population, SpatialDistribution, UpdateStream};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn world() -> Rect {
    Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
}

prop_compose! {
    fn upoint()(x in 0.0f64..1.0, y in 0.0f64..1.0) -> Point {
        Point::new(x, y)
    }
}

fn distributions() -> Vec<SpatialDistribution> {
    vec![
        SpatialDistribution::Uniform,
        SpatialDistribution::three_cities(&world()),
        SpatialDistribution::Hotspot {
            center: Point::new(0.5, 0.5),
            radius: 0.1,
            hot_fraction: 0.7,
        },
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn all_distributions_sample_inside_world(seed in 0u64..1000, n in 1usize..200) {
        let mut rng = StdRng::seed_from_u64(seed);
        for d in distributions() {
            let pts = d.sample_n(&mut rng, &world(), n);
            prop_assert_eq!(pts.len(), n);
            prop_assert!(pts.iter().all(|p| world().contains_point(*p)));
        }
    }

    #[test]
    fn population_motion_respects_speed_and_world(
        seed in 0u64..500,
        n in 1usize..60,
        v_max in 0.001f64..0.2,
        dt in 0.1f64..10.0,
    ) {
        let mut pop = Population::generate(
            world(),
            n,
            &SpatialDistribution::Uniform,
            0.0,
            v_max,
            seed,
        );
        for _ in 0..5 {
            let before = pop.positions();
            let updates = pop.step_all(dt);
            for (id, after) in updates {
                prop_assert!(world().contains_point(after));
                let moved = before[id as usize].dist(after);
                prop_assert!(
                    moved <= v_max * dt + 1e-9,
                    "user {} moved {} > {}",
                    id, moved, v_max * dt
                );
            }
        }
    }

    #[test]
    fn update_streams_are_deterministic_and_complete(
        seed in 0u64..500,
        n in 1usize..40,
        ticks in 1usize..6,
    ) {
        let make = || {
            UpdateStream::new(
                Population::generate(world(), n, &SpatialDistribution::Uniform, 0.01, 0.05, seed),
                1.0,
            )
        };
        let mut a = make();
        let mut b = make();
        let ua = a.ticks(ticks);
        let ub = b.ticks(ticks);
        prop_assert_eq!(&ua, &ub, "same seed, same stream");
        prop_assert_eq!(ua.len(), n * ticks);
        // Every tick covers every user exactly once.
        for t in 0..ticks {
            let slice = &ua[t * n..(t + 1) * n];
            let mut ids: Vec<_> = slice.iter().map(|u| u.user).collect();
            ids.sort_unstable();
            ids.dedup();
            prop_assert_eq!(ids.len(), n);
        }
    }

    #[test]
    fn traces_roundtrip_for_arbitrary_streams(
        records in prop::collection::vec(
            (any::<u64>(), -1000.0f64..1000.0, -1000.0f64..1000.0, 0.0f64..1e9),
            0..200,
        ),
    ) {
        use lbsp_geom::SimTime;
        use lbsp_mobility::{decode_trace, encode_trace, LocationUpdate};
        let updates: Vec<LocationUpdate> = records
            .into_iter()
            .map(|(user, x, y, t)| LocationUpdate {
                user,
                position: Point::new(x, y),
                time: SimTime::from_secs(t),
            })
            .collect();
        let decoded = decode_trace(&encode_trace(&updates)).unwrap();
        prop_assert_eq!(decoded, updates);
    }

    #[test]
    fn trace_decoder_never_panics_on_garbage(
        bytes in prop::collection::vec(any::<u8>(), 0..256),
    ) {
        let _ = lbsp_mobility::decode_trace(&bytes);
    }

    #[test]
    fn poi_sets_are_deterministic_and_in_world(seed in 0u64..500, n in 0usize..150) {
        let a = PoiSet::generate(world(), n, &SpatialDistribution::Uniform, seed);
        let b = PoiSet::generate(world(), n, &SpatialDistribution::Uniform, seed);
        prop_assert_eq!(a.pois(), b.pois());
        prop_assert_eq!(a.len(), n);
        prop_assert!(a.pois().iter().all(|p| world().contains_point(p.pos)));
    }
}
