//! Public points of interest — the server's public data.
//!
//! The paper's public data are "stationary objects such as hospitals,
//! restaurants, gas stations, and coffee shops or moving objects such as
//! police cars" (Sec. 6.1). This module generates seeded POI datasets
//! with categories so examples can ask domain questions ("nearest gas
//! station") instead of abstract ones.

use crate::SpatialDistribution;
use lbsp_geom::{Point, Rect};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

/// Category of a public object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PoiCategory {
    /// Fuel stations (the paper's running private-query example).
    GasStation,
    /// Restaurants ("nearest Pizza restaurant").
    Restaurant,
    /// Hospitals / clinics (the paper's medical-privacy motivation).
    Hospital,
    /// Coffee shops.
    CoffeeShop,
    /// Moving public objects: police cars, on-site workers.
    PoliceCar,
}

impl PoiCategory {
    /// All categories, for round-robin generation.
    pub const ALL: [PoiCategory; 5] = [
        PoiCategory::GasStation,
        PoiCategory::Restaurant,
        PoiCategory::Hospital,
        PoiCategory::CoffeeShop,
        PoiCategory::PoliceCar,
    ];

    /// `true` for categories that move (police cars).
    pub fn is_mobile(&self) -> bool {
        matches!(self, PoiCategory::PoliceCar)
    }
}

/// One public object.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poi {
    /// Identifier, dense within a [`PoiSet`].
    pub id: u64,
    /// Location.
    pub pos: Point,
    /// Category.
    pub category: PoiCategory,
}

/// A seeded set of POIs.
#[derive(Debug, Clone, Default)]
pub struct PoiSet {
    pois: Vec<Poi>,
}

impl PoiSet {
    /// Generates `n` POIs placed by `dist`, cycling through all
    /// categories.
    pub fn generate(world: Rect, n: usize, dist: &SpatialDistribution, seed: u64) -> PoiSet {
        let mut rng = StdRng::seed_from_u64(seed);
        let pois = (0..n)
            .map(|i| Poi {
                id: i as u64,
                pos: dist.sample(&mut rng, &world),
                category: PoiCategory::ALL[i % PoiCategory::ALL.len()],
            })
            .collect();
        PoiSet { pois }
    }

    /// Generates `n` POIs of a single category.
    pub fn generate_category(
        world: Rect,
        n: usize,
        category: PoiCategory,
        dist: &SpatialDistribution,
        seed: u64,
    ) -> PoiSet {
        let mut set = PoiSet::generate(world, n, dist, seed);
        for p in &mut set.pois {
            p.category = category;
        }
        set
    }

    /// All POIs.
    #[inline]
    pub fn pois(&self) -> &[Poi] {
        &self.pois
    }

    /// Number of POIs.
    #[inline]
    pub fn len(&self) -> usize {
        self.pois.len()
    }

    /// `true` when empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.pois.is_empty()
    }

    /// POIs of one category.
    pub fn of_category(&self, c: PoiCategory) -> impl Iterator<Item = &Poi> {
        self.pois.iter().filter(move |p| p.category == c)
    }

    /// Random POI (for picking query targets in benchmarks).
    pub fn sample_one(&self, seed: u64) -> Option<&Poi> {
        if self.pois.is_empty() {
            return None;
        }
        let mut rng = StdRng::seed_from_u64(seed);
        Some(&self.pois[rng.random_range(0..self.pois.len())])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect {
        Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn generates_all_categories_in_world() {
        let s = PoiSet::generate(world(), 100, &SpatialDistribution::Uniform, 1);
        assert_eq!(s.len(), 100);
        for c in PoiCategory::ALL {
            assert!(s.of_category(c).count() >= 100 / 5);
        }
        assert!(s.pois().iter().all(|p| world().contains_point(p.pos)));
        // Dense ids.
        for (i, p) in s.pois().iter().enumerate() {
            assert_eq!(p.id, i as u64);
        }
    }

    #[test]
    fn single_category_generation() {
        let s = PoiSet::generate_category(
            world(),
            20,
            PoiCategory::GasStation,
            &SpatialDistribution::Uniform,
            2,
        );
        assert_eq!(s.of_category(PoiCategory::GasStation).count(), 20);
        assert_eq!(s.of_category(PoiCategory::Hospital).count(), 0);
    }

    #[test]
    fn mobility_flag() {
        assert!(PoiCategory::PoliceCar.is_mobile());
        assert!(!PoiCategory::GasStation.is_mobile());
    }

    #[test]
    fn sample_one_and_empty() {
        let s = PoiSet::generate(world(), 10, &SpatialDistribution::Uniform, 3);
        assert!(s.sample_one(5).is_some());
        let empty = PoiSet::default();
        assert!(empty.is_empty());
        assert!(empty.sample_one(5).is_none());
    }

    #[test]
    fn deterministic_given_seed() {
        let a = PoiSet::generate(world(), 30, &SpatialDistribution::Uniform, 9);
        let b = PoiSet::generate(world(), 30, &SpatialDistribution::Uniform, 9);
        assert_eq!(a.pois(), b.pois());
    }
}
