//! A population of moving users.

use crate::{RandomWaypoint, SpatialDistribution, UserId};
use lbsp_geom::{Point, Rect};
use rand::rngs::SmallRng;
use rand::SeedableRng;

/// Snapshot of a single user's kinematic state.
#[derive(Debug, Clone)]
pub struct UserState {
    /// The user's identifier (dense, `0..n`).
    pub id: UserId,
    walker: RandomWaypoint,
}

impl UserState {
    /// Current position.
    #[inline]
    pub fn position(&self) -> Point {
        self.walker.position()
    }
}

/// A seeded population of `n` users moving by random waypoint.
///
/// Dense ids (`0..n`) let downstream structures use vectors instead of
/// maps where it matters.
#[derive(Debug, Clone)]
pub struct Population {
    world: Rect,
    users: Vec<UserState>,
    rng: SmallRng,
}

impl Population {
    /// Creates `n` users placed by `dist`, with speeds uniform in
    /// `[v_min, v_max]` (world units per second), seeded deterministically.
    pub fn generate(
        world: Rect,
        n: usize,
        dist: &SpatialDistribution,
        v_min: f64,
        v_max: f64,
        seed: u64,
    ) -> Population {
        let mut rng = SmallRng::seed_from_u64(seed);
        let users = (0..n)
            .map(|i| {
                let start = dist.sample(&mut rng, &world);
                UserState {
                    id: i as UserId,
                    walker: RandomWaypoint::new(&mut rng, world, start, v_min, v_max),
                }
            })
            .collect();
        Population { world, users, rng }
    }

    /// The world rectangle.
    #[inline]
    pub fn world(&self) -> Rect {
        self.world
    }

    /// Number of users.
    #[inline]
    pub fn len(&self) -> usize {
        self.users.len()
    }

    /// `true` when the population is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.users.is_empty()
    }

    /// Immutable view of all users.
    #[inline]
    pub fn users(&self) -> &[UserState] {
        &self.users
    }

    /// Position of user `id`, when valid.
    pub fn position_of(&self, id: UserId) -> Option<Point> {
        self.users.get(id as usize).map(|u| u.position())
    }

    /// All current positions, indexed by user id.
    pub fn positions(&self) -> Vec<Point> {
        self.users.iter().map(|u| u.position()).collect()
    }

    /// Advances every user by `dt` seconds and returns `(id, new_pos)`
    /// for all of them — one tick of the update stream.
    pub fn step_all(&mut self, dt: f64) -> Vec<(UserId, Point)> {
        let rng = &mut self.rng;
        self.users
            .iter_mut()
            .map(|u| (u.id, u.walker.step(rng, dt)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect {
        Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn generate_places_everyone_in_world() {
        let p = Population::generate(world(), 100, &SpatialDistribution::Uniform, 0.01, 0.05, 42);
        assert_eq!(p.len(), 100);
        assert!(!p.is_empty());
        assert!(p.positions().iter().all(|pt| world().contains_point(*pt)));
        // Ids are dense.
        for (i, u) in p.users().iter().enumerate() {
            assert_eq!(u.id, i as UserId);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let a = Population::generate(world(), 50, &SpatialDistribution::Uniform, 0.01, 0.05, 7);
        let b = Population::generate(world(), 50, &SpatialDistribution::Uniform, 0.01, 0.05, 7);
        assert_eq!(a.positions(), b.positions());
        let c = Population::generate(world(), 50, &SpatialDistribution::Uniform, 0.01, 0.05, 8);
        assert_ne!(a.positions(), c.positions());
    }

    #[test]
    fn step_all_moves_users_within_speed_bound() {
        let mut p = Population::generate(world(), 30, &SpatialDistribution::Uniform, 0.02, 0.04, 3);
        let before = p.positions();
        let updates = p.step_all(1.0);
        assert_eq!(updates.len(), 30);
        for (id, new_pos) in updates {
            assert!(world().contains_point(new_pos));
            let moved = before[id as usize].dist(new_pos);
            assert!(moved <= 0.04 + 1e-9, "user {id} moved {moved}");
        }
    }

    #[test]
    fn position_of_bounds() {
        let p = Population::generate(world(), 5, &SpatialDistribution::Uniform, 0.01, 0.02, 1);
        assert!(p.position_of(4).is_some());
        assert!(p.position_of(5).is_none());
    }
}
