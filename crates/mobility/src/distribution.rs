//! Spatial distributions for generating user and object locations.

use lbsp_geom::{uniform_point_in_circle, uniform_point_in_rect, Point, Rect};
use rand::{Rng, RngExt as _};

/// How locations are spread over the world.
///
/// The leakage and QoS properties of cloaking depend heavily on local
/// density (a stadium vs a rural road — the paper's own examples for
/// `A_min` and `A_max`), so experiments run over several shapes:
#[derive(Debug, Clone)]
pub enum SpatialDistribution {
    /// Uniform over the world rectangle (the "rural" baseline).
    Uniform,
    /// A mixture of Gaussian blobs ("cities"): each sample picks a random
    /// center and adds isotropic Gaussian noise with the given sigma,
    /// clamped to the world. Weights are proportional to `centers`
    /// multiplicity.
    GaussianClusters {
        /// Cluster centers.
        centers: Vec<Point>,
        /// Standard deviation of each cluster, in world units.
        sigma: f64,
    },
    /// A dense disk ("stadium") over a uniform background: with
    /// probability `hot_fraction` a sample falls uniformly in the disk,
    /// otherwise uniformly in the world.
    Hotspot {
        /// Center of the dense disk.
        center: Point,
        /// Radius of the dense disk.
        radius: f64,
        /// Fraction of all samples that land in the disk.
        hot_fraction: f64,
    },
}

impl SpatialDistribution {
    /// Standard three-city clustered workload used by the benchmarks.
    pub fn three_cities(world: &Rect) -> SpatialDistribution {
        let w = world.width();
        let h = world.height();
        let at = |fx: f64, fy: f64| Point::new(world.min_x() + fx * w, world.min_y() + fy * h);
        SpatialDistribution::GaussianClusters {
            centers: vec![at(0.25, 0.25), at(0.7, 0.6), at(0.4, 0.85)],
            sigma: 0.05 * w.min(h),
        }
    }

    /// Draws one location inside `world`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R, world: &Rect) -> Point {
        match self {
            SpatialDistribution::Uniform => uniform_point_in_rect(rng, world),
            SpatialDistribution::GaussianClusters { centers, sigma } => {
                if centers.is_empty() {
                    return uniform_point_in_rect(rng, world);
                }
                let c = centers[rng.random_range(0..centers.len())];
                // Box-Muller keeps us off rand_distr (not in the allowed set).
                let (g1, g2) = gaussian_pair(rng);
                world.clamp_point(Point::new(c.x + sigma * g1, c.y + sigma * g2))
            }
            SpatialDistribution::Hotspot {
                center,
                radius,
                hot_fraction,
            } => {
                if rng.random_range(0.0..1.0) < *hot_fraction {
                    world.clamp_point(uniform_point_in_circle(rng, *center, *radius))
                } else {
                    uniform_point_in_rect(rng, world)
                }
            }
        }
    }

    /// Draws `n` locations.
    pub fn sample_n<R: Rng + ?Sized>(&self, rng: &mut R, world: &Rect, n: usize) -> Vec<Point> {
        (0..n).map(|_| self.sample(rng, world)).collect()
    }
}

/// One pair of independent standard Gaussians via Box–Muller.
fn gaussian_pair<R: Rng + ?Sized>(rng: &mut R) -> (f64, f64) {
    // Avoid u1 == 0 which would yield -inf.
    let u1: f64 = rng.random_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.random_range(0.0..1.0);
    let r = (-2.0 * u1.ln()).sqrt();
    let theta = std::f64::consts::TAU * u2;
    (r * theta.cos(), r * theta.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> Rect {
        Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn uniform_stays_in_world() {
        let mut rng = StdRng::seed_from_u64(1);
        let pts = SpatialDistribution::Uniform.sample_n(&mut rng, &world(), 500);
        assert_eq!(pts.len(), 500);
        assert!(pts.iter().all(|p| world().contains_point(*p)));
    }

    #[test]
    fn clusters_concentrate_mass_near_centers() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = SpatialDistribution::GaussianClusters {
            centers: vec![Point::new(0.5, 0.5)],
            sigma: 0.05,
        };
        let pts = d.sample_n(&mut rng, &world(), 2000);
        let near = pts
            .iter()
            .filter(|p| p.dist(Point::new(0.5, 0.5)) < 0.15)
            .count();
        // 3 sigma covers ~98.9% of a 2-D isotropic Gaussian.
        assert!(near as f64 / 2000.0 > 0.95, "near fraction {}", near);
        assert!(pts.iter().all(|p| world().contains_point(*p)));
    }

    #[test]
    fn empty_cluster_list_falls_back_to_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = SpatialDistribution::GaussianClusters {
            centers: vec![],
            sigma: 0.1,
        };
        let p = d.sample(&mut rng, &world());
        assert!(world().contains_point(p));
    }

    #[test]
    fn hotspot_fraction_is_respected() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = SpatialDistribution::Hotspot {
            center: Point::new(0.5, 0.5),
            radius: 0.05,
            hot_fraction: 0.8,
        };
        let pts = d.sample_n(&mut rng, &world(), 4000);
        let hot = pts
            .iter()
            .filter(|p| p.dist(Point::new(0.5, 0.5)) <= 0.05)
            .count();
        let frac = hot as f64 / 4000.0;
        // 80% forced into the disk plus a tiny uniform contribution.
        assert!((frac - 0.8).abs() < 0.05, "hot fraction {frac}");
    }

    #[test]
    fn three_cities_has_three_centers_inside_world() {
        let d = SpatialDistribution::three_cities(&world());
        match d {
            SpatialDistribution::GaussianClusters { centers, sigma } => {
                assert_eq!(centers.len(), 3);
                assert!(sigma > 0.0);
                assert!(centers.iter().all(|c| world().contains_point(*c)));
            }
            _ => panic!("expected clusters"),
        }
    }

    #[test]
    fn deterministic_under_same_seed() {
        let d = SpatialDistribution::three_cities(&world());
        let a = d.sample_n(&mut StdRng::seed_from_u64(9), &world(), 50);
        let b = d.sample_n(&mut StdRng::seed_from_u64(9), &world(), 50);
        assert_eq!(a, b);
    }
}
