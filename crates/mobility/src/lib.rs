//! Synthetic mobile-user workloads.
//!
//! The paper's setting is "large numbers of mobile users" streaming
//! location updates into the anonymizer. We have no access to real GPS
//! traces, so this crate substitutes synthetic but behaviourally faithful
//! workloads (see DESIGN.md): spatial distributions ranging from uniform
//! to heavily clustered "city" populations, a random-waypoint movement
//! model for continuous motion, POI datasets for the server's public
//! data, and reproducible update streams — everything is seeded, so every
//! experiment is deterministic.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod distribution;
mod poi;
mod population;
mod stream;
mod trace;
mod waypoint;

pub use distribution::SpatialDistribution;
pub use poi::{Poi, PoiCategory, PoiSet};
pub use population::{Population, UserState};
pub use stream::{LocationUpdate, UpdateStream};
pub use trace::{decode_trace, encode_trace, TraceError, TRACE_MAGIC};
pub use waypoint::RandomWaypoint;

/// Identifier for a mobile user.
pub type UserId = u64;
