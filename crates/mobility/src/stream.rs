//! Timestamped location-update streams.
//!
//! An [`UpdateStream`] turns a [`Population`] into the event stream the
//! location anonymizer consumes: ticks of `(time, user, position)`
//! records. Streams are the unit of replay in benchmarks — the same seed
//! always produces the same stream.

use crate::{Population, UserId};
use lbsp_geom::{Point, SimTime};

/// One location update, as sent from a mobile device to the anonymizer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LocationUpdate {
    /// When the update was produced.
    pub time: SimTime,
    /// Which user produced it.
    pub user: UserId,
    /// The exact location — visible only to the anonymizer.
    pub position: Point,
}

/// Generates ticks of location updates by stepping a population.
#[derive(Debug, Clone)]
pub struct UpdateStream {
    population: Population,
    clock: SimTime,
    dt: f64,
}

impl UpdateStream {
    /// Wraps a population; each tick advances time by `dt` seconds.
    ///
    /// # Panics
    /// Panics when `dt` is not strictly positive.
    pub fn new(population: Population, dt: f64) -> UpdateStream {
        assert!(dt > 0.0, "tick length must be positive");
        UpdateStream {
            population,
            clock: SimTime::ZERO,
            dt,
        }
    }

    /// Current simulation time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.clock
    }

    /// The wrapped population.
    #[inline]
    pub fn population(&self) -> &Population {
        &self.population
    }

    /// Produces the next tick: every user moves and reports its position.
    pub fn tick(&mut self) -> Vec<LocationUpdate> {
        self.clock = self.clock + self.dt;
        let time = self.clock;
        self.population
            .step_all(self.dt)
            .into_iter()
            .map(|(user, position)| LocationUpdate {
                time,
                user,
                position,
            })
            .collect()
    }

    /// Produces `n` ticks, concatenated.
    pub fn ticks(&mut self, n: usize) -> Vec<LocationUpdate> {
        let mut out = Vec::with_capacity(n * self.population.len());
        for _ in 0..n {
            out.extend(self.tick());
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SpatialDistribution;
    use lbsp_geom::Rect;

    fn pop(n: usize) -> Population {
        Population::generate(
            Rect::new_unchecked(0.0, 0.0, 1.0, 1.0),
            n,
            &SpatialDistribution::Uniform,
            0.01,
            0.05,
            11,
        )
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_dt_panics() {
        UpdateStream::new(pop(1), 0.0);
    }

    #[test]
    fn tick_reports_every_user_with_advancing_clock() {
        let mut s = UpdateStream::new(pop(20), 2.0);
        assert_eq!(s.now(), SimTime::ZERO);
        let t1 = s.tick();
        assert_eq!(t1.len(), 20);
        assert_eq!(s.now().as_secs(), 2.0);
        assert!(t1.iter().all(|u| u.time.as_secs() == 2.0));
        let t2 = s.tick();
        assert!(t2.iter().all(|u| u.time.as_secs() == 4.0));
        // Each user appears exactly once per tick.
        let mut ids: Vec<_> = t1.iter().map(|u| u.user).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 20);
    }

    #[test]
    fn ticks_concatenates() {
        let mut s = UpdateStream::new(pop(5), 1.0);
        let all = s.ticks(3);
        assert_eq!(all.len(), 15);
        assert_eq!(s.now().as_secs(), 3.0);
    }

    #[test]
    fn replay_is_deterministic() {
        let mut a = UpdateStream::new(pop(10), 1.0);
        let mut b = UpdateStream::new(pop(10), 1.0);
        assert_eq!(a.ticks(5), b.ticks(5));
    }
}
