//! Random-waypoint movement model.
//!
//! The classic mobility model for evaluating location-based systems: each
//! user repeatedly picks a destination uniformly in the world, travels to
//! it in a straight line at a speed drawn from `[v_min, v_max]`, then
//! immediately picks the next destination. Simple, standard, and enough
//! to exercise the incremental-cloaking path (Sec. 5.3), whose benefit
//! depends precisely on update locality — which this model controls via
//! speed.

use lbsp_geom::{uniform_point_in_rect, Point, Rect};
use rand::{Rng, RngExt as _};

/// Per-user random-waypoint state.
#[derive(Debug, Clone)]
pub struct RandomWaypoint {
    world: Rect,
    /// Current position.
    pos: Point,
    /// Current destination.
    target: Point,
    /// Current speed, world units per second.
    speed: f64,
    v_min: f64,
    v_max: f64,
}

impl RandomWaypoint {
    /// Creates a walker at `start` with speeds drawn from
    /// `[v_min, v_max]`.
    ///
    /// # Panics
    /// Panics when `v_min > v_max`, a speed is negative, or `v_max == 0`
    /// (a walker that can never move is a configuration error).
    pub fn new<R: Rng + ?Sized>(
        rng: &mut R,
        world: Rect,
        start: Point,
        v_min: f64,
        v_max: f64,
    ) -> RandomWaypoint {
        assert!(
            v_min >= 0.0 && v_max > 0.0 && v_min <= v_max,
            "need 0 <= v_min <= v_max, v_max > 0"
        );
        let mut w = RandomWaypoint {
            world,
            pos: world.clamp_point(start),
            target: start,
            speed: 0.0,
            v_min,
            v_max,
        };
        w.pick_leg(rng);
        w
    }

    fn pick_leg<R: Rng + ?Sized>(&mut self, rng: &mut R) {
        self.target = uniform_point_in_rect(rng, &self.world);
        self.speed = if self.v_min < self.v_max {
            rng.random_range(self.v_min..=self.v_max)
        } else {
            self.v_max
        };
    }

    /// Current position.
    #[inline]
    pub fn position(&self) -> Point {
        self.pos
    }

    /// Current destination.
    #[inline]
    pub fn target(&self) -> Point {
        self.target
    }

    /// Advances the walker by `dt` seconds, possibly across several legs,
    /// and returns the new position.
    pub fn step<R: Rng + ?Sized>(&mut self, rng: &mut R, dt: f64) -> Point {
        let mut remaining = dt.max(0.0);
        // Bounded leg count per step keeps adversarial dt finite.
        for _ in 0..64 {
            if remaining <= 0.0 {
                break;
            }
            let to_target = self.pos.dist(self.target);
            let travel = self.speed * remaining;
            if travel < to_target || to_target == 0.0 && travel == 0.0 {
                let t = if to_target > 0.0 {
                    travel / to_target
                } else {
                    1.0
                };
                self.pos = self.pos.lerp(self.target, t);
                remaining = 0.0;
            } else {
                // Reach the target and start a new leg with leftover time.
                remaining -= if self.speed > 0.0 {
                    to_target / self.speed
                } else {
                    remaining
                };
                self.pos = self.target;
                self.pick_leg(rng);
            }
        }
        self.pos
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn world() -> Rect {
        Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    #[should_panic(expected = "v_min <= v_max")]
    fn invalid_speed_range_panics() {
        let mut rng = StdRng::seed_from_u64(1);
        RandomWaypoint::new(&mut rng, world(), Point::ORIGIN, 2.0, 1.0);
    }

    #[test]
    fn stays_inside_world() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut w = RandomWaypoint::new(&mut rng, world(), Point::new(0.5, 0.5), 0.01, 0.1);
        for _ in 0..1000 {
            let p = w.step(&mut rng, 1.0);
            assert!(world().contains_point(p));
        }
    }

    #[test]
    fn moves_at_most_speed_times_dt() {
        let mut rng = StdRng::seed_from_u64(3);
        let v_max = 0.05;
        let mut w = RandomWaypoint::new(&mut rng, world(), Point::new(0.5, 0.5), 0.01, v_max);
        for _ in 0..200 {
            let before = w.position();
            let after = w.step(&mut rng, 1.0);
            // Crossing a waypoint can bend the path, but total displacement
            // still can't exceed v_max * dt (triangle inequality).
            assert!(before.dist(after) <= v_max * 1.0 + 1e-9);
        }
    }

    #[test]
    fn eventually_reaches_targets() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut w = RandomWaypoint::new(&mut rng, world(), Point::new(0.0, 0.0), 0.1, 0.2);
        let first_target = w.target();
        // Step far enough to guarantee passing the first target.
        for _ in 0..200 {
            w.step(&mut rng, 0.5);
        }
        assert_ne!(w.target(), first_target, "walker picked new legs");
    }

    #[test]
    fn zero_dt_is_identity() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut w = RandomWaypoint::new(&mut rng, world(), Point::new(0.3, 0.3), 0.01, 0.1);
        let before = w.position();
        assert_eq!(w.step(&mut rng, 0.0), before);
        assert_eq!(w.step(&mut rng, -1.0), before, "negative dt clamps");
    }

    #[test]
    fn start_outside_world_is_clamped() {
        let mut rng = StdRng::seed_from_u64(6);
        let w = RandomWaypoint::new(&mut rng, world(), Point::new(5.0, -3.0), 0.01, 0.1);
        assert!(world().contains_point(w.position()));
    }
}
