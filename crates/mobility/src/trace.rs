//! Binary trace recording and replay.
//!
//! Experiments become portable when the update stream itself is an
//! artifact: record a seeded run once, ship the trace, and replay it
//! bit-identically anywhere — no dependence on RNG implementation
//! details across versions. The format is a flat little-endian record
//! stream with a magic header, the moral equivalent of the GPS trace
//! files the paper's real deployment would consume.
//!
//! Layout: `b"LBSPTRC1"`, then `u64` record count, then per record
//! `u64 user`, `f64 x`, `f64 y`, `f64 time_secs`.

use crate::{LocationUpdate, UserId};
use lbsp_geom::{Point, SimTime};

/// Magic bytes identifying a trace (version 1).
pub const TRACE_MAGIC: &[u8; 8] = b"LBSPTRC1";
const RECORD_LEN: usize = 8 + 8 + 8 + 8;

/// Serializes a stream of updates into the trace format.
pub fn encode_trace(updates: &[LocationUpdate]) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + updates.len() * RECORD_LEN);
    out.extend_from_slice(TRACE_MAGIC);
    out.extend_from_slice(&(updates.len() as u64).to_le_bytes());
    for u in updates {
        out.extend_from_slice(&u.user.to_le_bytes());
        out.extend_from_slice(&u.position.x.to_le_bytes());
        out.extend_from_slice(&u.position.y.to_le_bytes());
        out.extend_from_slice(&u.time.as_secs().to_le_bytes());
    }
    out
}

/// Errors from trace decoding.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceError {
    /// The buffer does not start with [`TRACE_MAGIC`].
    BadMagic,
    /// The buffer is shorter than its header promises.
    Truncated {
        /// Records the header declared.
        expected: u64,
        /// Bytes actually available for records.
        available: usize,
    },
    /// A record carried a non-finite coordinate or time.
    CorruptRecord(usize),
}

impl std::fmt::Display for TraceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceError::BadMagic => write!(f, "not a LBSP trace (bad magic)"),
            TraceError::Truncated {
                expected,
                available,
            } => {
                write!(
                    f,
                    "trace truncated: {expected} records declared, {available} bytes left"
                )
            }
            TraceError::CorruptRecord(i) => write!(f, "corrupt record {i}"),
        }
    }
}

impl std::error::Error for TraceError {}

/// Deserializes a trace, validating structure and record sanity.
pub fn decode_trace(buf: &[u8]) -> Result<Vec<LocationUpdate>, TraceError> {
    if buf.len() < 16 || &buf[..8] != TRACE_MAGIC {
        return Err(TraceError::BadMagic);
    }
    let count = u64::from_le_bytes(buf[8..16].try_into().expect("8 bytes"));
    let body = &buf[16..];
    // Checked multiply: a hostile header can claim u64::MAX records.
    let needed = count.checked_mul(RECORD_LEN as u64);
    if needed.is_none_or(|n| (body.len() as u64) < n) {
        return Err(TraceError::Truncated {
            expected: count,
            available: body.len(),
        });
    }
    let mut out = Vec::with_capacity(count as usize);
    for i in 0..count as usize {
        let r = &body[i * RECORD_LEN..(i + 1) * RECORD_LEN];
        let user = UserId::from_le_bytes(r[0..8].try_into().expect("8 bytes"));
        let x = f64::from_le_bytes(r[8..16].try_into().expect("8 bytes"));
        let y = f64::from_le_bytes(r[16..24].try_into().expect("8 bytes"));
        let t = f64::from_le_bytes(r[24..32].try_into().expect("8 bytes"));
        if !x.is_finite() || !y.is_finite() || !t.is_finite() || t < 0.0 {
            return Err(TraceError::CorruptRecord(i));
        }
        out.push(LocationUpdate {
            user,
            position: Point::new(x, y),
            time: SimTime::from_secs(t),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Population, SpatialDistribution, UpdateStream};
    use lbsp_geom::Rect;

    fn sample_updates() -> Vec<LocationUpdate> {
        let pop = Population::generate(
            Rect::new_unchecked(0.0, 0.0, 1.0, 1.0),
            20,
            &SpatialDistribution::Uniform,
            0.01,
            0.05,
            5,
        );
        UpdateStream::new(pop, 1.0).ticks(4)
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let updates = sample_updates();
        let bytes = encode_trace(&updates);
        assert_eq!(bytes.len(), 16 + updates.len() * 32);
        let decoded = decode_trace(&bytes).unwrap();
        assert_eq!(decoded, updates);
    }

    #[test]
    fn empty_trace_roundtrips() {
        let bytes = encode_trace(&[]);
        assert_eq!(decode_trace(&bytes).unwrap(), Vec::new());
    }

    #[test]
    fn bad_magic_rejected() {
        let mut bytes = encode_trace(&sample_updates());
        bytes[0] = b'X';
        assert_eq!(decode_trace(&bytes), Err(TraceError::BadMagic));
        assert_eq!(decode_trace(&[]), Err(TraceError::BadMagic));
    }

    #[test]
    fn truncation_rejected() {
        let bytes = encode_trace(&sample_updates());
        let cut = &bytes[..bytes.len() - 5];
        assert!(matches!(
            decode_trace(cut),
            Err(TraceError::Truncated { .. })
        ));
    }

    #[test]
    fn corrupt_coordinates_rejected() {
        let updates = sample_updates();
        let mut bytes = encode_trace(&updates);
        // Overwrite the x of record 2 with NaN.
        let off = 16 + 2 * 32 + 8;
        bytes[off..off + 8].copy_from_slice(&f64::NAN.to_le_bytes());
        assert_eq!(decode_trace(&bytes), Err(TraceError::CorruptRecord(2)));
    }

    #[test]
    fn replay_drives_identical_state() {
        // Recording a stream and replaying it must reproduce the exact
        // final position of every user.
        use std::collections::HashMap;
        let updates = sample_updates();
        let replayed = decode_trace(&encode_trace(&updates)).unwrap();
        let mut live: HashMap<UserId, Point> = HashMap::new();
        let mut replay: HashMap<UserId, Point> = HashMap::new();
        for u in &updates {
            live.insert(u.user, u.position);
        }
        for u in &replayed {
            replay.insert(u.user, u.position);
        }
        assert_eq!(live, replay);
    }
}
