//! Shared execution of cloaking work (Sec. 5.3, approach 2).
//!
//! "Since both the server and the anonymizer do similar functionalities
//! for different users, many of the required procedures can be shared
//! among different users. Our plan is to identify such shared procedures
//! and execute them only once for all users."
//!
//! For space-dependent cloaks the shareable procedure is obvious: two
//! users in the same grid/pyramid cell with the same requirement receive
//! the *same* cloaked region, so one computation serves the whole group.
//! [`SharedExecutor`] groups a batch of cloak requests by a
//! caller-provided sharing key (typically the user's cell), computes one
//! representative cloak per group, and fans the result out. A parallel
//! variant shards groups across threads with `std::thread::scope`.
//!
//! Sharing is only *sound* for algorithms whose output is position-
//! independent within the sharing key — exactly the space-dependent
//! family. Data-dependent cloaks (naive/MBR) must not be batched this
//! way; the executor is generic but the system layer only applies it to
//! grid and quadtree cloaks.

use crate::cloak::{CloakRequirement, CloakedRegion, CloakingAlgorithm};
use crate::{CloakError, UserId};
use std::collections::HashMap;

/// A batch request: one user, one requirement.
#[derive(Debug, Clone, Copy)]
pub struct CloakRequest {
    /// The user to cloak.
    pub user: UserId,
    /// The requirement in force.
    pub requirement: CloakRequirement,
}

/// Groups requests that provably share one cloak computation.
pub struct SharedExecutor;

/// A requirement key with total equality (bit patterns), so requirements
/// can participate in hash-map grouping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
struct ReqKey {
    k: u32,
    a_min_bits: u64,
    a_max_bits: u64,
}

impl From<&CloakRequirement> for ReqKey {
    fn from(r: &CloakRequirement) -> Self {
        ReqKey {
            k: r.k,
            a_min_bits: r.a_min.to_bits(),
            a_max_bits: r.a_max.to_bits(),
        }
    }
}

impl SharedExecutor {
    /// Cloaks a batch sequentially, computing one cloak per
    /// `(share_key(user), requirement)` group.
    ///
    /// `share_key` must return equal keys only for users whose cloak is
    /// guaranteed identical (same cell for space-dependent algorithms).
    /// Returns results in request order. Per-request errors (unknown
    /// users) are returned in-place.
    pub fn cloak_batch<A, K, F>(
        algo: &A,
        requests: &[CloakRequest],
        share_key: F,
    ) -> Vec<Result<CloakedRegion, CloakError>>
    where
        A: CloakingAlgorithm,
        K: std::hash::Hash + Eq + Copy,
        F: Fn(UserId) -> Option<K>,
    {
        let mut cache: HashMap<(K, ReqKey), Result<CloakedRegion, CloakError>> = HashMap::new();
        requests
            .iter()
            .map(|req| {
                let Some(key) = share_key(req.user) else {
                    return Err(CloakError::UnknownUser(req.user));
                };
                cache
                    .entry((key, ReqKey::from(&req.requirement)))
                    .or_insert_with(|| algo.cloak(req.user, &req.requirement))
                    .clone()
            })
            .collect()
    }

    /// Parallel variant: groups first, then shards group computations
    /// across `threads` OS threads. Worth it for large batches with many
    /// distinct groups; the sequential variant wins on small batches.
    pub fn cloak_batch_parallel<A, K, F>(
        algo: &A,
        requests: &[CloakRequest],
        share_key: F,
        threads: usize,
    ) -> Vec<Result<CloakedRegion, CloakError>>
    where
        A: CloakingAlgorithm,
        K: std::hash::Hash + Eq + Copy + Send + Sync,
        F: Fn(UserId) -> Option<K> + Sync,
    {
        let threads = threads.max(1);
        // Pass 1: assign each request to a group; remember one
        // representative user per group.
        let mut group_of: Vec<Option<usize>> = Vec::with_capacity(requests.len());
        let mut groups: Vec<(UserId, CloakRequirement)> = Vec::new();
        let mut index: HashMap<(K, ReqKey), usize> = HashMap::new();
        for req in requests {
            match share_key(req.user) {
                None => group_of.push(None),
                Some(key) => {
                    let gid = *index
                        .entry((key, ReqKey::from(&req.requirement)))
                        .or_insert_with(|| {
                            groups.push((req.user, req.requirement));
                            groups.len() - 1
                        });
                    group_of.push(Some(gid));
                }
            }
        }
        // Pass 2: compute one cloak per group, in parallel shards.
        let mut results: Vec<Option<Result<CloakedRegion, CloakError>>> = vec![None; groups.len()];
        let chunk = groups.len().div_ceil(threads).max(1);
        std::thread::scope(|s| {
            for (group_chunk, result_chunk) in groups.chunks(chunk).zip(results.chunks_mut(chunk)) {
                s.spawn(move || {
                    for ((user, req), slot) in group_chunk.iter().zip(result_chunk) {
                        *slot = Some(algo.cloak(*user, req));
                    }
                });
            }
        });
        // Pass 3: fan out.
        requests
            .iter()
            .zip(group_of)
            .map(|(req, gid)| match gid {
                None => Err(CloakError::UnknownUser(req.user)),
                Some(g) => results[g].clone().expect("every group computed"),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GridCloak, QuadCloak};
    use lbsp_geom::{Point, Rect};

    fn world() -> Rect {
        Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
    }

    fn seeded_grid() -> GridCloak {
        let mut g = GridCloak::new(world(), 8);
        for i in 0..100u64 {
            let x = 0.05 + 0.1 * (i % 10) as f64;
            let y = 0.05 + 0.1 * (i / 10) as f64;
            g.upsert(i, Point::new(x, y));
        }
        g
    }

    fn requests(k: u32) -> Vec<CloakRequest> {
        (0..100u64)
            .map(|user| CloakRequest {
                user,
                requirement: CloakRequirement::k_only(k),
            })
            .collect()
    }

    /// Sharing by pyramid/grid cell: same-cell users share a cloak.
    fn cell_key(algo: &GridCloak) -> impl Fn(UserId) -> Option<(u32, u32)> + Sync + '_ {
        move |id| {
            let p = algo.location(id)?;
            // 8x8 grid cells.
            let ix = (p.x * 8.0).floor().min(7.0) as u32;
            let iy = (p.y * 8.0).floor().min(7.0) as u32;
            Some((ix, iy))
        }
    }

    #[test]
    fn batch_matches_individual_cloaks() {
        let algo = seeded_grid();
        let reqs = requests(10);
        let batch = SharedExecutor::cloak_batch(&algo, &reqs, cell_key(&algo));
        for (req, got) in reqs.iter().zip(&batch) {
            let individual = algo.cloak(req.user, &req.requirement).unwrap();
            assert_eq!(
                got.as_ref().unwrap().region,
                individual.region,
                "user {}",
                req.user
            );
        }
    }

    #[test]
    fn parallel_matches_sequential() {
        let algo = seeded_grid();
        let reqs = requests(10);
        let seq = SharedExecutor::cloak_batch(&algo, &reqs, cell_key(&algo));
        for threads in [1usize, 2, 4] {
            let par = SharedExecutor::cloak_batch_parallel(&algo, &reqs, cell_key(&algo), threads);
            assert_eq!(seq.len(), par.len());
            for (a, b) in seq.iter().zip(&par) {
                assert_eq!(a.as_ref().unwrap().region, b.as_ref().unwrap().region);
            }
        }
    }

    #[test]
    fn unknown_users_error_in_place() {
        let algo = seeded_grid();
        let reqs = vec![
            CloakRequest {
                user: 5,
                requirement: CloakRequirement::k_only(5),
            },
            CloakRequest {
                user: 999,
                requirement: CloakRequirement::k_only(5),
            },
        ];
        let out = SharedExecutor::cloak_batch(&algo, &reqs, cell_key(&algo));
        assert!(out[0].is_ok());
        assert_eq!(out[1], Err(CloakError::UnknownUser(999)));
        let out = SharedExecutor::cloak_batch_parallel(&algo, &reqs, cell_key(&algo), 2);
        assert!(out[0].is_ok());
        assert_eq!(out[1], Err(CloakError::UnknownUser(999)));
    }

    #[test]
    fn sharing_reduces_cloak_computations() {
        // Count actual cloak() calls via a spy wrapper.
        use std::sync::atomic::{AtomicUsize, Ordering};
        struct Spy<'a> {
            inner: &'a QuadCloak,
            calls: AtomicUsize,
        }
        impl CloakingAlgorithm for Spy<'_> {
            fn name(&self) -> &'static str {
                "spy"
            }
            fn world(&self) -> Rect {
                self.inner.world()
            }
            fn upsert(&mut self, _: UserId, _: Point) {
                unreachable!()
            }
            fn remove(&mut self, _: UserId) -> bool {
                unreachable!()
            }
            fn location(&self, id: UserId) -> Option<Point> {
                self.inner.location(id)
            }
            fn population(&self) -> usize {
                self.inner.population()
            }
            fn count_in_region(&self, r: &Rect) -> usize {
                self.inner.count_in_region(r)
            }
            fn cloak(
                &self,
                id: UserId,
                req: &CloakRequirement,
            ) -> Result<CloakedRegion, CloakError> {
                self.calls.fetch_add(1, Ordering::Relaxed);
                self.inner.cloak(id, req)
            }
        }
        let mut quad = QuadCloak::new(world(), 3);
        // 50 users all in one leaf cell.
        for i in 0..50u64 {
            quad.upsert(i, Point::new(0.51 + 0.001 * (i % 10) as f64, 0.51));
        }
        let spy = Spy {
            inner: &quad,
            calls: AtomicUsize::new(0),
        };
        let reqs: Vec<_> = (0..50u64)
            .map(|user| CloakRequest {
                user,
                requirement: CloakRequirement::k_only(10),
            })
            .collect();
        let leaf_key = |id: UserId| {
            quad.location(id)
                .map(|p| ((p.x * 8.0).floor() as u32, (p.y * 8.0).floor() as u32))
        };
        let out = SharedExecutor::cloak_batch(&spy, &reqs, leaf_key);
        assert!(out.iter().all(|r| r.is_ok()));
        assert_eq!(
            spy.calls.load(Ordering::Relaxed),
            1,
            "one computation for 50 users"
        );
    }
}
