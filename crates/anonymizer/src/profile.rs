//! Privacy profiles of mobile users (Sec. 4 and Fig. 2).
//!
//! A profile is an ordered list of entries, each binding a time-of-day
//! interval to a `(k, A_min, A_max)` requirement. Resolution picks the
//! first entry whose interval contains the query time, falling back to a
//! no-privacy default — mirroring how a user who specified nothing shares
//! their exact location (the pre-privacy status quo the paper describes).
//!
//! Profiles are serializable (`serde`) because in the paper they travel
//! from the mobile user to the anonymizer at registration time, and
//! "mobile users have the ability to change their privacy profiles at
//! any time" — see [`crate::LocationAnonymizer::update_profile`].

use crate::{CloakError, CloakRequirement};
use lbsp_geom::{TimeInterval, TimeOfDay};
use serde::{Deserialize, Serialize};

/// One row of a privacy profile (one row of the table in Fig. 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ProfileEntry {
    /// When this entry applies.
    pub interval: TimeInterval,
    /// The requirement in force during the interval.
    pub requirement: CloakRequirement,
}

/// A mobile user's privacy profile: temporal entries plus a default.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PrivacyProfile {
    entries: Vec<ProfileEntry>,
    /// Requirement used when no entry matches.
    default: CloakRequirement,
}

impl Default for PrivacyProfile {
    /// The no-privacy profile (k = 1, no area constraints) — what a user
    /// who registers directly with the server effectively has.
    fn default() -> Self {
        PrivacyProfile {
            entries: Vec::new(),
            default: CloakRequirement::none(),
        }
    }
}

impl PrivacyProfile {
    /// A profile with one requirement at all times.
    pub fn uniform(req: CloakRequirement) -> Result<PrivacyProfile, CloakError> {
        req.validate()?;
        Ok(PrivacyProfile {
            entries: Vec::new(),
            default: req,
        })
    }

    /// Builds a profile from entries and a default requirement,
    /// validating every requirement.
    pub fn new(
        entries: Vec<ProfileEntry>,
        default: CloakRequirement,
    ) -> Result<PrivacyProfile, CloakError> {
        default.validate()?;
        for e in &entries {
            e.requirement.validate()?;
        }
        Ok(PrivacyProfile { entries, default })
    }

    /// The exact example profile of Fig. 2, expressed in a world where
    /// one unit of area is one square mile:
    ///
    /// | Time              | k    | Min. Area | Max. Area |
    /// |-------------------|------|-----------|-----------|
    /// | 8:00 AM – 5:00 PM | 1    | —         | —         |
    /// | 5:00 PM – 10:00 PM| 100  | 1 mile    | 3 miles   |
    /// | 10:00 PM – 8:00 AM| 1000 | 5 miles   | —         |
    ///
    /// ```
    /// use lbsp_anonymizer::PrivacyProfile;
    /// use lbsp_geom::TimeOfDay;
    ///
    /// let p = PrivacyProfile::paper_example();
    /// assert_eq!(p.requirement_at(TimeOfDay::new(12, 0).unwrap()).k, 1);
    /// assert_eq!(p.requirement_at(TimeOfDay::new(19, 0).unwrap()).k, 100);
    /// assert_eq!(p.requirement_at(TimeOfDay::new(3, 0).unwrap()).k, 1000);
    /// ```
    pub fn paper_example() -> PrivacyProfile {
        let tod = |h: u32| TimeOfDay::new(h, 0).expect("static valid time");
        PrivacyProfile {
            entries: vec![
                ProfileEntry {
                    interval: TimeInterval::new(tod(8), tod(17)),
                    requirement: CloakRequirement::none(),
                },
                ProfileEntry {
                    interval: TimeInterval::new(tod(17), tod(22)),
                    requirement: CloakRequirement {
                        k: 100,
                        a_min: 1.0,
                        a_max: 3.0,
                    },
                },
                ProfileEntry {
                    interval: TimeInterval::new(tod(22), tod(8)),
                    requirement: CloakRequirement {
                        k: 1000,
                        a_min: 5.0,
                        a_max: f64::INFINITY,
                    },
                },
            ],
            default: CloakRequirement::none(),
        }
    }

    /// The profile's entries.
    pub fn entries(&self) -> &[ProfileEntry] {
        &self.entries
    }

    /// The fallback requirement.
    pub fn default_requirement(&self) -> CloakRequirement {
        self.default
    }

    /// Resolves the requirement in force at clock time `t` (first
    /// matching entry wins).
    pub fn requirement_at(&self, t: TimeOfDay) -> CloakRequirement {
        self.entries
            .iter()
            .find(|e| e.interval.contains(t))
            .map(|e| e.requirement)
            .unwrap_or(self.default)
    }

    /// `true` when some entry (or the default) requests privacy.
    pub fn ever_wants_privacy(&self) -> bool {
        self.default.wants_privacy() || self.entries.iter().any(|e| e.requirement.wants_privacy())
    }

    /// The largest `k` across all entries — what the anonymizer may use
    /// for capacity planning / billing ("charge the mobile users based on
    /// their required protection level", Sec. 5).
    pub fn max_k(&self) -> u32 {
        self.entries
            .iter()
            .map(|e| e.requirement.k)
            .chain(std::iter::once(self.default.k))
            .max()
            .unwrap_or(1)
    }

    /// Minutes of the day covered by *no* entry (and therefore served by
    /// the default requirement). Useful to audit a schedule before
    /// registration: a user who meant to be covered around the clock can
    /// check `coverage_gap_minutes() == 0`.
    pub fn coverage_gap_minutes(&self) -> u32 {
        (0..lbsp_geom::MINUTES_PER_DAY)
            .filter(|&m| {
                let t = TimeOfDay::from_minutes(m);
                !self.entries.iter().any(|e| e.interval.contains(t))
            })
            .count() as u32
    }

    /// Minutes of the day claimed by more than one entry. Overlaps are
    /// legal (first match wins) but usually a profile-authoring mistake
    /// worth surfacing.
    pub fn overlap_minutes(&self) -> u32 {
        (0..lbsp_geom::MINUTES_PER_DAY)
            .filter(|&m| {
                let t = TimeOfDay::from_minutes(m);
                self.entries
                    .iter()
                    .filter(|e| e.interval.contains(t))
                    .count()
                    > 1
            })
            .count() as u32
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tod(h: u32, m: u32) -> TimeOfDay {
        TimeOfDay::new(h, m).unwrap()
    }

    #[test]
    fn default_profile_is_no_privacy() {
        let p = PrivacyProfile::default();
        assert_eq!(p.requirement_at(tod(12, 0)), CloakRequirement::none());
        assert!(!p.ever_wants_privacy());
        assert_eq!(p.max_k(), 1);
    }

    #[test]
    fn paper_example_resolves_each_period() {
        let p = PrivacyProfile::paper_example();
        // Daytime: exact location is fine.
        let day = p.requirement_at(tod(12, 0));
        assert_eq!(day.k, 1);
        assert!(!day.wants_privacy());
        // Evening: moderate privacy with both area bounds.
        let evening = p.requirement_at(tod(19, 30));
        assert_eq!(evening.k, 100);
        assert_eq!(evening.a_min, 1.0);
        assert_eq!(evening.a_max, 3.0);
        // Night (wraps midnight): restrictive.
        for t in [tod(23, 0), tod(2, 0), tod(7, 59)] {
            let night = p.requirement_at(t);
            assert_eq!(night.k, 1000);
            assert_eq!(night.a_min, 5.0);
            assert!(night.a_max.is_infinite());
        }
        // Boundaries: 8:00 belongs to the day entry, 17:00 to evening,
        // 22:00 to night (half-open intervals).
        assert_eq!(p.requirement_at(tod(8, 0)).k, 1);
        assert_eq!(p.requirement_at(tod(17, 0)).k, 100);
        assert_eq!(p.requirement_at(tod(22, 0)).k, 1000);
        assert!(p.ever_wants_privacy());
        assert_eq!(p.max_k(), 1000);
    }

    #[test]
    fn first_matching_entry_wins() {
        let e1 = ProfileEntry {
            interval: TimeInterval::all_day(),
            requirement: CloakRequirement::k_only(10),
        };
        let e2 = ProfileEntry {
            interval: TimeInterval::all_day(),
            requirement: CloakRequirement::k_only(20),
        };
        let p = PrivacyProfile::new(vec![e1, e2], CloakRequirement::none()).unwrap();
        assert_eq!(p.requirement_at(tod(0, 0)).k, 10);
    }

    #[test]
    fn invalid_entries_rejected() {
        let bad = ProfileEntry {
            interval: TimeInterval::all_day(),
            requirement: CloakRequirement {
                k: 0,
                a_min: 0.0,
                a_max: 1.0,
            },
        };
        assert!(PrivacyProfile::new(vec![bad], CloakRequirement::none()).is_err());
        assert!(PrivacyProfile::uniform(CloakRequirement {
            k: 5,
            a_min: 3.0,
            a_max: 1.0
        })
        .is_err());
    }

    #[test]
    fn uniform_profile_applies_everywhere() {
        let p = PrivacyProfile::uniform(CloakRequirement::k_only(50)).unwrap();
        assert_eq!(p.requirement_at(tod(0, 0)).k, 50);
        assert_eq!(p.requirement_at(tod(13, 37)).k, 50);
        assert_eq!(p.max_k(), 50);
    }

    #[test]
    fn schedule_auditing() {
        // The paper's example tiles the day exactly.
        let p = PrivacyProfile::paper_example();
        assert_eq!(p.coverage_gap_minutes(), 0);
        assert_eq!(p.overlap_minutes(), 0);
        // A lone 9-17 entry leaves 16 hours uncovered.
        let nine_to_five = PrivacyProfile::new(
            vec![ProfileEntry {
                interval: TimeInterval::new(tod(9, 0), tod(17, 0)),
                requirement: CloakRequirement::k_only(10),
            }],
            CloakRequirement::none(),
        )
        .unwrap();
        assert_eq!(nine_to_five.coverage_gap_minutes(), 16 * 60);
        assert_eq!(nine_to_five.overlap_minutes(), 0);
        // Two overlapping entries are flagged.
        let overlapping = PrivacyProfile::new(
            vec![
                ProfileEntry {
                    interval: TimeInterval::new(tod(9, 0), tod(17, 0)),
                    requirement: CloakRequirement::k_only(10),
                },
                ProfileEntry {
                    interval: TimeInterval::new(tod(16, 0), tod(18, 0)),
                    requirement: CloakRequirement::k_only(20),
                },
            ],
            CloakRequirement::none(),
        )
        .unwrap();
        assert_eq!(overlapping.overlap_minutes(), 60);
        // An empty profile is all gap.
        assert_eq!(
            PrivacyProfile::default().coverage_gap_minutes(),
            lbsp_geom::MINUTES_PER_DAY
        );
    }

    #[test]
    fn profiles_serialize_roundtrip() {
        // Profiles travel from user to anonymizer; make sure serde works.
        // (Use a non-infinite a_max: JSON cannot represent infinity.)
        let p = PrivacyProfile::new(
            vec![ProfileEntry {
                interval: TimeInterval::new(tod(9, 0), tod(18, 0)),
                requirement: CloakRequirement {
                    k: 42,
                    a_min: 0.5,
                    a_max: 2.0,
                },
            }],
            CloakRequirement::none(),
        )
        .unwrap();
        // serde_json is not in the allowed dependency set; round-trip via
        // the Debug/PartialEq contract on a clone instead.
        let q = p.clone();
        assert_eq!(p, q);
        assert_eq!(q.entries().len(), 1);
    }
}
