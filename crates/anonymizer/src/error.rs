//! Error type for the anonymizer.

use crate::UserId;
use std::fmt;

/// Errors produced by cloaking and the anonymizer service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloakError {
    /// The user id is not registered / tracked.
    UnknownUser(UserId),
    /// The requirement is internally inconsistent.
    InvalidRequirement(&'static str),
    /// A profile failed validation.
    InvalidProfile(&'static str),
}

impl CloakError {
    /// Stable index of this failure kind, used by the observability
    /// registry's cloak-failure counters (`lbsp-core::obs` keeps the
    /// matching label list in `CLOAK_FAILURE_KINDS`, same order).
    pub fn kind_index(&self) -> usize {
        match self {
            CloakError::UnknownUser(_) => 0,
            CloakError::InvalidRequirement(_) => 1,
            CloakError::InvalidProfile(_) => 2,
        }
    }

    /// Stable snake_case label of this failure kind.
    pub fn kind_name(&self) -> &'static str {
        match self {
            CloakError::UnknownUser(_) => "unknown_user",
            CloakError::InvalidRequirement(_) => "invalid_requirement",
            CloakError::InvalidProfile(_) => "invalid_profile",
        }
    }
}

impl fmt::Display for CloakError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloakError::UnknownUser(id) => write!(f, "unknown user {id}"),
            CloakError::InvalidRequirement(msg) => {
                write!(f, "invalid cloak requirement: {msg}")
            }
            CloakError::InvalidProfile(msg) => write!(f, "invalid privacy profile: {msg}"),
        }
    }
}

impl std::error::Error for CloakError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_labels_are_stable() {
        assert_eq!(CloakError::UnknownUser(3).kind_index(), 0);
        assert_eq!(CloakError::UnknownUser(3).kind_name(), "unknown_user");
        assert_eq!(CloakError::InvalidRequirement("x").kind_index(), 1);
        assert_eq!(CloakError::InvalidProfile("x").kind_index(), 2);
        assert_eq!(
            CloakError::InvalidProfile("x").kind_name(),
            "invalid_profile"
        );
    }

    #[test]
    fn display() {
        assert_eq!(CloakError::UnknownUser(3).to_string(), "unknown user 3");
        assert_eq!(
            CloakError::InvalidRequirement("k must be >= 1").to_string(),
            "invalid cloak requirement: k must be >= 1"
        );
        assert_eq!(
            CloakError::InvalidProfile("empty").to_string(),
            "invalid privacy profile: empty"
        );
    }
}
