//! Error type for the anonymizer.

use crate::UserId;
use std::fmt;

/// Errors produced by cloaking and the anonymizer service.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CloakError {
    /// The user id is not registered / tracked.
    UnknownUser(UserId),
    /// The requirement is internally inconsistent.
    InvalidRequirement(&'static str),
    /// A profile failed validation.
    InvalidProfile(&'static str),
}

impl fmt::Display for CloakError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CloakError::UnknownUser(id) => write!(f, "unknown user {id}"),
            CloakError::InvalidRequirement(msg) => {
                write!(f, "invalid cloak requirement: {msg}")
            }
            CloakError::InvalidProfile(msg) => write!(f, "invalid privacy profile: {msg}"),
        }
    }
}

impl std::error::Error for CloakError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display() {
        assert_eq!(CloakError::UnknownUser(3).to_string(), "unknown user 3");
        assert_eq!(
            CloakError::InvalidRequirement("k must be >= 1").to_string(),
            "invalid cloak requirement: k must be >= 1"
        );
        assert_eq!(
            CloakError::InvalidProfile("empty").to_string(),
            "invalid privacy profile: empty"
        );
    }
}
