//! The Location Anonymizer service (Fig. 1).
//!
//! The trusted third party: mobile users register with a privacy profile,
//! stream exact location updates in, and cloaked — pseudonymized —
//! regions come out the other side toward the database server. Nothing
//! that leaves this component carries an exact location or a true user
//! identity (unless the profile says `k = 1`, the paper's opt-out).

use crate::cloak::{CloakRequirement, CloakedRegion, CloakingAlgorithm};
use crate::{Billing, CloakError, PrivacyProfile, Tariff, UserId};
use lbsp_geom::{Point, Rect, SimTime};
use std::collections::HashMap;
use std::sync::RwLock;

/// An opaque identifier that replaces the true user id on everything
/// sent to the database server ("hide the query identity", Sec. 3).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Pseudonym(pub u64);

/// A cloaked location update, as forwarded to the database server.
// lint: server-bound
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloakedUpdate {
    /// Pseudonymized identity.
    pub pseudonym: Pseudonym,
    /// The cloaked spatial region (never the exact point unless k = 1
    /// with no area requirement).
    pub region: CloakedRegion,
    /// Update timestamp.
    pub time: SimTime,
}

/// A cloaked query context, attached to spatio-temporal queries issued
/// by mobile users.
// lint: server-bound
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloakedQuery {
    /// Pseudonymized identity of the querying user.
    pub pseudonym: Pseudonym,
    /// The region standing in for the user's location.
    pub region: CloakedRegion,
    /// Query timestamp.
    pub time: SimTime,
}

/// The anonymizer: profile registry + cloaking algorithm + pseudonyms.
///
/// Generic over the cloaking algorithm so experiments can swap the four
/// variants of Sec. 5 without touching the pipeline.
pub struct LocationAnonymizer<A> {
    algo: A,
    profiles: HashMap<UserId, PrivacyProfile>,
    secret: u64,
    billing: Option<Billing>,
}

/// Redacting formatter: the pseudonym secret must never reach a log
/// line, and the algorithm state holds exact user locations, so neither
/// is printed (a derived impl would leak both).
impl<A> std::fmt::Debug for LocationAnonymizer<A> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LocationAnonymizer")
            .field("registered", &self.profiles.len())
            .field("secret", &"<redacted>")
            .field("billing", &self.billing.is_some())
            .finish_non_exhaustive()
    }
}

impl<A: CloakingAlgorithm> LocationAnonymizer<A> {
    /// Creates the service around a cloaking algorithm. `secret` keys
    /// the pseudonym mapping; the database server never learns it.
    pub fn new(algo: A, secret: u64) -> LocationAnonymizer<A> {
        LocationAnonymizer {
            algo,
            profiles: HashMap::new(),
            secret,
            billing: None,
        }
    }

    /// Enables protection-level billing (Sec. 5: "the location
    /// anonymizer may charge the mobile users based on their required
    /// protection level"). Every cloaked update is charged under
    /// `tariff`.
    pub fn with_billing(mut self, tariff: Tariff) -> LocationAnonymizer<A> {
        self.billing = Some(Billing::new(tariff));
        self
    }

    /// The billing ledger, when enabled.
    pub fn billing(&self) -> Option<&Billing> {
        self.billing.as_ref()
    }

    /// The underlying cloaking algorithm (read access).
    pub fn algorithm(&self) -> &A {
        &self.algo
    }

    /// The world rectangle.
    pub fn world(&self) -> Rect {
        self.algo.world()
    }

    /// Number of registered users.
    pub fn registered(&self) -> usize {
        self.profiles.len()
    }

    /// Registers a user with a privacy profile (Sec. 4: "upon
    /// registration with the location anonymizer, mobile users should
    /// indicate their initial privacy profile").
    pub fn register(&mut self, id: UserId, profile: PrivacyProfile) {
        self.profiles.insert(id, profile);
    }

    /// Replaces a user's profile ("mobile users have the ability to
    /// change their privacy profiles at any time").
    pub fn update_profile(
        &mut self,
        id: UserId,
        profile: PrivacyProfile,
    ) -> Result<(), CloakError> {
        if !self.profiles.contains_key(&id) {
            return Err(CloakError::UnknownUser(id));
        }
        self.profiles.insert(id, profile);
        Ok(())
    }

    /// Unregisters a user (the paper's *passive mode*: the user shares
    /// nothing with anyone) and drops them from the index.
    pub fn unregister(&mut self, id: UserId) -> bool {
        let had_profile = self.profiles.remove(&id).is_some();
        let had_location = self.algo.remove(id);
        had_profile || had_location
    }

    /// The profile of a user.
    pub fn profile(&self, id: UserId) -> Option<&PrivacyProfile> {
        self.profiles.get(&id)
    }

    /// The requirement in force for a user at time `t`.
    pub fn requirement_at(&self, id: UserId, t: SimTime) -> Result<CloakRequirement, CloakError> {
        let profile = self.profiles.get(&id).ok_or(CloakError::UnknownUser(id))?;
        Ok(profile.requirement_at(t.time_of_day()))
    }

    /// Stable pseudonym for a user, keyed by the anonymizer's secret.
    ///
    /// splitmix64 over `secret ^ id` — a keyed bijection on u64, so
    /// pseudonyms never collide and cannot be inverted without the
    /// secret.
    pub fn pseudonym(&self, id: UserId) -> Pseudonym {
        let mut z = self.secret ^ id.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Pseudonym(z ^ (z >> 31))
    }

    /// Processes one exact location update from an *active mode* user:
    /// updates the index, resolves the profile for the current time of
    /// day, cloaks, and emits what the database server is allowed to see.
    pub fn handle_update(
        &mut self,
        id: UserId,
        position: Point,
        time: SimTime,
    ) -> Result<CloakedUpdate, CloakError> {
        let req = {
            let profile = self.profiles.get(&id).ok_or(CloakError::UnknownUser(id))?;
            profile.requirement_at(time.time_of_day())
        };
        self.algo.upsert(id, position);
        let region = self.algo.cloak(id, &req)?;
        if let Some(billing) = &mut self.billing {
            billing.record(id, &req);
        }
        Ok(CloakedUpdate {
            pseudonym: self.pseudonym(id),
            region,
            time,
        })
    }

    /// Processes a whole tick of location updates at once, sharing cloak
    /// computations between users whose algorithm guarantees identical
    /// output ([`CloakingAlgorithm::sharing_key`]) — the shared-execution
    /// idea of Sec. 5.3 at the service layer.
    ///
    /// Results are in input order. Data-dependent algorithms (no sharing
    /// key) degrade gracefully to per-user cloaking.
    pub fn handle_updates_batch(
        &mut self,
        updates: &[(UserId, Point, SimTime)],
    ) -> Vec<Result<CloakedUpdate, CloakError>> {
        // Phase 1: apply all position updates and resolve requirements.
        let mut reqs: Vec<Result<CloakRequirement, CloakError>> = Vec::with_capacity(updates.len());
        for &(id, position, time) in updates {
            match self.profiles.get(&id) {
                None => reqs.push(Err(CloakError::UnknownUser(id))),
                Some(profile) => {
                    self.algo.upsert(id, position);
                    reqs.push(Ok(profile.requirement_at(time.time_of_day())));
                }
            }
        }
        // Phase 2: one cloak per (sharing key, requirement) group.
        let mut cache: HashMap<(u64, u32, u64, u64), Result<CloakedRegion, CloakError>> =
            HashMap::new();
        updates
            .iter()
            .zip(reqs)
            .map(|(&(id, _, time), req)| {
                let req = req?;
                if let Some(billing) = &mut self.billing {
                    billing.record(id, &req);
                }
                let region = match self.algo.sharing_key(id) {
                    Some(key) => cache
                        .entry((key, req.k, req.a_min.to_bits(), req.a_max.to_bits()))
                        .or_insert_with(|| self.algo.cloak(id, &req))
                        .clone()?,
                    None => self.algo.cloak(id, &req)?,
                };
                Ok(CloakedUpdate {
                    pseudonym: self.pseudonym(id),
                    region,
                    time,
                })
            })
            .collect()
    }

    /// Cloaks the context for a query issued by a *query mode* user.
    /// Requires the user to have sent at least one location update.
    pub fn cloak_query(&self, id: UserId, time: SimTime) -> Result<CloakedQuery, CloakError> {
        let profile = self.profiles.get(&id).ok_or(CloakError::UnknownUser(id))?;
        let req = profile.requirement_at(time.time_of_day());
        let region = self.algo.cloak(id, &req)?;
        Ok(CloakedQuery {
            pseudonym: self.pseudonym(id),
            region,
            time,
        })
    }
}

/// A thread-safe wrapper so a shared-execution pipeline can cloak
/// queries from reader threads while an ingest thread applies updates.
#[derive(Debug)]
pub struct ConcurrentAnonymizer<A>(RwLock<LocationAnonymizer<A>>);

impl<A: CloakingAlgorithm> ConcurrentAnonymizer<A> {
    /// Wraps an anonymizer.
    pub fn new(inner: LocationAnonymizer<A>) -> Self {
        // lint: lock(AnonService) -- this crate sits below lbsp-core in the
        // dependency graph, so it cannot use TrackedRwLock; the registry
        // rank is declared in lbsp_core::locks::LockRank::AnonService.
        ConcurrentAnonymizer(RwLock::new(inner))
    }

    /// Applies a location update (exclusive lock).
    pub fn handle_update(
        &self,
        id: UserId,
        position: Point,
        time: SimTime,
    ) -> Result<CloakedUpdate, CloakError> {
        self.0.write().unwrap().handle_update(id, position, time)
    }

    /// Cloaks a query (shared lock — many readers in parallel).
    pub fn cloak_query(&self, id: UserId, time: SimTime) -> Result<CloakedQuery, CloakError> {
        self.0.read().unwrap().cloak_query(id, time)
    }

    /// Registers a user.
    pub fn register(&self, id: UserId, profile: PrivacyProfile) {
        self.0.write().unwrap().register(id, profile);
    }

    /// Runs a closure with read access to the inner anonymizer.
    pub fn with_read<T>(&self, f: impl FnOnce(&LocationAnonymizer<A>) -> T) -> T {
        f(&self.0.read().unwrap())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GridCloak, QuadCloak};

    fn world() -> Rect {
        Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
    }

    fn service() -> LocationAnonymizer<QuadCloak> {
        let mut a = LocationAnonymizer::new(QuadCloak::new(world(), 5), 0xDEADBEEF);
        for i in 0..100u64 {
            let x = 0.05 + 0.1 * (i % 10) as f64;
            let y = 0.05 + 0.1 * (i / 10) as f64;
            a.register(
                i,
                PrivacyProfile::uniform(CloakRequirement::k_only(10)).unwrap(),
            );
            a.handle_update(i, Point::new(x, y), SimTime::ZERO).unwrap();
        }
        a
    }

    #[test]
    fn update_produces_k_anonymous_region() {
        let mut a = service();
        let u = a
            .handle_update(55, Point::new(0.55, 0.55), SimTime::from_hours(1.0))
            .unwrap();
        assert!(u.region.k_satisfied);
        assert!(u.region.achieved_k >= 10);
        assert!(u.region.region.contains_point(Point::new(0.55, 0.55)));
        assert_ne!(u.pseudonym.0, 55, "true id never leaves the anonymizer");
    }

    #[test]
    fn pseudonyms_are_stable_and_distinct() {
        let a = service();
        assert_eq!(a.pseudonym(1), a.pseudonym(1));
        let mut seen = std::collections::HashSet::new();
        for id in 0..1000u64 {
            assert!(seen.insert(a.pseudonym(id)), "collision at {id}");
        }
        // Different secrets give different pseudonym spaces.
        let b = LocationAnonymizer::new(QuadCloak::new(world(), 3), 42);
        assert_ne!(a.pseudonym(1), b.pseudonym(1));
    }

    #[test]
    fn unknown_user_paths() {
        let mut a = LocationAnonymizer::new(GridCloak::new(world(), 4), 7);
        assert!(matches!(
            a.handle_update(1, Point::ORIGIN, SimTime::ZERO),
            Err(CloakError::UnknownUser(1))
        ));
        assert!(matches!(
            a.cloak_query(1, SimTime::ZERO),
            Err(CloakError::UnknownUser(1))
        ));
        assert!(matches!(
            a.update_profile(1, PrivacyProfile::default()),
            Err(CloakError::UnknownUser(1))
        ));
        // Registered but never sent an update: query fails inside cloak.
        a.register(1, PrivacyProfile::default());
        assert!(matches!(
            a.cloak_query(1, SimTime::ZERO),
            Err(CloakError::UnknownUser(1))
        ));
    }

    #[test]
    fn temporal_profile_switches_requirement() {
        let mut a = LocationAnonymizer::new(QuadCloak::new(world(), 5), 9);
        for i in 0..100u64 {
            let x = 0.05 + 0.1 * (i % 10) as f64;
            let y = 0.05 + 0.1 * (i / 10) as f64;
            a.register(i, PrivacyProfile::paper_example());
            a.handle_update(i, Point::new(x, y), SimTime::ZERO).unwrap();
        }
        // Noon: k = 1, exact point.
        let noon = a
            .handle_update(55, Point::new(0.55, 0.55), SimTime::from_hours(12.0))
            .unwrap();
        assert_eq!(noon.region.area(), 0.0);
        // 7 PM: k = 100 with area in [1, 3] — only the whole unit world
        // (area exactly 1) satisfies both, and it does.
        let evening = a
            .handle_update(55, Point::new(0.55, 0.55), SimTime::from_hours(19.0))
            .unwrap();
        assert!(evening.region.achieved_k >= 100);
        assert!(evening.region.fully_satisfied());
        assert!((evening.region.area() - 1.0).abs() < 1e-9);
        // Requirement resolution helper agrees.
        assert_eq!(
            a.requirement_at(55, SimTime::from_hours(19.0)).unwrap().k,
            100
        );
    }

    #[test]
    fn profile_update_and_unregister() {
        let mut a = service();
        a.update_profile(
            3,
            PrivacyProfile::uniform(CloakRequirement::k_only(50)).unwrap(),
        )
        .unwrap();
        let q = a.cloak_query(3, SimTime::ZERO).unwrap();
        assert!(q.region.achieved_k >= 50);
        assert!(a.unregister(3));
        assert!(!a.unregister(3));
        assert_eq!(a.registered(), 99);
        assert!(a.profile(3).is_none());
    }

    #[test]
    fn concurrent_wrapper_basic_flow() {
        let inner = LocationAnonymizer::new(QuadCloak::new(world(), 4), 1);
        let c = ConcurrentAnonymizer::new(inner);
        for i in 0..20u64 {
            c.register(
                i,
                PrivacyProfile::uniform(CloakRequirement::k_only(5)).unwrap(),
            );
            c.handle_update(i, Point::new(0.5 + 0.01 * i as f64, 0.5), SimTime::ZERO)
                .unwrap();
        }
        let q = c.cloak_query(0, SimTime::ZERO).unwrap();
        assert!(q.region.k_satisfied);
        assert_eq!(c.with_read(|a| a.registered()), 20);
    }

    #[test]
    fn batch_updates_match_individual_updates() {
        let mut a = service();
        let mut b = service();
        let updates: Vec<(u64, Point, SimTime)> = (0..100u64)
            .map(|i| {
                let x = 0.06 + 0.1 * (i % 10) as f64;
                let y = 0.06 + 0.1 * (i / 10) as f64;
                (i, Point::new(x, y), SimTime::from_secs(60.0))
            })
            .collect();
        // Individual path.
        let individual: Vec<_> = updates
            .iter()
            .map(|&(id, p, t)| a.handle_update(id, p, t).unwrap())
            .collect();
        // Batched path.
        let batched = b.handle_updates_batch(&updates);
        for (ind, bat) in individual.iter().zip(&batched) {
            let bat = bat.as_ref().unwrap();
            assert_eq!(ind.pseudonym, bat.pseudonym);
            assert_eq!(ind.region.region, bat.region.region);
        }
    }

    #[test]
    fn batch_reports_unknown_users_in_place() {
        let mut a = service();
        let out = a.handle_updates_batch(&[
            (1, Point::new(0.5, 0.5), SimTime::ZERO),
            (5000, Point::new(0.5, 0.5), SimTime::ZERO),
        ]);
        assert!(out[0].is_ok());
        assert!(matches!(out[1], Err(CloakError::UnknownUser(5000))));
    }

    #[test]
    fn sharing_keys_are_sound_for_space_dependent_algorithms() {
        // The contract: equal sharing keys + equal requirements =>
        // identical cloaks. Verify on the quad cloak directly.
        let a = service();
        let algo = a.algorithm();
        let req = CloakRequirement::k_only(10);
        for i in 0..100u64 {
            for j in (i + 1)..100u64 {
                if algo.sharing_key(i) == algo.sharing_key(j) {
                    assert_eq!(
                        algo.cloak(i, &req).unwrap().region,
                        algo.cloak(j, &req).unwrap().region,
                        "users {i} and {j} share a key but not a region"
                    );
                }
            }
        }
    }

    #[test]
    fn billing_charges_by_protection_level() {
        let mut a =
            LocationAnonymizer::new(QuadCloak::new(world(), 5), 3).with_billing(Tariff::default());
        a.register(
            1,
            PrivacyProfile::uniform(CloakRequirement::k_only(2)).unwrap(),
        );
        a.register(
            2,
            PrivacyProfile::uniform(CloakRequirement::k_only(512)).unwrap(),
        );
        for t in 0..3 {
            for id in [1u64, 2] {
                a.handle_update(id, Point::new(0.5, 0.5), SimTime::from_secs(t as f64))
                    .unwrap();
            }
        }
        let billing = a.billing().expect("enabled");
        let (n1, total1) = billing.statement(1);
        let (n2, total2) = billing.statement(2);
        assert_eq!((n1, n2), (3, 3));
        assert!(total2 > total1, "k=512 costs more than k=2");
        assert!((billing.revenue() - (total1 + total2)).abs() < 1e-12);
        // Billing is off by default.
        let plain = LocationAnonymizer::new(QuadCloak::new(world(), 3), 3);
        assert!(plain.billing().is_none());
    }

    #[test]
    fn query_mode_without_fresh_update_uses_last_position() {
        let a = service();
        let q = a.cloak_query(7, SimTime::ZERO).unwrap();
        assert!(q.region.k_satisfied);
        assert!(q
            .region
            .region
            .contains_point(a.algorithm().location(7).unwrap()));
    }
}
