//! Incremental cloak evaluation (Sec. 5.3, approach 1).
//!
//! "The main idea is to avoid continuous computation of the cloaked
//! region as users continuously update their locations. Instead,
//! computing a cloaked region at time t should benefit from the
//! computation of the cloaked region of the same user at time t − 1."
//!
//! [`IncrementalCloaker`] wraps any [`CloakingAlgorithm`] with a
//! per-user cache. On each update the cached region is *revalidated*:
//! it must (a) still contain the user, (b) still hold `k` users under
//! the current population, (c) have been produced for the same
//! requirement, and (d) not be stale by more than a configurable number
//! of updates (unbounded reuse would let an observer intersect regions
//! over time). Only on revalidation failure is the full cloak recomputed.

use crate::cloak::{CloakRequirement, CloakedRegion, CloakingAlgorithm};
use crate::{CloakError, UserId};
use lbsp_geom::Point;
use std::collections::HashMap;

/// Cache hit/miss statistics (reported by experiment E9).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Updates answered from the cached region.
    pub hits: usize,
    /// Updates that required a full recomputation.
    pub misses: usize,
}

impl CacheStats {
    /// Hit rate in `[0, 1]`.
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

#[derive(Debug, Clone)]
struct CacheEntry {
    region: CloakedRegion,
    req: CloakRequirement,
    /// Updates served since the region was computed.
    age: u32,
}

/// A caching wrapper that makes any cloaking algorithm incremental.
#[derive(Debug)]
pub struct IncrementalCloaker<A> {
    inner: A,
    cache: HashMap<UserId, CacheEntry>,
    stats: CacheStats,
    max_age: u32,
}

impl<A: CloakingAlgorithm> IncrementalCloaker<A> {
    /// Wraps `inner`; cached regions are reused for at most `max_age`
    /// consecutive updates before a forced refresh.
    pub fn new(inner: A, max_age: u32) -> IncrementalCloaker<A> {
        IncrementalCloaker {
            inner,
            cache: HashMap::new(),
            stats: CacheStats::default(),
            max_age,
        }
    }

    /// The wrapped algorithm.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Mutable access to the wrapped algorithm (e.g. for seeding the
    /// population). Mutating the population does NOT invalidate caches;
    /// revalidation handles that lazily per user.
    pub fn inner_mut(&mut self) -> &mut A {
        &mut self.inner
    }

    /// Cache statistics so far.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Resets cache statistics.
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Processes one location update and returns the cloaked region,
    /// reusing the cached region when it revalidates.
    pub fn update_and_cloak(
        &mut self,
        id: UserId,
        p: Point,
        req: &CloakRequirement,
    ) -> Result<CloakedRegion, CloakError> {
        req.validate()?;
        self.inner.upsert(id, p);
        if let Some(entry) = self.cache.get_mut(&id) {
            let same_req = entry.req == *req;
            let fresh = entry.age < self.max_age;
            let contains = entry.region.region.contains_point(p);
            if same_req && fresh && contains {
                // Population may have shifted; recount before reusing.
                let count = self.inner.count_in_region(&entry.region.region) as u32;
                if count >= req.k {
                    entry.age += 1;
                    entry.region.achieved_k = count;
                    self.stats.hits += 1;
                    return Ok(entry.region);
                }
            }
        }
        // Revalidation failed: full recompute.
        let region = self.inner.cloak(id, req)?;
        self.cache.insert(
            id,
            CacheEntry {
                region,
                req: *req,
                age: 0,
            },
        );
        self.stats.misses += 1;
        Ok(region)
    }

    /// Removes a user and drops its cache entry.
    pub fn remove(&mut self, id: UserId) -> bool {
        self.cache.remove(&id);
        self.inner.remove(id)
    }

    /// Sweeps every cached cloak and re-cloaks the ones whose occupancy
    /// decayed below their requirement — the "k-anonymity for highly
    /// updated data" repair the paper calls for in Sec. 2.2: a region
    /// that was k-anonymous when issued stops being so once enough of
    /// its occupants move away, and the server's stored copy must then
    /// be replaced.
    ///
    /// Returns the corrective `(user, fresh_region)` pairs to forward to
    /// the database server. Entries that still satisfy their requirement
    /// are untouched (and their cached copies stay valid).
    pub fn refresh_stale(&mut self) -> Vec<(UserId, CloakedRegion)> {
        let mut corrections = Vec::new();
        let ids: Vec<UserId> = self.cache.keys().copied().collect();
        for id in ids {
            let entry = &self.cache[&id];
            let req = entry.req;
            let still_present = self.inner.location(id).is_some();
            if !still_present {
                self.cache.remove(&id);
                continue;
            }
            let count = self.inner.count_in_region(&entry.region.region) as u32;
            let contains = self
                .inner
                .location(id)
                .is_some_and(|p| entry.region.region.contains_point(p));
            if count >= req.k && contains {
                continue;
            }
            if let Ok(fresh) = self.inner.cloak(id, &req) {
                self.cache.insert(
                    id,
                    CacheEntry {
                        region: fresh,
                        req,
                        age: 0,
                    },
                );
                corrections.push((id, fresh));
            }
        }
        corrections
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{GridCloak, QuadCloak};
    use lbsp_geom::Rect;

    fn world() -> Rect {
        Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
    }

    fn seeded_quad() -> QuadCloak {
        let mut q = QuadCloak::new(world(), 5);
        for i in 0..100u64 {
            let x = 0.05 + 0.1 * (i % 10) as f64;
            let y = 0.05 + 0.1 * (i / 10) as f64;
            q.upsert(i, Point::new(x, y));
        }
        q
    }

    #[test]
    fn local_movement_hits_cache() {
        let mut inc = IncrementalCloaker::new(seeded_quad(), 100);
        let req = CloakRequirement::k_only(10);
        // First update computes.
        let r1 = inc
            .update_and_cloak(55, Point::new(0.55, 0.55), &req)
            .unwrap();
        assert_eq!(inc.stats(), CacheStats { hits: 0, misses: 1 });
        // Tiny movements inside the region are served from cache.
        for i in 0..5 {
            let p = Point::new(0.55 + 0.001 * i as f64, 0.55);
            let r = inc.update_and_cloak(55, p, &req).unwrap();
            assert_eq!(r.region, r1.region);
        }
        assert_eq!(inc.stats().hits, 5);
        assert!(inc.stats().hit_rate() > 0.8);
    }

    #[test]
    fn leaving_region_forces_recompute() {
        let mut inc = IncrementalCloaker::new(seeded_quad(), 100);
        let req = CloakRequirement::k_only(5);
        let r1 = inc
            .update_and_cloak(55, Point::new(0.55, 0.55), &req)
            .unwrap();
        // Jump far outside the cached region.
        let r2 = inc
            .update_and_cloak(55, Point::new(0.05, 0.05), &req)
            .unwrap();
        assert_ne!(r1.region, r2.region);
        assert_eq!(inc.stats().misses, 2);
        assert!(r2.region.contains_point(Point::new(0.05, 0.05)));
    }

    #[test]
    fn requirement_change_forces_recompute() {
        let mut inc = IncrementalCloaker::new(seeded_quad(), 100);
        let p = Point::new(0.55, 0.55);
        inc.update_and_cloak(55, p, &CloakRequirement::k_only(5))
            .unwrap();
        inc.update_and_cloak(55, p, &CloakRequirement::k_only(50))
            .unwrap();
        assert_eq!(inc.stats().misses, 2, "k change invalidates the cache");
    }

    #[test]
    fn max_age_bounds_reuse() {
        let mut inc = IncrementalCloaker::new(seeded_quad(), 3);
        let req = CloakRequirement::k_only(10);
        let p = Point::new(0.55, 0.55);
        for _ in 0..8 {
            inc.update_and_cloak(55, p, &req).unwrap();
        }
        // Pattern: miss, hit, hit, hit, miss, hit, hit, hit.
        assert_eq!(inc.stats().misses, 2);
        assert_eq!(inc.stats().hits, 6);
    }

    #[test]
    fn population_shift_invalidates_when_k_drops() {
        let mut grid = GridCloak::new(world(), 8);
        // Subject plus 9 users in one cell.
        grid.upsert(0, Point::new(0.55, 0.55));
        for i in 1..10u64 {
            grid.upsert(i, Point::new(0.56, 0.56));
        }
        let mut inc = IncrementalCloaker::new(grid, 100);
        let req = CloakRequirement::k_only(8);
        inc.update_and_cloak(0, Point::new(0.55, 0.55), &req)
            .unwrap();
        // Most of the crowd leaves.
        for i in 1..8u64 {
            inc.inner_mut().upsert(i, Point::new(0.05, 0.05));
        }
        let r = inc
            .update_and_cloak(0, Point::new(0.55, 0.55), &req)
            .unwrap();
        assert!(r.k_satisfied, "recomputed region recovers k-anonymity");
        assert!(inc.inner().count_in_region(&r.region) >= 8);
        assert_eq!(inc.stats().misses, 2, "cache entry failed revalidation");
    }

    #[test]
    fn cached_result_keeps_k_fresh() {
        let mut inc = IncrementalCloaker::new(seeded_quad(), 100);
        let req = CloakRequirement::k_only(5);
        let r1 = inc
            .update_and_cloak(55, Point::new(0.55, 0.55), &req)
            .unwrap();
        // New arrivals inside the region bump achieved_k on a cache hit.
        for i in 200..210u64 {
            inc.inner_mut().upsert(i, Point::new(0.55, 0.55));
        }
        let r2 = inc
            .update_and_cloak(55, Point::new(0.551, 0.55), &req)
            .unwrap();
        assert_eq!(r1.region, r2.region);
        assert!(r2.achieved_k >= r1.achieved_k + 10);
    }

    #[test]
    fn refresh_stale_repairs_decayed_regions() {
        // Subject cloaked among a crowd; the crowd then leaves, eroding
        // the stored region's occupancy below k. refresh_stale must
        // issue a corrective cloak that is k-anonymous again.
        let mut grid = GridCloak::new(world(), 8);
        grid.upsert(0, Point::new(0.55, 0.55));
        for i in 1..12u64 {
            grid.upsert(i, Point::new(0.56, 0.56));
        }
        let mut inc = IncrementalCloaker::new(grid, 1000);
        let req = CloakRequirement::k_only(10);
        inc.update_and_cloak(0, Point::new(0.55, 0.55), &req)
            .unwrap();
        // Nothing stale yet.
        assert!(inc.refresh_stale().is_empty());
        // The crowd emigrates.
        for i in 1..10u64 {
            inc.inner_mut().upsert(i, Point::new(0.05, 0.05));
        }
        let corrections = inc.refresh_stale();
        assert_eq!(corrections.len(), 1);
        let (user, fresh) = corrections[0];
        assert_eq!(user, 0);
        assert!(fresh.k_satisfied, "corrective region restores k-anonymity");
        assert!(inc.inner().count_in_region(&fresh.region) >= 10);
        // A second sweep is clean.
        assert!(inc.refresh_stale().is_empty());
    }

    #[test]
    fn refresh_stale_drops_vanished_users() {
        let mut inc = IncrementalCloaker::new(seeded_quad(), 1000);
        let req = CloakRequirement::k_only(5);
        inc.update_and_cloak(55, Point::new(0.55, 0.55), &req)
            .unwrap();
        // The user unregisters behind the cache's back.
        inc.inner_mut().remove(55);
        assert!(inc.refresh_stale().is_empty(), "no correction for ghosts");
        // Cache entry is gone: the next update is a miss.
        let before = inc.stats().misses;
        inc.inner_mut().upsert(55, Point::new(0.55, 0.55));
        inc.update_and_cloak(55, Point::new(0.55, 0.55), &req)
            .unwrap();
        assert_eq!(inc.stats().misses, before + 1);
    }

    #[test]
    fn remove_clears_cache() {
        let mut inc = IncrementalCloaker::new(seeded_quad(), 100);
        let req = CloakRequirement::k_only(5);
        inc.update_and_cloak(55, Point::new(0.55, 0.55), &req)
            .unwrap();
        assert!(inc.remove(55));
        assert!(!inc.remove(55));
        // Re-adding starts with a miss.
        inc.update_and_cloak(55, Point::new(0.55, 0.55), &req)
            .unwrap();
        assert_eq!(inc.stats().misses, 2);
    }
}
