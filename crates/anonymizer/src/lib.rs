//! The Location Anonymizer — the trusted third party of the paper.
//!
//! This crate implements Sections 4 and 5 of *"Towards Privacy-Aware
//! Location-Based Database Servers"*:
//!
//! * **Privacy profiles** ([`profile`]): per-user `(k, A_min, A_max)`
//!   requirements with temporal constraints (Fig. 2), including the
//!   paper's exact example profile.
//! * **Cloaking algorithms** ([`CloakingAlgorithm`] implementations):
//!   - [`NaiveCloak`] — data-dependent center expansion (Fig. 3a);
//!   - [`MbrCloak`] — data-dependent k-NN minimum bounding rectangle
//!     (Fig. 3b);
//!   - [`QuadCloak`] — space-dependent bottom-up quadtree/pyramid search
//!     (Fig. 4a);
//!   - [`GridCloak`] — space-dependent fixed grid with neighbor merging
//!     and the multi-level refinement optimization (Fig. 4b).
//! * **Efficiency machinery** (Sec. 5.3): [`IncrementalCloaker`] caches
//!   and revalidates cloaks across location updates; [`SharedExecutor`]
//!   batches users that can share one cloak computation, optionally in
//!   parallel.
//! * **Attack models** ([`attack`]): concrete reverse-engineering
//!   adversaries (center-of-region, boundary, occupancy, multi-snapshot
//!   intersection) that quantify the information-leakage claims of
//!   Sec. 5.1–5.2 and beyond.
//! * **Baselines from the paper's related work**: [`HilbertCloak`]
//!   (HilbASR-style reciprocal bucketing) and [`TemporalCloak`]
//!   (Gruteser–Grunwald delay-for-area trading).
//! * **The anonymizer service** ([`LocationAnonymizer`]): registration,
//!   pseudonymization, batched shared execution, optional
//!   protection-level [`Billing`], and the update/query cloaking entry
//!   points that sit between mobile users and the database server
//!   (Fig. 1).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod anonymizer;
pub mod attack;
mod billing;
mod cloak;
mod error;
mod grid_cloak;
mod hilbert_cloak;
mod incremental;
mod mbr;
mod naive;
pub mod profile;
mod quad;
mod shared;
mod temporal;

pub use anonymizer::{
    CloakedQuery, CloakedUpdate, ConcurrentAnonymizer, LocationAnonymizer, Pseudonym,
};
pub use billing::{Billing, Tariff};
pub use cloak::{CloakRequirement, CloakedRegion, CloakingAlgorithm};
pub use error::CloakError;
pub use grid_cloak::{cloak_with_counts, GridCloak, DEFAULT_MAX_REFINE_DEPTH};
pub use hilbert_cloak::HilbertCloak;
pub use incremental::{CacheStats, IncrementalCloaker};
pub use mbr::MbrCloak;
pub use naive::NaiveCloak;
pub use profile::{PrivacyProfile, ProfileEntry};
pub use quad::QuadCloak;
pub use shared::{CloakRequest, SharedExecutor};
pub use temporal::{DelayedRelease, TemporalCloak};

/// Identifier for a mobile user (mirrors `lbsp_mobility::UserId`).
pub type UserId = u64;
