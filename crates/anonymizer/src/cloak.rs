//! The cloaking contract: requirements in, cloaked regions out.

use crate::{CloakError, UserId};
use lbsp_geom::{Point, Rect};
use serde::{Deserialize, Serialize};

/// The privacy requirement in force for one user at one instant,
/// resolved from the user's [`crate::PrivacyProfile`].
///
/// Semantics follow Sec. 5 of the paper exactly:
///
/// 1. the cloaked region must contain at least `k` users (including the
///    subject), and
/// 2. its area `A` should satisfy `a_min <= A <= a_max`.
///
/// Requirement 1 is hard; the area bounds are best-effort because a
/// profile "may contain some contradicting requirements" — e.g. a tiny
/// `a_max` with a huge `k` — and "the job of the location anonymizer is a
/// best effort".
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CloakRequirement {
    /// Anonymity level: the subject must be indistinguishable among `k`
    /// users. `k = 1` means no anonymity is requested.
    pub k: u32,
    /// Minimum area of the cloaked region (square world units).
    pub a_min: f64,
    /// Maximum area of the cloaked region (square world units);
    /// `f64::INFINITY` when unbounded.
    pub a_max: f64,
}

impl CloakRequirement {
    /// A requirement with only an anonymity level (no area constraints).
    pub fn k_only(k: u32) -> CloakRequirement {
        CloakRequirement {
            k,
            a_min: 0.0,
            a_max: f64::INFINITY,
        }
    }

    /// The no-privacy requirement: the paper's `k = 1` daytime entry.
    pub fn none() -> CloakRequirement {
        CloakRequirement::k_only(1)
    }

    /// Validates internal consistency.
    pub fn validate(&self) -> Result<(), CloakError> {
        if self.k == 0 {
            return Err(CloakError::InvalidRequirement("k must be >= 1"));
        }
        if !self.a_min.is_finite() || self.a_min < 0.0 {
            return Err(CloakError::InvalidRequirement("a_min must be >= 0"));
        }
        if self.a_max < self.a_min {
            return Err(CloakError::InvalidRequirement("a_max must be >= a_min"));
        }
        Ok(())
    }

    /// `true` when this requirement asks for any privacy at all.
    pub fn wants_privacy(&self) -> bool {
        self.k > 1 || self.a_min > 0.0
    }
}

/// The output of a cloaking algorithm.
// lint: server-bound
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CloakedRegion {
    /// The cloaked spatial region sent to the database server.
    pub region: Rect,
    /// How many users the region actually contains (>= k when
    /// `k_satisfied`).
    pub achieved_k: u32,
    /// Whether the k-anonymity requirement was met.
    pub k_satisfied: bool,
    /// Whether `a_min <= area <= a_max` was met.
    pub area_satisfied: bool,
}

impl CloakedRegion {
    /// `true` when every requirement was met.
    pub fn fully_satisfied(&self) -> bool {
        self.k_satisfied && self.area_satisfied
    }

    /// Convenience: the region's area.
    pub fn area(&self) -> f64 {
        self.region.area()
    }
}

/// A spatial-cloaking algorithm maintained over a live user population.
///
/// Implementations own whatever index they need (grid, pyramid, k-NN
/// structure) and keep it current as users move; [`cloak`] must be cheap
/// enough to run per update (requirement 3 of Sec. 5: "computationally
/// efficient to cope with the continuous movement of mobile users").
///
/// [`cloak`]: CloakingAlgorithm::cloak
pub trait CloakingAlgorithm: Send + Sync {
    /// Short stable name, used in benchmark tables.
    fn name(&self) -> &'static str;

    /// The world rectangle all cloaks are clipped to.
    fn world(&self) -> Rect;

    /// Inserts a user or moves an existing one.
    fn upsert(&mut self, id: UserId, p: Point);

    /// Removes a user; `true` when it was present.
    fn remove(&mut self, id: UserId) -> bool;

    /// Current location of a user, when tracked.
    fn location(&self, id: UserId) -> Option<Point>;

    /// Number of tracked users.
    fn population(&self) -> usize;

    /// Number of tracked users inside `region` — used by incremental
    /// revalidation and by tests asserting k-anonymity.
    fn count_in_region(&self, region: &Rect) -> usize;

    /// Computes a cloaked region for user `id` under `req`.
    ///
    /// Errors when the user is unknown or `req` is invalid. When the
    /// requirements are contradictory the implementation returns its best
    /// effort with the `k_satisfied` / `area_satisfied` flags cleared
    /// accordingly rather than failing.
    fn cloak(&self, id: UserId, req: &CloakRequirement) -> Result<CloakedRegion, CloakError>;

    /// A sharing key for batched execution (Sec. 5.3): two users with
    /// equal keys (and equal requirements) are *guaranteed* to receive
    /// the identical cloaked region, so one computation can serve both.
    ///
    /// `None` (the default) means the algorithm's output depends on the
    /// exact position and must not be shared — the data-dependent
    /// family. Space-dependent implementations return their cell index.
    fn sharing_key(&self, id: UserId) -> Option<u64> {
        let _ = id;
        None
    }
}

impl<T: CloakingAlgorithm + ?Sized> CloakingAlgorithm for Box<T> {
    fn name(&self) -> &'static str {
        (**self).name()
    }
    fn world(&self) -> Rect {
        (**self).world()
    }
    fn upsert(&mut self, id: UserId, p: Point) {
        (**self).upsert(id, p)
    }
    fn remove(&mut self, id: UserId) -> bool {
        (**self).remove(id)
    }
    fn location(&self, id: UserId) -> Option<Point> {
        (**self).location(id)
    }
    fn population(&self) -> usize {
        (**self).population()
    }
    fn count_in_region(&self, region: &Rect) -> usize {
        (**self).count_in_region(region)
    }
    fn cloak(&self, id: UserId, req: &CloakRequirement) -> Result<CloakedRegion, CloakError> {
        (**self).cloak(id, req)
    }
    fn sharing_key(&self, id: UserId) -> Option<u64> {
        (**self).sharing_key(id)
    }
}

/// Shared post-processing: stamps satisfaction flags on a candidate
/// region given the population count inside it.
pub(crate) fn finalize_region(
    region: Rect,
    achieved_k: u32,
    req: &CloakRequirement,
) -> CloakedRegion {
    let area = region.area();
    CloakedRegion {
        region,
        achieved_k,
        k_satisfied: achieved_k >= req.k,
        // A tolerance absorbs float noise from area arithmetic.
        area_satisfied: area >= req.a_min * (1.0 - 1e-9) && area <= req.a_max * (1.0 + 1e-9),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn requirement_validation() {
        assert!(CloakRequirement::k_only(1).validate().is_ok());
        assert!(CloakRequirement {
            k: 0,
            a_min: 0.0,
            a_max: 1.0
        }
        .validate()
        .is_err());
        assert!(CloakRequirement {
            k: 5,
            a_min: -1.0,
            a_max: 1.0
        }
        .validate()
        .is_err());
        assert!(CloakRequirement {
            k: 5,
            a_min: 2.0,
            a_max: 1.0
        }
        .validate()
        .is_err());
        assert!(CloakRequirement {
            k: 5,
            a_min: f64::NAN,
            a_max: 1.0
        }
        .validate()
        .is_err());
        assert!(CloakRequirement {
            k: 5,
            a_min: 0.5,
            a_max: f64::INFINITY
        }
        .validate()
        .is_ok());
    }

    #[test]
    fn wants_privacy() {
        assert!(!CloakRequirement::none().wants_privacy());
        assert!(CloakRequirement::k_only(2).wants_privacy());
        assert!(CloakRequirement {
            k: 1,
            a_min: 0.1,
            a_max: 1.0
        }
        .wants_privacy());
    }

    #[test]
    fn finalize_flags() {
        let req = CloakRequirement {
            k: 10,
            a_min: 0.1,
            a_max: 0.5,
        };
        let r = Rect::new_unchecked(0.0, 0.0, 0.5, 0.5); // area 0.25
        let ok = finalize_region(r, 12, &req);
        assert!(ok.fully_satisfied());
        assert_eq!(ok.achieved_k, 12);
        let under_k = finalize_region(r, 9, &req);
        assert!(!under_k.k_satisfied && under_k.area_satisfied);
        let tiny = Rect::new_unchecked(0.0, 0.0, 0.1, 0.1);
        let under_a = finalize_region(tiny, 12, &req);
        assert!(under_a.k_satisfied && !under_a.area_satisfied);
        let huge = Rect::new_unchecked(0.0, 0.0, 1.0, 1.0);
        let over_a = finalize_region(huge, 12, &req);
        assert!(!over_a.area_satisfied);
        assert!(!over_a.fully_satisfied());
    }

    #[test]
    fn finalize_exact_bounds_count_as_satisfied() {
        let req = CloakRequirement {
            k: 1,
            a_min: 0.25,
            a_max: 0.25,
        };
        let r = Rect::new_unchecked(0.0, 0.0, 0.5, 0.5);
        assert!(finalize_region(r, 1, &req).area_satisfied);
    }
}
