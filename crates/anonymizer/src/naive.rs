//! Naive data-dependent cloaking (Fig. 3a).
//!
//! "The location anonymizer expands the point location equally in all
//! [directions] till the user privacy profile is satisfied. Although such
//! data-dependent location anonymizer may satisfy the user requirements
//! in terms of k, Amin, and Amax, an adversary can easily deduce the
//! exact location as being the middle point of the cloaked spatial
//! region." — Sec. 5.1
//!
//! We implement it faithfully — the user sits at the exact center of the
//! returned square (unless the world boundary clips it) — so the
//! center-of-region attack in [`crate::attack`] can demonstrate the leak
//! the paper warns about.

use crate::cloak::{finalize_region, CloakRequirement, CloakedRegion, CloakingAlgorithm};
use crate::{CloakError, UserId};
use lbsp_geom::{Point, Rect};
use lbsp_index::UniformGrid;

/// Center-expansion cloak backed by a uniform grid for counting.
#[derive(Debug, Clone)]
pub struct NaiveCloak {
    grid: UniformGrid,
}

impl NaiveCloak {
    /// Creates the cloak over `world`, with a counting grid of
    /// `grid_side × grid_side` cells.
    pub fn new(world: Rect, grid_side: u32) -> NaiveCloak {
        NaiveCloak {
            grid: UniformGrid::new(world, grid_side, grid_side),
        }
    }

    /// The smallest centered square (clipped to the world) around `pos`
    /// that contains at least `k` users and has area at least `a_min`.
    fn smallest_satisfying_square(&self, pos: Point, k: u32, a_min: f64) -> Rect {
        let world = self.grid.world();
        let h_max = world.width().max(world.height());
        let satisfied = |h: f64| -> bool {
            let r = Rect::centered_square(pos, h)
                .expect("non-negative half side")
                .clamped_to(&world);
            r.area() >= a_min && self.grid.count_in_rect(&r) >= k as usize
        };
        if satisfied(0.0) {
            return Rect::from_point(pos);
        }
        // Exponential search for an upper bound, then bisection. Both the
        // population count and the clipped area are monotone in h, so the
        // predicate is monotone and bisection converges to the tight h.
        let mut hi = (world.width().min(world.height())) / 64.0;
        while !satisfied(hi) && hi < h_max {
            hi *= 2.0;
        }
        let mut lo = 0.0f64;
        let mut hi = hi.min(h_max);
        if !satisfied(hi) {
            // Even the whole world fails (k > population or a_min too
            // big): return the world as best effort.
            return world;
        }
        for _ in 0..60 {
            let mid = 0.5 * (lo + hi);
            if satisfied(mid) {
                hi = mid;
            } else {
                lo = mid;
            }
        }
        Rect::centered_square(pos, hi)
            .expect("non-negative half side")
            .clamped_to(&world)
    }
}

impl CloakingAlgorithm for NaiveCloak {
    fn name(&self) -> &'static str {
        "naive"
    }

    fn world(&self) -> Rect {
        self.grid.world()
    }

    fn upsert(&mut self, id: UserId, p: Point) {
        self.grid.insert(id, p);
    }

    fn remove(&mut self, id: UserId) -> bool {
        self.grid.remove(id).is_some()
    }

    fn location(&self, id: UserId) -> Option<Point> {
        self.grid.location(id)
    }

    fn population(&self) -> usize {
        self.grid.len()
    }

    fn count_in_region(&self, region: &Rect) -> usize {
        self.grid.count_in_rect(region)
    }

    fn cloak(&self, id: UserId, req: &CloakRequirement) -> Result<CloakedRegion, CloakError> {
        req.validate()?;
        let pos = self.grid.location(id).ok_or(CloakError::UnknownUser(id))?;
        if !req.wants_privacy() {
            let region = Rect::from_point(pos);
            let k = self.grid.count_in_rect(&region) as u32;
            return Ok(finalize_region(region, k.max(1), req));
        }
        let region = self.smallest_satisfying_square(pos, req.k, req.a_min);
        let achieved = self.grid.count_in_rect(&region) as u32;
        Ok(finalize_region(region, achieved, req))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect {
        Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
    }

    fn populated() -> NaiveCloak {
        let mut c = NaiveCloak::new(world(), 16);
        // 10x10 regular lattice.
        for i in 0..100u64 {
            let x = 0.05 + 0.1 * (i % 10) as f64;
            let y = 0.05 + 0.1 * (i / 10) as f64;
            c.upsert(i, Point::new(x, y));
        }
        c
    }

    #[test]
    fn unknown_user_errors() {
        let c = NaiveCloak::new(world(), 4);
        assert_eq!(
            c.cloak(9, &CloakRequirement::k_only(2)),
            Err(CloakError::UnknownUser(9))
        );
    }

    #[test]
    fn no_privacy_returns_exact_point() {
        let c = populated();
        let r = c.cloak(0, &CloakRequirement::none()).unwrap();
        assert_eq!(r.region, Rect::from_point(Point::new(0.05, 0.05)));
        assert!(r.fully_satisfied());
    }

    #[test]
    fn k_anonymity_is_achieved_and_user_is_centered() {
        let c = populated();
        for k in [2u32, 5, 10, 25] {
            let r = c.cloak(55, &CloakRequirement::k_only(k)).unwrap();
            assert!(r.k_satisfied, "k={k}");
            assert!(r.achieved_k >= k);
            assert_eq!(
                c.count_in_region(&r.region) as u32,
                r.achieved_k,
                "reported k matches an exact recount"
            );
            // The leak: user 55 at (0.55, 0.55) is the region center.
            let center = r.region.center();
            assert!(center.dist(Point::new(0.55, 0.55)) < 1e-6, "k={k}");
        }
    }

    #[test]
    fn a_min_is_respected() {
        let c = populated();
        let req = CloakRequirement {
            k: 2,
            a_min: 0.09,
            a_max: f64::INFINITY,
        };
        let r = c.cloak(55, &req).unwrap();
        assert!(r.area() >= 0.09 - 1e-9);
        assert!(r.fully_satisfied());
    }

    #[test]
    fn contradictory_a_max_yields_best_effort() {
        let c = populated();
        // k=50 needs a big square; a_max of 0.01 cannot hold 50 users.
        let req = CloakRequirement {
            k: 50,
            a_min: 0.0,
            a_max: 0.01,
        };
        let r = c.cloak(55, &req).unwrap();
        assert!(r.k_satisfied, "k has priority (paper requirement 1)");
        assert!(!r.area_satisfied);
        assert!(!r.fully_satisfied());
    }

    #[test]
    fn k_larger_than_population_returns_world() {
        let c = populated();
        let r = c.cloak(0, &CloakRequirement::k_only(1000)).unwrap();
        assert_eq!(r.region, world());
        assert!(!r.k_satisfied);
        assert_eq!(r.achieved_k, 100);
    }

    #[test]
    fn region_is_tight() {
        // The returned square should be close to minimal: shrinking it
        // slightly should violate the requirement.
        let c = populated();
        let req = CloakRequirement::k_only(10);
        let r = c.cloak(55, &req).unwrap();
        let shrunk = r.region.shrunk(r.region.width() * 0.02);
        assert!(
            c.count_in_region(&shrunk) < 10,
            "2% smaller square no longer holds k users"
        );
    }

    #[test]
    fn near_border_region_is_clipped_into_world() {
        let c = populated();
        // User 0 sits at (0.05, 0.05), close to the corner.
        let r = c.cloak(0, &CloakRequirement::k_only(20)).unwrap();
        assert!(world().contains_rect(&r.region));
        assert!(r.k_satisfied);
    }

    #[test]
    fn upsert_and_remove_affect_population() {
        let mut c = NaiveCloak::new(world(), 4);
        c.upsert(1, Point::new(0.5, 0.5));
        assert_eq!(c.population(), 1);
        assert_eq!(c.location(1), Some(Point::new(0.5, 0.5)));
        c.upsert(1, Point::new(0.6, 0.6));
        assert_eq!(c.population(), 1);
        assert!(c.remove(1));
        assert!(!c.remove(1));
        assert_eq!(c.population(), 0);
    }
}
