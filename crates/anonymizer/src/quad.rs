//! Space-dependent quadtree cloaking (Fig. 4a).
//!
//! "The location anonymizer starts from the whole space and checks if it
//! satisfies the mobile user requirements ... [and] will keep
//! partitioning the space into four quadrants till it encounters a
//! quadrant that does not satisfy the user requirements. In this case,
//! the latest quadrant that has satisfied the user requirements is
//! returned as the spatial cloaked area." — Sec. 5.2
//!
//! We run the equivalent bottom-up search over a [`PyramidGrid`] (the
//! Casper formulation): start at the leaf cell containing the user and
//! climb until the cell satisfies `(k, A_min)`. Because cell boundaries
//! are fixed in space, the returned region is a function of *which cell*
//! the user occupies, never of the exact position inside it — this is
//! what defeats reverse engineering ("it is almost impossible to reveal
//! any information about the exact location information").
//!
//! An optional *neighbor merge* first tries the union of the cell with
//! its horizontal or vertical sibling before climbing a full level — the
//! optimization the follow-up Casper system adopted — which shrinks
//! cloaks by up to 2× at the same privacy level (measured in E4).

use crate::cloak::{finalize_region, CloakRequirement, CloakedRegion, CloakingAlgorithm};
use crate::{CloakError, UserId};
use lbsp_geom::{Point, Rect};
use lbsp_index::{PyramidCell, PyramidGrid};

/// Bottom-up pyramid (quadtree) cloak.
#[derive(Debug, Clone)]
pub struct QuadCloak {
    pyramid: PyramidGrid,
    neighbor_merge: bool,
}

impl QuadCloak {
    /// Creates the cloak over `world` with a pyramid of `levels + 1`
    /// levels (bottom grid `2^levels × 2^levels`).
    pub fn new(world: Rect, levels: u8) -> QuadCloak {
        QuadCloak {
            pyramid: PyramidGrid::new(world, levels),
            neighbor_merge: false,
        }
    }

    /// Enables the two-cell neighbor-merge optimization.
    pub fn with_neighbor_merge(mut self, enabled: bool) -> QuadCloak {
        self.neighbor_merge = enabled;
        self
    }

    /// `true` when neighbor merging is enabled.
    pub fn neighbor_merge_enabled(&self) -> bool {
        self.neighbor_merge
    }

    /// Tries merging `cell` with its sibling along one axis; returns the
    /// satisfying merged rect with its count when one exists. Only
    /// siblings within the same parent are considered, so the merged
    /// region is still a deterministic function of the cell.
    fn try_neighbor_merge(&self, cell: PyramidCell, req: &CloakRequirement) -> Option<(Rect, u32)> {
        if cell.level == 0 {
            return None;
        }
        // Sibling along x: flip the low bit of ix; same for y.
        let sib_x = PyramidCell {
            ix: cell.ix ^ 1,
            ..cell
        };
        let sib_y = PyramidCell {
            iy: cell.iy ^ 1,
            ..cell
        };
        let mut best: Option<(Rect, u32)> = None;
        for sib in [sib_x, sib_y] {
            let count = self.pyramid.count(cell) + self.pyramid.count(sib);
            let rect = self
                .pyramid
                .cell_rect(cell)
                .union(&self.pyramid.cell_rect(sib));
            if count >= req.k && rect.area() >= req.a_min {
                match &best {
                    Some((r, _)) if r.area() <= rect.area() => {}
                    _ => best = Some((rect, count)),
                }
            }
        }
        best
    }
}

impl CloakingAlgorithm for QuadCloak {
    fn name(&self) -> &'static str {
        if self.neighbor_merge {
            "quad+merge"
        } else {
            "quad"
        }
    }

    fn world(&self) -> Rect {
        self.pyramid.world()
    }

    fn upsert(&mut self, id: UserId, p: Point) {
        self.pyramid.insert(id, p);
    }

    fn remove(&mut self, id: UserId) -> bool {
        self.pyramid.remove(id).is_some()
    }

    fn location(&self, id: UserId) -> Option<Point> {
        self.pyramid.location(id)
    }

    fn population(&self) -> usize {
        self.pyramid.len()
    }

    fn count_in_region(&self, region: &Rect) -> usize {
        self.pyramid.count_in_rect(region)
    }

    /// The bottom-up climb is a pure function of the leaf cell (and the
    /// requirement), for both the plain and neighbor-merge variants.
    fn sharing_key(&self, id: UserId) -> Option<u64> {
        let p = self.pyramid.location(id)?;
        let leaf = self.pyramid.leaf_cell_of(p);
        let side = u64::from(self.pyramid.side(leaf.level));
        Some(u64::from(leaf.iy) * side + u64::from(leaf.ix))
    }

    fn cloak(&self, id: UserId, req: &CloakRequirement) -> Result<CloakedRegion, CloakError> {
        req.validate()?;
        let pos = self
            .pyramid
            .location(id)
            .ok_or(CloakError::UnknownUser(id))?;
        if !req.wants_privacy() {
            let region = Rect::from_point(pos);
            let k = self.pyramid.count_in_rect(&region) as u32;
            return Ok(finalize_region(region, k.max(1), req));
        }
        // Climb from the leaf cell toward the root.
        let mut cell = self.pyramid.leaf_cell_of(pos);
        loop {
            let count = self.pyramid.count(cell);
            let rect = self.pyramid.cell_rect(cell);
            if count >= req.k && rect.area() >= req.a_min {
                return Ok(finalize_region(rect, count, req));
            }
            if self.neighbor_merge {
                if let Some((rect, count)) = self.try_neighbor_merge(cell, req) {
                    return Ok(finalize_region(rect, count, req));
                }
            }
            if cell.level == 0 {
                // Even the whole world fails: best effort.
                return Ok(finalize_region(rect, count, req));
            }
            cell = cell.parent();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect {
        Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
    }

    fn populated(levels: u8) -> QuadCloak {
        let mut c = QuadCloak::new(world(), levels);
        for i in 0..100u64 {
            let x = 0.05 + 0.1 * (i % 10) as f64;
            let y = 0.05 + 0.1 * (i / 10) as f64;
            c.upsert(i, Point::new(x, y));
        }
        c
    }

    #[test]
    fn satisfies_k_with_cell_aligned_region() {
        let c = populated(5);
        for k in [2u32, 10, 50] {
            let r = c.cloak(55, &CloakRequirement::k_only(k)).unwrap();
            assert!(r.k_satisfied, "k={k}");
            assert!(r.achieved_k >= k);
            // Cell-aligned: width is world/2^l for some level l.
            let w = r.region.width();
            let level = (1.0 / w).log2();
            assert!(
                (level - level.round()).abs() < 1e-9,
                "width {w} is a power-of-two fraction"
            );
            assert!(r.region.contains_point(Point::new(0.55, 0.55)));
        }
    }

    #[test]
    fn region_is_position_independent_within_cell() {
        // Two users in the same leaf cell with the same requirement must
        // receive the identical region — the no-reverse-engineering
        // property.
        let mut c = QuadCloak::new(world(), 3); // leaf cells are 1/8 wide
        c.upsert(1, Point::new(0.51, 0.51));
        c.upsert(2, Point::new(0.56, 0.56)); // same 1/8-cell as user 1
        for i in 3..30u64 {
            c.upsert(i, Point::new(0.9, 0.9));
        }
        let req = CloakRequirement::k_only(2);
        let r1 = c.cloak(1, &req).unwrap();
        let r2 = c.cloak(2, &req).unwrap();
        assert_eq!(r1.region, r2.region);
    }

    #[test]
    fn a_min_forces_larger_cells() {
        let c = populated(5);
        let req = CloakRequirement {
            k: 2,
            a_min: 0.2,
            a_max: f64::INFINITY,
        };
        let r = c.cloak(55, &req).unwrap();
        assert!(r.area() >= 0.2);
        assert!(r.fully_satisfied());
    }

    #[test]
    fn impossible_k_returns_best_effort_root() {
        let c = populated(4);
        let r = c.cloak(0, &CloakRequirement::k_only(1000)).unwrap();
        assert!(!r.k_satisfied);
        assert_eq!(r.region, world());
        assert_eq!(r.achieved_k, 100);
    }

    #[test]
    fn neighbor_merge_never_larger_than_plain() {
        let plain = populated(5);
        let merged = populated(5).with_neighbor_merge(true);
        for id in [0u64, 33, 55, 99] {
            for k in [2u32, 5, 20, 60] {
                let req = CloakRequirement::k_only(k);
                let a = plain.cloak(id, &req).unwrap();
                let b = merged.cloak(id, &req).unwrap();
                assert!(b.k_satisfied == a.k_satisfied);
                assert!(
                    b.area() <= a.area() + 1e-12,
                    "id={id} k={k}: merge {} vs plain {}",
                    b.area(),
                    a.area()
                );
                assert!(b.achieved_k >= k.min(a.achieved_k));
            }
        }
    }

    #[test]
    fn merge_regions_still_contain_subject() {
        let c = populated(5).with_neighbor_merge(true);
        for id in 0..100u64 {
            let pos = c.location(id).unwrap();
            let r = c.cloak(id, &CloakRequirement::k_only(7)).unwrap();
            assert!(r.region.contains_point(pos), "id {id}");
            assert!(r.k_satisfied);
        }
    }

    #[test]
    fn no_privacy_short_circuit_and_unknown_user() {
        let c = populated(4);
        let r = c.cloak(1, &CloakRequirement::none()).unwrap();
        assert_eq!(r.area(), 0.0);
        assert!(matches!(
            c.cloak(555, &CloakRequirement::k_only(5)),
            Err(CloakError::UnknownUser(555))
        ));
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(QuadCloak::new(world(), 3).name(), "quad");
        assert_eq!(
            QuadCloak::new(world(), 3).with_neighbor_merge(true).name(),
            "quad+merge"
        );
    }
}
