//! Protection-level billing.
//!
//! Sec. 5 of the paper: "similar to the proposed model in [14] [Duri et
//! al., *Data Protection and Data Sharing in Telematics*], the location
//! anonymizer may charge the mobile users based on their required
//! protection level." This module implements that accounting: a tariff
//! maps each cloak's requirement to a price, and the ledger accumulates
//! charges per user.

use crate::{CloakRequirement, UserId};
use std::collections::HashMap;

/// A pricing scheme over privacy requirements.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Tariff {
    /// Flat price per cloaked update.
    pub base: f64,
    /// Additional price per unit of `log2(k)` — anonymity is priced by
    /// the bits of identity hidden.
    pub per_k_bit: f64,
    /// Additional price per unit of requested minimum area.
    pub per_area: f64,
}

impl Default for Tariff {
    fn default() -> Self {
        Tariff {
            base: 0.001,
            per_k_bit: 0.002,
            per_area: 0.01,
        }
    }
}

impl Tariff {
    /// Price of one cloaked update under `req`.
    pub fn price(&self, req: &CloakRequirement) -> f64 {
        let k_bits = f64::from(req.k.max(1)).log2();
        let area = if req.a_min.is_finite() {
            req.a_min
        } else {
            0.0
        };
        self.base + self.per_k_bit * k_bits + self.per_area * area
    }
}

/// Per-user usage ledger.
#[derive(Debug, Clone, Default)]
pub struct Billing {
    tariff: Tariff,
    charges: HashMap<UserId, (u64, f64)>,
}

impl Billing {
    /// Creates a ledger with the given tariff.
    pub fn new(tariff: Tariff) -> Billing {
        Billing {
            tariff,
            charges: HashMap::new(),
        }
    }

    /// The tariff in force.
    pub fn tariff(&self) -> Tariff {
        self.tariff
    }

    /// Records one cloaked update for `user` under `req`; returns the
    /// price charged.
    pub fn record(&mut self, user: UserId, req: &CloakRequirement) -> f64 {
        let price = self.tariff.price(req);
        let entry = self.charges.entry(user).or_insert((0, 0.0));
        entry.0 += 1;
        entry.1 += price;
        price
    }

    /// `(cloaks, total)` statement for a user.
    pub fn statement(&self, user: UserId) -> (u64, f64) {
        self.charges.get(&user).copied().unwrap_or((0, 0.0))
    }

    /// Total revenue across users.
    pub fn revenue(&self) -> f64 {
        self.charges.values().map(|(_, total)| total).sum()
    }

    /// Number of users with any charge.
    pub fn billed_users(&self) -> usize {
        self.charges.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn price_grows_with_protection_level() {
        let t = Tariff::default();
        let none = t.price(&CloakRequirement::none());
        let k10 = t.price(&CloakRequirement::k_only(10));
        let k1000 = t.price(&CloakRequirement::k_only(1000));
        let with_area = t.price(&CloakRequirement {
            k: 10,
            a_min: 2.0,
            a_max: f64::INFINITY,
        });
        assert!(none < k10 && k10 < k1000, "{none} {k10} {k1000}");
        assert!(with_area > k10);
        // k=1 has zero anonymity surcharge.
        assert!((none - t.base).abs() < 1e-12);
        // Infinite a_max never bills (only a_min is a demand).
        assert!(t
            .price(&CloakRequirement {
                k: 1,
                a_min: 0.0,
                a_max: f64::INFINITY
            })
            .is_finite());
    }

    #[test]
    fn ledger_accumulates_per_user() {
        let mut b = Billing::new(Tariff::default());
        let cheap = CloakRequirement::k_only(2);
        let pricey = CloakRequirement::k_only(1024);
        let p1 = b.record(1, &cheap);
        let p2 = b.record(1, &cheap);
        let p3 = b.record(2, &pricey);
        assert!((p1 - p2).abs() < 1e-12);
        assert!(p3 > p1);
        let (n1, t1) = b.statement(1);
        assert_eq!(n1, 2);
        assert!((t1 - 2.0 * p1).abs() < 1e-12);
        assert_eq!(b.statement(3), (0, 0.0));
        assert_eq!(b.billed_users(), 2);
        assert!((b.revenue() - (t1 + p3)).abs() < 1e-12);
    }

    #[test]
    fn paper_profile_prices_rank_correctly() {
        // The three entries of Fig. 2 must be priced in increasing
        // order of restrictiveness.
        let t = Tariff::default();
        let p = crate::PrivacyProfile::paper_example();
        let day = t.price(&p.requirement_at(lbsp_geom::TimeOfDay::new(12, 0).unwrap()));
        let evening = t.price(&p.requirement_at(lbsp_geom::TimeOfDay::new(19, 0).unwrap()));
        let night = t.price(&p.requirement_at(lbsp_geom::TimeOfDay::new(3, 0).unwrap()));
        assert!(day < evening && evening < night, "{day} {evening} {night}");
    }
}
