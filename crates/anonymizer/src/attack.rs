//! Reverse-engineering attack models (requirement 2 of Sec. 5).
//!
//! The paper requires that "an adversary should not be able to do reverse
//! engineering to know the exact user location from the spatial cloaked
//! area", and argues informally that both data-dependent cloaks leak:
//! the naive cloak puts the user at the region's center (Fig. 3a) and
//! the MBR cloak puts some user on every edge (Fig. 3b). This module
//! turns those arguments into measurable adversaries so the E3/E4
//! experiments can report leakage numbers.
//!
//! All attacks see exactly what the database server sees — the cloaked
//! rectangle — plus knowledge of which algorithm produced it (Kerckhoffs'
//! principle). Success is judged against the subject's true location.

use crate::cloak::CloakedRegion;
use lbsp_geom::Point;

/// Outcome of running an attack over many cloaks.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct AttackReport {
    /// Number of cloaked regions attacked.
    pub trials: usize,
    /// Number of trials where the attack pinpointed the user (see each
    /// attack's success criterion).
    pub successes: usize,
    /// Mean of `guess_error / region_half_diagonal` over all trials —
    /// 0 means the guess is always exact, ~0.5 is what blind guessing of
    /// the center achieves against a uniformly placed user.
    pub mean_normalized_error: f64,
}

impl AttackReport {
    /// Success rate in `[0, 1]`.
    pub fn success_rate(&self) -> f64 {
        if self.trials == 0 {
            0.0
        } else {
            self.successes as f64 / self.trials as f64
        }
    }

    fn accumulate(&mut self, success: bool, normalized_error: f64) {
        self.trials += 1;
        if success {
            self.successes += 1;
        }
        // Streaming mean.
        let n = self.trials as f64;
        self.mean_normalized_error += (normalized_error - self.mean_normalized_error) / n;
    }
}

/// The center-of-region attack: guess that the user sits at the center
/// of the cloaked rectangle.
///
/// Defeats the naive cloak completely (success rate ≈ 1); against
/// space-dependent cloaks it degenerates to blind guessing.
#[derive(Debug, Clone, Copy)]
pub struct CenterAttack {
    /// A guess within this distance of the true location counts as a
    /// pinpoint (absolute world units).
    pub epsilon: f64,
}

impl Default for CenterAttack {
    fn default() -> Self {
        // One part in 10^6 of a unit world: far below any cell size.
        CenterAttack { epsilon: 1e-6 }
    }
}

impl CenterAttack {
    /// The adversary's location guess for one cloak.
    pub fn guess(&self, cloak: &CloakedRegion) -> Point {
        cloak.region.center()
    }

    /// Attacks one cloak given the ground-truth subject location.
    pub fn attack_one(&self, cloak: &CloakedRegion, truth: Point) -> (bool, f64) {
        let guess = self.guess(cloak);
        let err = guess.dist(truth);
        let half_diag = cloak.region.half_diagonal();
        let norm = if half_diag > 0.0 {
            err / half_diag
        } else {
            0.0
        };
        (err <= self.epsilon, norm)
    }

    /// Attacks a batch of `(cloak, truth)` pairs.
    pub fn attack_all<'a, I>(&self, cases: I) -> AttackReport
    where
        I: IntoIterator<Item = (&'a CloakedRegion, Point)>,
    {
        let mut report = AttackReport::default();
        for (cloak, truth) in cases {
            let (ok, norm) = self.attack_one(cloak, truth);
            report.accumulate(ok, norm);
        }
        report
    }
}

/// The boundary attack against MBR-style cloaks: guess that the user
/// lies on the boundary of the rectangle, and measure how often that is
/// true.
///
/// Success means the subject's true location is within `tolerance` of
/// the region's boundary. The paper predicts success probability ≈
/// `min(1, 4/k)` for the MBR cloak (at least one point per edge among k)
/// and ≈ 0 for space-dependent cloaks.
#[derive(Debug, Clone, Copy)]
pub struct BoundaryAttack {
    /// Distance from the boundary that still counts as "on" it.
    pub tolerance: f64,
}

impl Default for BoundaryAttack {
    fn default() -> Self {
        BoundaryAttack { tolerance: 1e-9 }
    }
}

impl BoundaryAttack {
    /// Attacks one cloak; the error term is the normalized distance from
    /// the subject to the nearest boundary point (0 when on it).
    pub fn attack_one(&self, cloak: &CloakedRegion, truth: Point) -> (bool, f64) {
        let r = &cloak.region;
        let on = r.on_boundary(truth, self.tolerance);
        // Distance from the subject to the nearest edge, for the error
        // metric (only meaningful when the subject is inside).
        let dx = (truth.x - r.min_x()).abs().min((truth.x - r.max_x()).abs());
        let dy = (truth.y - r.min_y()).abs().min((truth.y - r.max_y()).abs());
        let d = dx.min(dy);
        let half = 0.5 * r.width().min(r.height());
        let norm = if half > 0.0 { (d / half).min(1.0) } else { 0.0 };
        (on, norm)
    }

    /// Attacks a batch of `(cloak, truth)` pairs.
    pub fn attack_all<'a, I>(&self, cases: I) -> AttackReport
    where
        I: IntoIterator<Item = (&'a CloakedRegion, Point)>,
    {
        let mut report = AttackReport::default();
        for (cloak, truth) in cases {
            let (ok, norm) = self.attack_one(cloak, truth);
            report.accumulate(ok, norm);
        }
        report
    }
}

/// The occupancy (background-knowledge) attack: the strongest
/// single-snapshot adversary k-anonymity is defined against.
///
/// This adversary knows *every* user's exact location (say, from an
/// auxiliary dataset) but not which of them issued the cloaked message.
/// Its best strategy is to guess uniformly among the region's occupants,
/// succeeding with probability `1 / occupants`. Measuring this ties the
/// system's privacy directly to `achieved_k`: a cloak is worth exactly
/// as much as the number of users actually inside it, which is why the
/// anonymizer reports honest `achieved_k` values rather than the
/// requested `k`.
#[derive(Debug, Clone, Copy, Default)]
pub struct OccupancyAttack;

impl OccupancyAttack {
    /// Evaluates the attack against one cloak, given all user positions
    /// (the background knowledge). Returns `(success_probability,
    /// occupants)` — the probability the uniform guess names the subject.
    ///
    /// A region with no occupants (stale snapshot) yields probability 0.
    pub fn attack_one(
        &self,
        cloak: &crate::cloak::CloakedRegion,
        all_positions: &[lbsp_geom::Point],
    ) -> (f64, usize) {
        let occupants = all_positions
            .iter()
            .filter(|p| cloak.region.contains_point(**p))
            .count();
        if occupants == 0 {
            (0.0, 0)
        } else {
            (1.0 / occupants as f64, occupants)
        }
    }

    /// Mean success probability over a batch of cloaks.
    pub fn attack_all(
        &self,
        cloaks: &[crate::cloak::CloakedRegion],
        all_positions: &[lbsp_geom::Point],
    ) -> f64 {
        if cloaks.is_empty() {
            return 0.0;
        }
        cloaks
            .iter()
            .map(|c| self.attack_one(c, all_positions).0)
            .sum::<f64>()
            / cloaks.len() as f64
    }
}

/// The region-intersection (correlation) attack — an extension beyond
/// the paper's single-snapshot adversaries.
///
/// A pseudonym's successive cloaked regions all contain the user, so an
/// adversary who watches the stream can intersect them: if the user
/// moves little while the regions vary, the intersection shrinks toward
/// the true location. This quantifies a real tension in Sec. 5.3: a
/// *cached* (incremental) cloak re-sends the identical region — the
/// intersection never shrinks — while eager per-update recomputation
/// can leak more over time. (The full treatment belongs to the
/// trajectory-privacy literature the paper cites as [9, 19].)
#[derive(Debug, Clone, Copy, Default)]
pub struct IntersectionAttack;

/// Outcome of intersecting a pseudonym's cloak trace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IntersectionReport {
    /// Area of the first region in the trace.
    pub initial_area: f64,
    /// Area of the intersection of all regions (0 when it collapses).
    pub final_area: f64,
    /// Whether the user's final true position is inside the
    /// intersection (it must be, whenever the user stayed put; motion
    /// can move them out, which *helps* privacy).
    pub contains_truth: bool,
}

impl IntersectionReport {
    /// How much of the initial uncertainty survived, in `[0, 1]`.
    pub fn area_ratio(&self) -> f64 {
        if self.initial_area <= 0.0 {
            0.0
        } else {
            (self.final_area / self.initial_area).clamp(0.0, 1.0)
        }
    }
}

impl IntersectionAttack {
    /// Intersects a cloak trace for one pseudonym and evaluates against
    /// the user's final true position.
    pub fn attack_trace(
        &self,
        trace: &[crate::cloak::CloakedRegion],
        final_truth: lbsp_geom::Point,
    ) -> Option<IntersectionReport> {
        let first = trace.first()?;
        let mut inter = Some(first.region);
        for c in &trace[1..] {
            inter = inter.and_then(|r| r.intersection(&c.region));
        }
        Some(IntersectionReport {
            initial_area: first.region.area(),
            final_area: inter.map_or(0.0, |r| r.area()),
            contains_truth: inter.is_some_and(|r| r.contains_point(final_truth)),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloak::CloakRequirement;
    use crate::{CloakingAlgorithm, IncrementalCloaker, MbrCloak, NaiveCloak, QuadCloak};
    use lbsp_geom::Rect;
    use rand::rngs::StdRng;
    use rand::{RngExt as _, SeedableRng};

    fn world() -> Rect {
        Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
    }

    fn random_positions(n: usize, seed: u64) -> Vec<Point> {
        let mut rng = StdRng::seed_from_u64(seed);
        (0..n)
            .map(|_| Point::new(rng.random_range(0.05..0.95), rng.random_range(0.05..0.95)))
            .collect()
    }

    #[test]
    fn center_attack_breaks_naive_cloak() {
        // Dense population so cloaks are small and rarely clipped by the
        // world border (clipping is the only thing that moves the user
        // off-center).
        let positions = random_positions(1000, 1);
        let mut algo = NaiveCloak::new(world(), 32);
        for (i, p) in positions.iter().enumerate() {
            algo.upsert(i as u64, *p);
        }
        let req = CloakRequirement::k_only(5);
        let cloaks: Vec<_> = (0..1000u64)
            .map(|id| algo.cloak(id, &req).unwrap())
            .collect();
        let report =
            CenterAttack::default().attack_all(cloaks.iter().zip(positions.iter().copied()));
        assert!(
            report.success_rate() > 0.9,
            "success {}",
            report.success_rate()
        );
        assert!(report.mean_normalized_error < 0.05);
    }

    #[test]
    fn center_attack_fails_against_quadtree_cloak() {
        let positions = random_positions(200, 2);
        let mut algo = QuadCloak::new(world(), 6);
        for (i, p) in positions.iter().enumerate() {
            algo.upsert(i as u64, *p);
        }
        let req = CloakRequirement::k_only(10);
        let cloaks: Vec<_> = (0..200u64)
            .map(|id| algo.cloak(id, &req).unwrap())
            .collect();
        let report =
            CenterAttack::default().attack_all(cloaks.iter().zip(positions.iter().copied()));
        assert_eq!(
            report.successes, 0,
            "no pinpoint against cell-aligned cloaks"
        );
        // Error comparable to blind guessing.
        assert!(report.mean_normalized_error > 0.2);
    }

    #[test]
    fn boundary_attack_hits_mbr_more_than_quad() {
        let positions = random_positions(300, 3);
        let mut mbr = MbrCloak::new(world(), 32);
        let mut quad = QuadCloak::new(world(), 6);
        for (i, p) in positions.iter().enumerate() {
            mbr.upsert(i as u64, *p);
            quad.upsert(i as u64, *p);
        }
        let req = CloakRequirement::k_only(5);
        let attack = BoundaryAttack::default();
        let mbr_cloaks: Vec<_> = (0..300u64).map(|id| mbr.cloak(id, &req).unwrap()).collect();
        let quad_cloaks: Vec<_> = (0..300u64)
            .map(|id| quad.cloak(id, &req).unwrap())
            .collect();
        let mbr_report = attack.attack_all(mbr_cloaks.iter().zip(positions.iter().copied()));
        let quad_report = attack.attack_all(quad_cloaks.iter().zip(positions.iter().copied()));
        // The paper predicts boundary leakage for small k. Note the
        // subject is the *center* of its own k-NN ball, so it lands on
        // the boundary less often than an exchangeable member would
        // (4/k); what matters is the gap to the space-dependent cloak.
        assert!(
            mbr_report.success_rate() > 0.15,
            "mbr boundary rate {}",
            mbr_report.success_rate()
        );
        assert!(
            quad_report.success_rate() < 0.02,
            "quad boundary rate {}",
            quad_report.success_rate()
        );
        assert!(mbr_report.success_rate() > 10.0 * quad_report.success_rate().max(1e-3));
    }

    #[test]
    fn boundary_attack_is_certain_for_k2_mbr() {
        // k = 2: the MBR spans subject + one neighbor, both at corners —
        // the subject is ALWAYS on the boundary (the paper's sharpest
        // small-k case).
        let positions = random_positions(100, 4);
        let mut mbr = MbrCloak::new(world(), 16);
        for (i, p) in positions.iter().enumerate() {
            mbr.upsert(i as u64, *p);
        }
        let req = CloakRequirement::k_only(2);
        let cloaks: Vec<_> = (0..100u64).map(|id| mbr.cloak(id, &req).unwrap()).collect();
        let report =
            BoundaryAttack::default().attack_all(cloaks.iter().zip(positions.iter().copied()));
        assert_eq!(report.successes, report.trials);
    }

    #[test]
    fn report_math() {
        let mut r = AttackReport::default();
        r.accumulate(true, 0.0);
        r.accumulate(false, 1.0);
        assert_eq!(r.trials, 2);
        assert_eq!(r.successes, 1);
        assert!((r.success_rate() - 0.5).abs() < 1e-12);
        assert!((r.mean_normalized_error - 0.5).abs() < 1e-12);
        assert_eq!(AttackReport::default().success_rate(), 0.0);
    }

    #[test]
    fn intersection_attack_on_static_user_with_mbr_cloak() {
        // A stationary user whose neighbors move: every MBR recompute
        // yields a different region, and their intersection closes in.
        let mut mbr = MbrCloak::new(world(), 16);
        let subject = Point::new(0.5, 0.5);
        mbr.upsert(0, subject);
        for i in 1..40u64 {
            mbr.upsert(i, Point::new(0.3 + 0.01 * i as f64, 0.55));
        }
        let req = CloakRequirement::k_only(8);
        let mut trace = Vec::new();
        for round in 0..10 {
            // Neighbors drift; subject stays.
            for i in 1..40u64 {
                let x = 0.3 + 0.01 * ((i + round) % 40) as f64;
                mbr.upsert(i, Point::new(x, 0.55 - 0.002 * round as f64));
            }
            trace.push(mbr.cloak(0, &req).unwrap());
        }
        let report = IntersectionAttack
            .attack_trace(&trace, subject)
            .expect("non-empty trace");
        assert!(report.contains_truth, "static user stays in every region");
        assert!(
            report.area_ratio() < 0.9,
            "varying regions leak: ratio {}",
            report.area_ratio()
        );
    }

    #[test]
    fn incremental_caching_blocks_intersection_refinement() {
        // The same scenario through an IncrementalCloaker: cache hits
        // re-send the identical region, so the intersection cannot
        // shrink below the cached region itself.
        let mut quad = QuadCloak::new(world(), 6);
        let subject = Point::new(0.51, 0.51);
        quad.upsert(0, subject);
        for i in 1..30u64 {
            quad.upsert(i, Point::new(0.52, 0.52));
        }
        let mut inc = IncrementalCloaker::new(quad, 1000);
        let req = CloakRequirement::k_only(10);
        let mut trace = Vec::new();
        for _ in 0..10 {
            trace.push(inc.update_and_cloak(0, subject, &req).unwrap());
        }
        assert!(inc.stats().hits >= 9, "stationary user hits the cache");
        let report = IntersectionAttack.attack_trace(&trace, subject).unwrap();
        assert_eq!(
            report.area_ratio(),
            1.0,
            "identical regions give the adversary nothing new"
        );
        assert!(report.contains_truth);
    }

    #[test]
    fn occupancy_attack_success_is_inverse_achieved_k() {
        let positions = random_positions(500, 8);
        let mut quad = QuadCloak::new(world(), 6);
        for (i, p) in positions.iter().enumerate() {
            quad.upsert(i as u64, *p);
        }
        let req = CloakRequirement::k_only(20);
        let attack = OccupancyAttack;
        for id in (0..500u64).step_by(17) {
            let cloak = quad.cloak(id, &req).unwrap();
            let (p, occupants) = attack.attack_one(&cloak, &positions);
            assert_eq!(occupants as u32, cloak.achieved_k);
            assert!((p - 1.0 / cloak.achieved_k as f64).abs() < 1e-12);
            assert!(p <= 1.0 / 20.0 + 1e-12, "k=20 bounds the adversary at 5%");
        }
        // Batch mean respects the k bound too.
        let cloaks: Vec<_> = (0..500u64)
            .step_by(10)
            .map(|id| quad.cloak(id, &req).unwrap())
            .collect();
        let mean = attack.attack_all(&cloaks, &positions);
        assert!(mean <= 0.05 + 1e-9);
        assert!(mean > 0.0);
    }

    #[test]
    fn occupancy_attack_edge_cases() {
        let attack = OccupancyAttack;
        let cloak = CloakedRegion {
            region: Rect::new_unchecked(0.0, 0.0, 0.1, 0.1),
            achieved_k: 0,
            k_satisfied: false,
            area_satisfied: true,
        };
        // No occupants (stale region): probability 0.
        assert_eq!(attack.attack_one(&cloak, &[Point::new(0.9, 0.9)]), (0.0, 0));
        // Single occupant: certainty.
        let (p, n) = attack.attack_one(&cloak, &[Point::new(0.05, 0.05)]);
        assert_eq!((p, n), (1.0, 1));
        assert_eq!(attack.attack_all(&[], &[]), 0.0);
    }

    #[test]
    fn intersection_attack_empty_trace() {
        assert!(IntersectionAttack
            .attack_trace(&[], Point::ORIGIN)
            .is_none());
    }

    #[test]
    fn degenerate_region_attacks() {
        let cloak = CloakedRegion {
            region: Rect::from_point(Point::new(0.3, 0.3)),
            achieved_k: 1,
            k_satisfied: true,
            area_satisfied: true,
        };
        // A degenerate region IS the user: center attack trivially wins.
        let (ok, norm) = CenterAttack::default().attack_one(&cloak, Point::new(0.3, 0.3));
        assert!(ok);
        assert_eq!(norm, 0.0);
    }
}
