//! Hilbert-curve cloaking with the reciprocity guarantee.
//!
//! A baseline from the same research wave as the paper (Kalnis et al.'s
//! HilbASR): map every user to a Hilbert index, sort, and cut the order
//! into consecutive buckets of `k`. A user's cloak is the MBR of its
//! bucket. Because the bucketing depends only on the *order* — not on
//! who asked — every member of a bucket receives the identical region.
//! That is *reciprocity*: the anonymity set of a query is exactly its
//! bucket, so the adversary's posterior over "who issued this" is
//! uniform over ≥ k users even with full background knowledge.
//!
//! Where it sits in the paper's taxonomy (Sec. 5): the bucket MBR is
//! data-dependent geometry, so like the MBR cloak it leaks *positional*
//! hints (some user lies on each MBR edge — visible in E4's boundary
//! column); but unlike the MBR cloak its *identity* anonymity is exactly
//! k by construction. The comparison of the three guarantees
//! (naive: none, MBR: k-ish with boundary leak, space-dependent &
//! Hilbert: k with different leak profiles) is what E4 reports.
//!
//! Index maintenance is O(log n) per update (BTreeMap); cloaking is
//! O(log n) after an O(n) lazily-amortized rebuild of the rank array
//! whenever the population changed — the batch pattern of Sec. 5.3.

use crate::cloak::{finalize_region, CloakRequirement, CloakedRegion, CloakingAlgorithm};
use crate::{CloakError, UserId};
use lbsp_geom::{hilbert_d, Point, Rect};
use lbsp_index::UniformGrid;
use std::collections::BTreeMap;
use std::sync::RwLock;

/// Hilbert order used for indexing (2^10 × 2^10 cells is finer than any
/// realistic cloak resolution while keeping indexes in `u64`).
const ORDER: u8 = 10;

/// Hilbert-order bucketing cloak (HilbASR).
#[derive(Debug)]
pub struct HilbertCloak {
    /// Count/query structure (also the exact-location store).
    grid: UniformGrid,
    /// Users ordered along the Hilbert curve.
    order: BTreeMap<(u64, UserId), Point>,
    /// Hilbert key of each user (to locate its order entry on update).
    keys: std::collections::HashMap<UserId, u64>,
    /// Lazily rebuilt rank array: the order flattened to a Vec.
    ranks: RwLock<Option<Vec<(u64, UserId)>>>,
}

impl HilbertCloak {
    /// Creates the cloak over `world`, with a `grid_side × grid_side`
    /// counting grid.
    pub fn new(world: Rect, grid_side: u32) -> HilbertCloak {
        HilbertCloak {
            grid: UniformGrid::new(world, grid_side, grid_side),
            order: BTreeMap::new(),
            keys: std::collections::HashMap::new(),
            // lint: lock(HilbertRanks) -- leaf lock (never held across a
            // call into another lock); rank declared in lbsp_core::locks.
            ranks: RwLock::new(None),
        }
    }

    fn hilbert_key(&self, p: Point) -> u64 {
        let world = self.grid.world();
        let side = 1u32 << ORDER;
        let fx = ((p.x - world.min_x()) / world.width() * side as f64)
            .floor()
            .clamp(0.0, (side - 1) as f64) as u32;
        let fy = ((p.y - world.min_y()) / world.height() * side as f64)
            .floor()
            .clamp(0.0, (side - 1) as f64) as u32;
        hilbert_d(ORDER, fx, fy)
    }

    /// The bucket (as order ranks) containing `rank` under bucket size
    /// `k`: `[i*k, (i+1)*k)`, with the final partial bucket merged into
    /// its predecessor (standard HilbASR rule, keeps every bucket >= k).
    fn bucket_range(n: usize, k: usize, rank: usize) -> (usize, usize) {
        debug_assert!(k >= 1 && rank < n && n >= k);
        let buckets = n / k; // >= 1
        let i = (rank / k).min(buckets - 1);
        let start = i * k;
        let end = if i == buckets - 1 { n } else { start + k };
        (start, end)
    }

    fn with_ranks<T>(&self, f: impl FnOnce(&[(u64, UserId)]) -> T) -> T {
        {
            let cached = self.ranks.read().unwrap();
            if let Some(v) = cached.as_ref() {
                return f(v);
            }
        }
        let mut w = self.ranks.write().unwrap();
        let v = w.get_or_insert_with(|| self.order.keys().copied().collect());
        f(v)
    }

    fn invalidate(&mut self) {
        *self.ranks.get_mut().unwrap() = None;
    }
}

impl CloakingAlgorithm for HilbertCloak {
    fn name(&self) -> &'static str {
        "hilbert"
    }

    fn world(&self) -> Rect {
        self.grid.world()
    }

    fn upsert(&mut self, id: UserId, p: Point) {
        if let Some(old_key) = self.keys.remove(&id) {
            self.order.remove(&(old_key, id));
        }
        let key = self.hilbert_key(p);
        self.order.insert((key, id), p);
        self.keys.insert(id, key);
        self.grid.insert(id, p);
        self.invalidate();
    }

    fn remove(&mut self, id: UserId) -> bool {
        let Some(key) = self.keys.remove(&id) else {
            return false;
        };
        self.order.remove(&(key, id));
        self.grid.remove(id);
        self.invalidate();
        true
    }

    fn location(&self, id: UserId) -> Option<Point> {
        self.grid.location(id)
    }

    fn population(&self) -> usize {
        self.grid.len()
    }

    fn count_in_region(&self, region: &Rect) -> usize {
        self.grid.count_in_rect(region)
    }

    fn cloak(&self, id: UserId, req: &CloakRequirement) -> Result<CloakedRegion, CloakError> {
        req.validate()?;
        let pos = self.grid.location(id).ok_or(CloakError::UnknownUser(id))?;
        if !req.wants_privacy() {
            let region = Rect::from_point(pos);
            let k = self.grid.count_in_rect(&region) as u32;
            return Ok(finalize_region(region, k.max(1), req));
        }
        let key = *self.keys.get(&id).expect("location implies key");
        let k = req.k as usize;
        let n = self.population();
        if n < k {
            // Best effort: everyone is in one bucket (the whole order).
            let mbr = Rect::mbr_of_points(self.order.values().copied())
                .unwrap_or_else(|| Rect::from_point(pos));
            let achieved = self.grid.count_in_rect(&mbr) as u32;
            return Ok(finalize_region(mbr, achieved, req));
        }
        let region = self.with_ranks(|ranks| {
            let rank = ranks
                .binary_search(&(key, id))
                .expect("order and keys are in sync");
            let (start, end) = Self::bucket_range(n, k, rank);
            Rect::mbr_of_points(
                ranks[start..end]
                    .iter()
                    .map(|(hkey, uid)| self.order[&(*hkey, *uid)]),
            )
            .expect("bucket is non-empty")
        });
        // Deterministic a_min padding preserves reciprocity: it is a
        // function of the bucket MBR alone.
        let region = pad_rect_to_area(region, req.a_min, &self.grid.world());
        let achieved = self.grid.count_in_rect(&region) as u32;
        Ok(finalize_region(region, achieved, req))
    }
}

/// Symmetric padding of `r` to reach `a_min`, clipped to `world`
/// (iterating like `MbrCloak` so corners converge).
fn pad_rect_to_area(mut r: Rect, a_min: f64, world: &Rect) -> Rect {
    for _ in 0..64 {
        if r.area() >= a_min * (1.0 - 1e-12) || r == *world {
            break;
        }
        let w = r.width();
        let h = r.height();
        let b = 2.0 * (w + h);
        let c = w * h - a_min;
        let disc = (b * b - 16.0 * c).max(0.0);
        let p = ((-b + disc.sqrt()) / 8.0).max(0.0);
        if p <= 0.0 {
            break;
        }
        r = r.expanded(p).expect("pad non-negative").clamped_to(world);
    }
    r
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect {
        Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
    }

    fn populated() -> HilbertCloak {
        let mut c = HilbertCloak::new(world(), 16);
        for i in 0..100u64 {
            let x = 0.05 + 0.1 * (i % 10) as f64;
            let y = 0.05 + 0.1 * (i / 10) as f64;
            c.upsert(i, Point::new(x, y));
        }
        c
    }

    #[test]
    fn k_is_satisfied_and_subject_contained() {
        let c = populated();
        for k in [2u32, 7, 20, 50] {
            for id in [0u64, 33, 99] {
                let r = c.cloak(id, &CloakRequirement::k_only(k)).unwrap();
                assert!(r.k_satisfied, "k={k} id={id}");
                assert!(r.achieved_k >= k);
                assert!(r.region.contains_point(c.location(id).unwrap()));
            }
        }
    }

    #[test]
    fn reciprocity_same_bucket_same_region() {
        let c = populated();
        let req = CloakRequirement::k_only(10);
        // Collect each user's region; regions must form exactly
        // ceil-partitioned groups where every member shares the region
        // and every group holds >= 10 users.
        let mut by_region: std::collections::HashMap<String, Vec<u64>> =
            std::collections::HashMap::new();
        for id in 0..100u64 {
            let r = c.cloak(id, &req).unwrap();
            by_region
                .entry(format!("{:?}", r.region))
                .or_default()
                .push(id);
        }
        assert_eq!(by_region.len(), 10, "100 users / k=10 = 10 buckets");
        for (region, members) in &by_region {
            assert!(
                members.len() >= 10,
                "bucket {region} has only {}",
                members.len()
            );
        }
    }

    #[test]
    fn final_partial_bucket_merges() {
        let mut c = HilbertCloak::new(world(), 8);
        // 25 users, k = 10: buckets of 10, 10, and 5 -> the 5 merge into
        // the second bucket (15 members).
        for i in 0..25u64 {
            c.upsert(i, Point::new(0.04 * i as f64 + 0.01, 0.5));
        }
        let req = CloakRequirement::k_only(10);
        let mut sizes: std::collections::HashMap<String, usize> = Default::default();
        for id in 0..25u64 {
            let r = c.cloak(id, &req).unwrap();
            *sizes.entry(format!("{:?}", r.region)).or_default() += 1;
        }
        let mut counts: Vec<usize> = sizes.values().copied().collect();
        counts.sort_unstable();
        assert_eq!(counts, vec![10, 15]);
    }

    #[test]
    fn population_below_k_is_best_effort() {
        let mut c = HilbertCloak::new(world(), 8);
        c.upsert(1, Point::new(0.2, 0.2));
        c.upsert(2, Point::new(0.8, 0.8));
        let r = c.cloak(1, &CloakRequirement::k_only(5)).unwrap();
        assert!(!r.k_satisfied);
        assert_eq!(r.achieved_k, 2);
        assert!(r.region.contains_point(Point::new(0.2, 0.2)));
        assert!(r.region.contains_point(Point::new(0.8, 0.8)));
    }

    #[test]
    fn updates_reorder_buckets() {
        let mut c = populated();
        let req = CloakRequirement::k_only(10);
        let before = c.cloak(0, &req).unwrap();
        // Move user 0 across the world; its bucket must change.
        c.upsert(0, Point::new(0.95, 0.95));
        let after = c.cloak(0, &req).unwrap();
        assert_ne!(before.region, after.region);
        assert!(after.region.contains_point(Point::new(0.95, 0.95)));
        assert!(after.k_satisfied);
        // Removal keeps the rest consistent.
        assert!(c.remove(0));
        assert!(!c.remove(0));
        let r = c.cloak(1, &req).unwrap();
        assert!(r.k_satisfied);
    }

    #[test]
    fn a_min_padding_keeps_reciprocity() {
        let c = populated();
        let req = CloakRequirement {
            k: 10,
            a_min: 0.3,
            a_max: f64::INFINITY,
        };
        let r0 = c.cloak(0, &req).unwrap();
        assert!(r0.area() >= 0.3 - 1e-9);
        // A same-bucket peer gets the identical padded region. User 0's
        // bucket is its 10 nearest order-neighbors; find one.
        let mut peer = None;
        for id in 1..100u64 {
            if c.cloak(id, &req).unwrap().region == r0.region {
                peer = Some(id);
                break;
            }
        }
        assert!(peer.is_some(), "k=10 bucket has other members");
    }

    #[test]
    fn no_privacy_short_circuit_and_unknown_user() {
        let c = populated();
        assert_eq!(c.cloak(5, &CloakRequirement::none()).unwrap().area(), 0.0);
        assert!(matches!(
            c.cloak(1000, &CloakRequirement::k_only(2)),
            Err(CloakError::UnknownUser(1000))
        ));
    }

    #[test]
    fn bucket_range_math() {
        // n=25, k=10: ranks 0..9 -> [0,10), 10..24 -> [10,25).
        assert_eq!(HilbertCloak::bucket_range(25, 10, 0), (0, 10));
        assert_eq!(HilbertCloak::bucket_range(25, 10, 9), (0, 10));
        assert_eq!(HilbertCloak::bucket_range(25, 10, 10), (10, 25));
        assert_eq!(HilbertCloak::bucket_range(25, 10, 24), (10, 25));
        // Exact division.
        assert_eq!(HilbertCloak::bucket_range(20, 10, 19), (10, 20));
        // n == k: one bucket.
        assert_eq!(HilbertCloak::bucket_range(10, 10, 3), (0, 10));
    }
}
