//! k-NN minimum-bounding-rectangle cloaking (Fig. 3b).
//!
//! "A more smart data-dependent cloaking technique ... is to construct
//! the spatial cloaked area of several point locations as their minimum
//! bounding rectangle (MBR). Although there is no direct reverse
//! engineering that can reveal the exact point location from the MBR,
//! yet the MBR encounters some information leakage. Having the MBR
//! indicates that there is at least one data point on each edge. If k is
//! small, then an adversary would guess that the exact point location is
//! on the MBR boundary." — Sec. 5.1
//!
//! The boundary attack in [`crate::attack`] quantifies exactly that: for
//! small `k`, the subject lands on the MBR boundary with probability
//! close to `4/k`.

use crate::cloak::{finalize_region, CloakRequirement, CloakedRegion, CloakingAlgorithm};
use crate::{CloakError, UserId};
use lbsp_geom::{Point, Rect};
use lbsp_index::UniformGrid;

/// k-nearest-neighbor MBR cloak backed by a uniform grid.
#[derive(Debug, Clone)]
pub struct MbrCloak {
    grid: UniformGrid,
}

impl MbrCloak {
    /// Creates the cloak over `world` with a `grid_side × grid_side`
    /// search grid.
    pub fn new(world: Rect, grid_side: u32) -> MbrCloak {
        MbrCloak {
            grid: UniformGrid::new(world, grid_side, grid_side),
        }
    }

    /// Pads `r` symmetrically so its area reaches `a_min`, clipping to
    /// the world. Each pass solves `(w + 2p)(h + 2p) = a_min` for the
    /// pad `p`; clamping at a world border can eat part of the pad, so
    /// the pass repeats until the area converges (near a corner the
    /// region keeps growing inward until `a_min` — or the whole world —
    /// is reached).
    fn pad_to_min_area(&self, mut r: Rect, a_min: f64) -> Rect {
        let world = self.grid.world();
        for _ in 0..64 {
            if r.area() >= a_min * (1.0 - 1e-12) || r == world {
                break;
            }
            let w = r.width();
            let h = r.height();
            // Quadratic 4p^2 + 2(w+h)p + (wh - a_min) = 0, positive root.
            let a = 4.0;
            let b = 2.0 * (w + h);
            let c = w * h - a_min;
            let disc = (b * b - 4.0 * a * c).max(0.0);
            let p = ((-b + disc.sqrt()) / (2.0 * a)).max(0.0);
            if p <= 0.0 {
                break;
            }
            r = r
                .expanded(p)
                .expect("pad is non-negative")
                .clamped_to(&world);
        }
        r
    }
}

impl CloakingAlgorithm for MbrCloak {
    fn name(&self) -> &'static str {
        "mbr"
    }

    fn world(&self) -> Rect {
        self.grid.world()
    }

    fn upsert(&mut self, id: UserId, p: Point) {
        self.grid.insert(id, p);
    }

    fn remove(&mut self, id: UserId) -> bool {
        self.grid.remove(id).is_some()
    }

    fn location(&self, id: UserId) -> Option<Point> {
        self.grid.location(id)
    }

    fn population(&self) -> usize {
        self.grid.len()
    }

    fn count_in_region(&self, region: &Rect) -> usize {
        self.grid.count_in_rect(region)
    }

    fn cloak(&self, id: UserId, req: &CloakRequirement) -> Result<CloakedRegion, CloakError> {
        req.validate()?;
        let pos = self.grid.location(id).ok_or(CloakError::UnknownUser(id))?;
        if !req.wants_privacy() {
            let region = Rect::from_point(pos);
            let k = self.grid.count_in_rect(&region) as u32;
            return Ok(finalize_region(region, k.max(1), req));
        }
        // The subject plus its k-1 nearest neighbors (k_nearest includes
        // the subject because it is stored in the grid).
        let members = self.grid.k_nearest(pos, req.k as usize, |_| false);
        let mbr = Rect::mbr_of_points(members.iter().map(|(_, p)| *p))
            .unwrap_or_else(|| Rect::from_point(pos));
        let region = self.pad_to_min_area(mbr, req.a_min);
        let achieved = self.grid.count_in_rect(&region) as u32;
        Ok(finalize_region(region, achieved, req))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect {
        Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
    }

    fn populated() -> MbrCloak {
        let mut c = MbrCloak::new(world(), 16);
        for i in 0..100u64 {
            let x = 0.05 + 0.1 * (i % 10) as f64;
            let y = 0.05 + 0.1 * (i / 10) as f64;
            c.upsert(i, Point::new(x, y));
        }
        c
    }

    #[test]
    fn mbr_contains_subject_and_k_users() {
        let c = populated();
        for k in [2u32, 5, 10, 30] {
            let r = c.cloak(55, &CloakRequirement::k_only(k)).unwrap();
            assert!(r.k_satisfied, "k={k}");
            assert!(r.achieved_k >= k);
            assert!(r.region.contains_point(Point::new(0.55, 0.55)));
        }
    }

    #[test]
    fn subject_is_on_boundary_for_small_k() {
        // With k=2 the MBR spans subject + 1 neighbor: both are corners,
        // i.e. boundary points — the leak the paper describes.
        let c = populated();
        let r = c.cloak(55, &CloakRequirement::k_only(2)).unwrap();
        assert!(r.region.on_boundary(Point::new(0.55, 0.55), 1e-9));
    }

    #[test]
    fn mbr_is_tighter_than_naive_square() {
        // The MBR of the k nearest points never exceeds the smallest
        // centered square holding k points.
        use crate::NaiveCloak;
        let mut naive = NaiveCloak::new(world(), 16);
        let c = populated();
        for i in 0..100u64 {
            let x = 0.05 + 0.1 * (i % 10) as f64;
            let y = 0.05 + 0.1 * (i / 10) as f64;
            naive.upsert(i, Point::new(x, y));
        }
        for k in [5u32, 10, 20] {
            let m = c.cloak(55, &CloakRequirement::k_only(k)).unwrap();
            let n = naive.cloak(55, &CloakRequirement::k_only(k)).unwrap();
            assert!(
                m.area() <= n.area() + 1e-9,
                "k={k}: mbr {} vs naive {}",
                m.area(),
                n.area()
            );
        }
    }

    #[test]
    fn a_min_padding_reaches_requested_area() {
        let c = populated();
        let req = CloakRequirement {
            k: 2,
            a_min: 0.04,
            a_max: f64::INFINITY,
        };
        let r = c.cloak(55, &req).unwrap();
        assert!(r.area() >= 0.04 - 1e-9, "area {}", r.area());
        assert!(r.fully_satisfied());
        // Padding must keep the subject inside.
        assert!(r.region.contains_point(Point::new(0.55, 0.55)));
    }

    #[test]
    fn degenerate_mbr_padded_from_zero_area() {
        // k users at the same spot: MBR is a point; padding must still
        // reach a_min.
        let mut c = MbrCloak::new(world(), 8);
        for i in 0..5u64 {
            c.upsert(i, Point::new(0.5, 0.5));
        }
        let req = CloakRequirement {
            k: 5,
            a_min: 0.01,
            a_max: f64::INFINITY,
        };
        let r = c.cloak(0, &req).unwrap();
        assert!(r.area() >= 0.01 - 1e-9);
        assert!(r.k_satisfied);
    }

    #[test]
    fn k_exceeding_population_flags_unsatisfied() {
        let mut c = MbrCloak::new(world(), 8);
        c.upsert(1, Point::new(0.2, 0.2));
        c.upsert(2, Point::new(0.8, 0.8));
        let r = c.cloak(1, &CloakRequirement::k_only(10)).unwrap();
        assert!(!r.k_satisfied);
        assert_eq!(r.achieved_k, 2);
    }

    #[test]
    fn unknown_user_errors() {
        let c = MbrCloak::new(world(), 4);
        assert!(matches!(
            c.cloak(1, &CloakRequirement::k_only(2)),
            Err(CloakError::UnknownUser(1))
        ));
    }

    #[test]
    fn no_privacy_short_circuit() {
        let c = populated();
        let r = c.cloak(3, &CloakRequirement::none()).unwrap();
        assert_eq!(r.area(), 0.0);
        assert!(r.fully_satisfied());
    }
}
