//! Temporal cloaking — the baseline from the paper's related work.
//!
//! The paper classifies prior location perturbation as "spatio-temporal
//! cloaking [17, 18]" (Sec. 2.1); Gruteser & Grunwald's MobiSys 2003
//! system trades *time* for space: when the spatial region that would
//! satisfy k is too large (bad QoS), the anonymizer may instead *delay*
//! the update until enough users have passed through a smaller region.
//!
//! [`TemporalCloak`] wraps any spatial [`CloakingAlgorithm`] with that
//! policy: an update whose spatial cloak would exceed `max_area` is
//! buffered; on each later tick the buffered request is retried, and it
//! is released either when the spatial cloak fits (the crowd arrived) or
//! when `max_delay` expires (best effort, large region). The release
//! delay is the temporal dimension of the cloak — a QoS cost the E-series
//! experiments can measure alongside area.

use crate::cloak::{CloakRequirement, CloakedRegion, CloakingAlgorithm};
use crate::{CloakError, UserId};
use lbsp_geom::{Point, SimTime};
use std::collections::HashMap;

/// A cloaked update released by the temporal cloak.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DelayedRelease {
    /// The user the release belongs to.
    pub user: UserId,
    /// The spatial region finally reported.
    pub region: CloakedRegion,
    /// When the original update was submitted.
    pub submitted: SimTime,
    /// When it was released to the server.
    pub released: SimTime,
}

impl DelayedRelease {
    /// The temporal extent of the cloak, in seconds.
    pub fn delay(&self) -> f64 {
        self.released - self.submitted
    }
}

#[derive(Debug, Clone)]
struct Pending {
    position: Point,
    requirement: CloakRequirement,
    submitted: SimTime,
}

/// Temporal cloaking policy over a spatial cloaking algorithm.
#[derive(Debug)]
pub struct TemporalCloak<A> {
    inner: A,
    /// Updates whose spatial cloak is still too large.
    pending: HashMap<UserId, Pending>,
    /// Release threshold: regions at most this large go out immediately.
    max_area: f64,
    /// Give-up horizon: after this many seconds the update is released
    /// with whatever region is achievable.
    max_delay: f64,
}

impl<A: CloakingAlgorithm> TemporalCloak<A> {
    /// Wraps `inner`; updates are buffered while their cloak area
    /// exceeds `max_area`, for at most `max_delay` seconds.
    ///
    /// # Panics
    /// Panics when `max_area` is negative or `max_delay` is negative —
    /// both would make the policy vacuous in a confusing way.
    pub fn new(inner: A, max_area: f64, max_delay: f64) -> TemporalCloak<A> {
        assert!(max_area >= 0.0, "max_area must be non-negative");
        assert!(max_delay >= 0.0, "max_delay must be non-negative");
        TemporalCloak {
            inner,
            pending: HashMap::new(),
            max_area,
            max_delay,
        }
    }

    /// The wrapped spatial algorithm.
    pub fn inner(&self) -> &A {
        &self.inner
    }

    /// Mutable access to the wrapped algorithm (population maintenance).
    pub fn inner_mut(&mut self) -> &mut A {
        &mut self.inner
    }

    /// Number of updates currently buffered.
    pub fn pending(&self) -> usize {
        self.pending.len()
    }

    /// Submits an update. Returns `Some(release)` when the spatial
    /// cloak already fits `max_area` (no delay); otherwise the update is
    /// buffered and `None` is returned.
    pub fn submit(
        &mut self,
        user: UserId,
        position: Point,
        requirement: CloakRequirement,
        now: SimTime,
    ) -> Result<Option<DelayedRelease>, CloakError> {
        requirement.validate()?;
        self.inner.upsert(user, position);
        let region = self.inner.cloak(user, &requirement)?;
        if region.k_satisfied && region.area() <= self.max_area {
            self.pending.remove(&user);
            return Ok(Some(DelayedRelease {
                user,
                region,
                submitted: now,
                released: now,
            }));
        }
        self.pending.insert(
            user,
            Pending {
                position,
                requirement,
                submitted: now,
            },
        );
        Ok(None)
    }

    /// Retries every buffered update at time `now`, returning the ones
    /// that release (either because the crowd arrived and the cloak now
    /// fits, or because `max_delay` expired).
    pub fn tick(&mut self, now: SimTime) -> Vec<DelayedRelease> {
        let mut released = Vec::new();
        let mut done: Vec<UserId> = Vec::new();
        for (&user, p) in &self.pending {
            let region = match self.inner.cloak(user, &p.requirement) {
                Ok(r) => r,
                Err(_) => continue, // user vanished; drop below
            };
            let expired = (now - p.submitted) >= self.max_delay;
            let fits = region.k_satisfied && region.area() <= self.max_area;
            if fits || expired {
                released.push(DelayedRelease {
                    user,
                    region,
                    submitted: p.submitted,
                    released: now,
                });
                done.push(user);
            }
            // Keep the buffered position fresh in the index (the user is
            // not moving while waiting in this model).
            let _ = p.position;
        }
        for user in done {
            self.pending.remove(&user);
        }
        released.sort_by_key(|r| r.user);
        released
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::QuadCloak;
    use lbsp_geom::Rect;

    fn world() -> Rect {
        Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
    }

    #[test]
    fn small_cloaks_release_immediately() {
        let mut quad = QuadCloak::new(world(), 5);
        for i in 0..20u64 {
            quad.upsert(i, Point::new(0.51 + 0.001 * i as f64, 0.51));
        }
        let mut tc = TemporalCloak::new(quad, 0.1, 60.0);
        let out = tc
            .submit(
                0,
                Point::new(0.51, 0.51),
                CloakRequirement::k_only(10),
                SimTime::ZERO,
            )
            .unwrap();
        let rel = out.expect("dense area: immediate release");
        assert_eq!(rel.delay(), 0.0);
        assert!(rel.region.k_satisfied);
        assert!(rel.region.area() <= 0.1);
        assert_eq!(tc.pending(), 0);
    }

    #[test]
    fn sparse_area_buffers_until_crowd_arrives() {
        let quad = QuadCloak::new(world(), 5);
        let mut tc = TemporalCloak::new(quad, 0.1, 600.0);
        // A lone user: the k=5 cloak would be the whole world.
        let out = tc
            .submit(
                0,
                Point::new(0.2, 0.2),
                CloakRequirement::k_only(5),
                SimTime::ZERO,
            )
            .unwrap();
        assert!(out.is_none());
        assert_eq!(tc.pending(), 1);
        // Nothing yet at t = 10.
        assert!(tc.tick(SimTime::from_secs(10.0)).is_empty());
        // Four more users arrive nearby.
        for i in 1..5u64 {
            tc.inner_mut().upsert(i, Point::new(0.21, 0.21));
        }
        let released = tc.tick(SimTime::from_secs(20.0));
        assert_eq!(released.len(), 1);
        let rel = released[0];
        assert_eq!(rel.user, 0);
        assert!(rel.region.k_satisfied);
        assert!(rel.region.area() <= 0.1);
        assert_eq!(rel.delay(), 20.0);
        assert_eq!(tc.pending(), 0);
    }

    #[test]
    fn deadline_forces_best_effort_release() {
        let quad = QuadCloak::new(world(), 5);
        let mut tc = TemporalCloak::new(quad, 0.01, 30.0);
        tc.submit(
            0,
            Point::new(0.5, 0.5),
            CloakRequirement::k_only(50),
            SimTime::ZERO,
        )
        .unwrap();
        // Deadline not reached: still pending.
        assert!(tc.tick(SimTime::from_secs(29.0)).is_empty());
        // Deadline reached: released with a too-large / unsatisfied region.
        let released = tc.tick(SimTime::from_secs(30.0));
        assert_eq!(released.len(), 1);
        assert!(released[0].delay() >= 30.0);
        assert!(!released[0].region.k_satisfied || released[0].region.area() > 0.01);
    }

    #[test]
    fn resubmission_replaces_pending() {
        let quad = QuadCloak::new(world(), 5);
        let mut tc = TemporalCloak::new(quad, 0.0001, 600.0);
        tc.submit(
            0,
            Point::new(0.2, 0.2),
            CloakRequirement::k_only(5),
            SimTime::ZERO,
        )
        .unwrap();
        tc.submit(
            0,
            Point::new(0.8, 0.8),
            CloakRequirement::k_only(5),
            SimTime::from_secs(5.0),
        )
        .unwrap();
        assert_eq!(tc.pending(), 1, "one pending entry per user");
    }

    #[test]
    fn delay_vs_area_tradeoff_shape() {
        // Tighter max_area => longer delays, never shorter. This is the
        // temporal/spatial resolution trade-off of the MobiSys paper.
        let mut delays = Vec::new();
        for max_area in [0.5f64, 0.05, 0.005] {
            let quad = QuadCloak::new(world(), 6);
            let mut tc = TemporalCloak::new(quad, max_area, 1e9);
            tc.submit(
                0,
                Point::new(0.5, 0.5),
                CloakRequirement::k_only(8),
                SimTime::ZERO,
            )
            .unwrap();
            // One user arrives near the subject every 10 simulated seconds.
            let mut release_time = f64::INFINITY;
            for step in 1..=20u64 {
                tc.inner_mut()
                    .upsert(step, Point::new(0.5 + 0.002 * step as f64, 0.5));
                let now = SimTime::from_secs(10.0 * step as f64);
                if let Some(rel) = tc.tick(now).first() {
                    release_time = rel.delay();
                    break;
                }
            }
            delays.push(release_time);
        }
        assert!(
            delays[0] <= delays[1] && delays[1] <= delays[2],
            "tighter area bounds mean waiting longer: {delays:?}"
        );
    }

    #[test]
    #[should_panic(expected = "max_area must be non-negative")]
    fn negative_area_panics() {
        TemporalCloak::new(QuadCloak::new(world(), 3), -1.0, 0.0);
    }
}
