//! Space-dependent fixed-grid cloaking (Fig. 4b).
//!
//! "The whole space is partitioned into fixed grid cells. For each mobile
//! user m, the location anonymizer locates the grid cell g in which m
//! lies ... If [g satisfies the profile], g is returned as the spatial
//! cloaked area. Otherwise, g is merged with other adjacent grid cells
//! till the location anonymizer satisfies the user privacy profile."
//! — Sec. 5.2
//!
//! Merging grows an axis-aligned block of cells around the user's cell,
//! expanding one row or column at a time toward the denser side. The
//! expansion decision uses only cell-level *counts*, never the user's
//! exact position, so the output remains a function of the occupied cell
//! — reverse-engineering safe, like all space-dependent cloaks.
//!
//! The paper also notes g may satisfy the profile "with a very relaxed
//! area ... thus, g can be partitioned again into other fixed grids.
//! Keeping fixed multi-level grids would be an optimization". The
//! [`GridCloak::with_refinement`] option implements that: when the block
//! is a single cell with ample slack, the cloak descends into the 2×2
//! sub-cell containing the user while the requirement still holds.

use crate::cloak::{finalize_region, CloakRequirement, CloakedRegion, CloakingAlgorithm};
use crate::{CloakError, UserId};
use lbsp_geom::{Point, Rect};
use lbsp_index::{CellCoord, CellCounts, UniformGrid};

/// Default multi-level refinement depth: a cell quarters at most this
/// many times (1/16 cell → 1/256 at depth 4 on a 16×16 grid).
pub const DEFAULT_MAX_REFINE_DEPTH: u8 = 4;

/// Fixed-grid cloak with rectangular neighbor merging.
#[derive(Debug, Clone)]
pub struct GridCloak {
    grid: UniformGrid,
    refine: bool,
    max_refine_depth: u8,
}

/// Expands the block `[c0, c1]` by one row/column on the side whose
/// strip holds more users (ties and walls resolved deterministically).
/// Returns `None` when the block already spans the whole grid.
fn expand_once<C: CellCounts>(
    counts: &C,
    c0: CellCoord,
    c1: CellCoord,
    grow_x: bool,
) -> Option<(CellCoord, CellCoord)> {
    let nx = counts.nx();
    let ny = counts.ny();
    if grow_x {
        let can_left = c0.ix > 0;
        let can_right = c1.ix + 1 < nx;
        match (can_left, can_right) {
            (false, false) => None,
            (true, false) => Some((
                CellCoord {
                    ix: c0.ix - 1,
                    ..c0
                },
                c1,
            )),
            (false, true) => Some((
                c0,
                CellCoord {
                    ix: c1.ix + 1,
                    ..c1
                },
            )),
            (true, true) => {
                let left = counts.block_count(
                    CellCoord {
                        ix: c0.ix - 1,
                        iy: c0.iy,
                    },
                    CellCoord {
                        ix: c0.ix - 1,
                        iy: c1.iy,
                    },
                );
                let right = counts.block_count(
                    CellCoord {
                        ix: c1.ix + 1,
                        iy: c0.iy,
                    },
                    CellCoord {
                        ix: c1.ix + 1,
                        iy: c1.iy,
                    },
                );
                if left >= right {
                    Some((
                        CellCoord {
                            ix: c0.ix - 1,
                            ..c0
                        },
                        c1,
                    ))
                } else {
                    Some((
                        c0,
                        CellCoord {
                            ix: c1.ix + 1,
                            ..c1
                        },
                    ))
                }
            }
        }
    } else {
        let can_down = c0.iy > 0;
        let can_up = c1.iy + 1 < ny;
        match (can_down, can_up) {
            (false, false) => None,
            (true, false) => Some((
                CellCoord {
                    iy: c0.iy - 1,
                    ..c0
                },
                c1,
            )),
            (false, true) => Some((
                c0,
                CellCoord {
                    iy: c1.iy + 1,
                    ..c1
                },
            )),
            (true, true) => {
                let down = counts.block_count(
                    CellCoord {
                        ix: c0.ix,
                        iy: c0.iy - 1,
                    },
                    CellCoord {
                        ix: c1.ix,
                        iy: c0.iy - 1,
                    },
                );
                let up = counts.block_count(
                    CellCoord {
                        ix: c0.ix,
                        iy: c1.iy + 1,
                    },
                    CellCoord {
                        ix: c1.ix,
                        iy: c1.iy + 1,
                    },
                );
                if down >= up {
                    Some((
                        CellCoord {
                            iy: c0.iy - 1,
                            ..c0
                        },
                        c1,
                    ))
                } else {
                    Some((
                        c0,
                        CellCoord {
                            iy: c1.iy + 1,
                            ..c1
                        },
                    ))
                }
            }
        }
    }
}

/// Multi-level descent: repeatedly quarter the region, following the
/// quadrant that contains the user, while `(k, a_min)` still holds.
fn refine_region<C: CellCounts>(
    counts: &C,
    mut region: Rect,
    pos: Point,
    req: &CloakRequirement,
    max_depth: u8,
) -> Rect {
    for _ in 0..max_depth {
        let quads = region.quadrants();
        let qi = region.quadrant_of(pos);
        let sub = quads[qi];
        if sub.area() >= req.a_min && counts.count_in_rect(&sub) >= req.k as usize {
            region = sub;
        } else {
            break;
        }
    }
    region
}

/// The full fixed-grid merge (and optional multi-level refinement)
/// against any [`CellCounts`] view.
///
/// This is [`GridCloak::cloak`] with the user lookup factored out: the
/// caller supplies the subject's exact position and a count view, which
/// may be a single [`UniformGrid`] or a [`lbsp_index::SummedGrids`]
/// spanning several shards. Because the algorithm consumes only integer
/// cell counts and cell-aligned rectangles, any two views reporting
/// identical counts produce bit-identical regions — the property the
/// sharded engine's equivalence tests assert.
///
/// `req` must already be validated ([`CloakRequirement::validate`]).
pub fn cloak_with_counts<C: CellCounts>(
    counts: &C,
    pos: Point,
    req: &CloakRequirement,
    refine: bool,
    max_refine_depth: u8,
) -> CloakedRegion {
    if !req.wants_privacy() {
        let region = Rect::from_point(pos);
        let k = counts.count_in_rect(&region) as u32;
        return finalize_region(region, k.max(1), req);
    }
    let start = counts.cell_of(pos);
    let (mut c0, mut c1) = (start, start);
    let mut grow_x = true;
    loop {
        let count = counts.block_count(c0, c1) as u32;
        let rect = counts.block_rect(c0, c1);
        if count >= req.k && rect.area() >= req.a_min {
            let rect = if refine && c0 == c1 {
                refine_region(counts, rect, pos, req, max_refine_depth)
            } else {
                rect
            };
            let achieved = counts.count_in_rect(&rect) as u32;
            return finalize_region(rect, achieved, req);
        }
        // Alternate growth axes so blocks stay near-square.
        match expand_once(counts, c0, c1, grow_x).or_else(|| expand_once(counts, c0, c1, !grow_x)) {
            Some((n0, n1)) => {
                c0 = n0;
                c1 = n1;
                grow_x = !grow_x;
            }
            None => {
                // Block spans the world: best effort.
                return finalize_region(rect, count, req);
            }
        }
    }
}

impl GridCloak {
    /// Creates the cloak over `world` with `side × side` cells.
    pub fn new(world: Rect, side: u32) -> GridCloak {
        GridCloak {
            grid: UniformGrid::new(world, side, side),
            refine: false,
            max_refine_depth: DEFAULT_MAX_REFINE_DEPTH,
        }
    }

    /// Enables multi-level refinement (descend into sub-cells while the
    /// requirement still holds).
    pub fn with_refinement(mut self, enabled: bool) -> GridCloak {
        self.refine = enabled;
        self
    }

    /// `true` when refinement is enabled.
    pub fn refinement_enabled(&self) -> bool {
        self.refine
    }

    /// The refinement descent limit in force.
    pub fn max_refine_depth(&self) -> u8 {
        self.max_refine_depth
    }
}

impl CloakingAlgorithm for GridCloak {
    fn name(&self) -> &'static str {
        if self.refine {
            "grid+multilevel"
        } else {
            "grid"
        }
    }

    fn world(&self) -> Rect {
        self.grid.world()
    }

    fn upsert(&mut self, id: UserId, p: Point) {
        self.grid.insert(id, p);
    }

    fn remove(&mut self, id: UserId) -> bool {
        self.grid.remove(id).is_some()
    }

    fn location(&self, id: UserId) -> Option<Point> {
        self.grid.location(id)
    }

    fn population(&self) -> usize {
        self.grid.len()
    }

    fn count_in_region(&self, region: &Rect) -> usize {
        self.grid.count_in_rect(region)
    }

    /// Same grid cell (and requirement) => same merge expansion and the
    /// same refinement descent path boundaries... almost: refinement
    /// descends toward the *user's* quadrant, so only the unrefined
    /// variant is shareable at cell granularity.
    fn sharing_key(&self, id: UserId) -> Option<u64> {
        if self.refine {
            return None;
        }
        let p = self.grid.location(id)?;
        let c = self.grid.cell_of(p);
        Some(u64::from(c.iy) * u64::from(self.grid.nx()) + u64::from(c.ix))
    }

    fn cloak(&self, id: UserId, req: &CloakRequirement) -> Result<CloakedRegion, CloakError> {
        req.validate()?;
        let pos = self.grid.location(id).ok_or(CloakError::UnknownUser(id))?;
        Ok(cloak_with_counts(
            &self.grid,
            pos,
            req,
            self.refine,
            self.max_refine_depth,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn world() -> Rect {
        Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
    }

    fn populated(side: u32) -> GridCloak {
        let mut c = GridCloak::new(world(), side);
        for i in 0..100u64 {
            let x = 0.05 + 0.1 * (i % 10) as f64;
            let y = 0.05 + 0.1 * (i / 10) as f64;
            c.upsert(i, Point::new(x, y));
        }
        c
    }

    #[test]
    fn single_cell_suffices_when_dense() {
        // 10x10 lattice on an 8x8 grid: each cell holds >= 1 user; the
        // cell containing (0.55, 0.55) holds at least one. k=1 with a_min
        // 0 short-circuits, so ask for the cell with k=2.
        let c = populated(4); // 4x4 grid: each cell holds ~6 users
        let r = c.cloak(55, &CloakRequirement::k_only(2)).unwrap();
        assert!(r.k_satisfied);
        assert!((r.region.width() - 0.25).abs() < 1e-9, "one 4x4 cell");
    }

    #[test]
    fn merges_until_k_satisfied() {
        let c = populated(8);
        for k in [5u32, 20, 60] {
            let r = c.cloak(55, &CloakRequirement::k_only(k)).unwrap();
            assert!(r.k_satisfied, "k={k}");
            assert!(r.achieved_k >= k);
            assert!(r.region.contains_point(Point::new(0.55, 0.55)));
            // Region is cell-aligned: bounds are multiples of 1/8.
            for v in [
                r.region.min_x(),
                r.region.min_y(),
                r.region.max_x(),
                r.region.max_y(),
            ] {
                let scaled = v * 8.0;
                assert!((scaled - scaled.round()).abs() < 1e-9, "bound {v}");
            }
        }
    }

    #[test]
    fn position_independent_within_cell() {
        let mut c = GridCloak::new(world(), 4);
        c.upsert(1, Point::new(0.30, 0.30));
        c.upsert(2, Point::new(0.45, 0.45)); // same 4x4 cell (cell [0.25,0.5)^2)
        for i in 3..20u64 {
            c.upsert(i, Point::new(0.9, 0.9));
        }
        let req = CloakRequirement::k_only(2);
        assert_eq!(
            c.cloak(1, &req).unwrap().region,
            c.cloak(2, &req).unwrap().region
        );
    }

    #[test]
    fn a_min_expands_past_single_cell() {
        let c = populated(8);
        let req = CloakRequirement {
            k: 2,
            a_min: 0.1,
            a_max: f64::INFINITY,
        };
        let r = c.cloak(55, &req).unwrap();
        assert!(r.area() >= 0.1 - 1e-9);
        assert!(r.fully_satisfied());
    }

    #[test]
    fn impossible_k_returns_whole_world() {
        let c = populated(8);
        let r = c.cloak(0, &CloakRequirement::k_only(500)).unwrap();
        assert!(!r.k_satisfied);
        assert_eq!(r.region, world());
    }

    #[test]
    fn refinement_shrinks_relaxed_cells() {
        // Coarse 2x2 grid: a single cell holds ~25 users. With k=2 the
        // plain cloak returns the whole 0.5x0.5 cell; refinement should
        // descend toward the user.
        let plain = populated(2);
        let refined = populated(2).with_refinement(true);
        let req = CloakRequirement::k_only(2);
        let a = plain.cloak(55, &req).unwrap();
        let b = refined.cloak(55, &req).unwrap();
        assert!(b.k_satisfied);
        assert!(
            b.area() < a.area(),
            "refined {} < plain {}",
            b.area(),
            a.area()
        );
        assert!(b.region.contains_point(Point::new(0.55, 0.55)));
        assert!(b.achieved_k >= 2);
    }

    #[test]
    fn refinement_respects_a_min() {
        let refined = populated(2).with_refinement(true);
        let req = CloakRequirement {
            k: 2,
            a_min: 0.25,
            a_max: f64::INFINITY,
        };
        let r = refined.cloak(55, &req).unwrap();
        assert!(r.area() >= 0.25 - 1e-9, "a_min stops the descent");
    }

    #[test]
    fn expansion_prefers_denser_side() {
        // All extra users sit to the right of the subject's cell; the
        // merged block should extend right, not left.
        let mut c = GridCloak::new(world(), 4);
        c.upsert(0, Point::new(0.30, 0.55)); // subject, cell column 1
        for i in 1..10u64 {
            c.upsert(i, Point::new(0.60, 0.55)); // column 2
        }
        let r = c.cloak(0, &CloakRequirement::k_only(5)).unwrap();
        assert!(r.k_satisfied);
        assert!(r.region.max_x() > 0.5, "block extended toward density");
        assert!(r.region.contains_point(Point::new(0.30, 0.55)));
    }

    #[test]
    fn unknown_user_and_no_privacy() {
        let c = populated(4);
        assert!(matches!(
            c.cloak(777, &CloakRequirement::k_only(2)),
            Err(CloakError::UnknownUser(777))
        ));
        let r = c.cloak(0, &CloakRequirement::none()).unwrap();
        assert_eq!(r.area(), 0.0);
        assert!(r.fully_satisfied());
    }

    #[test]
    fn names_distinguish_variants() {
        assert_eq!(GridCloak::new(world(), 4).name(), "grid");
        assert_eq!(
            GridCloak::new(world(), 4).with_refinement(true).name(),
            "grid+multilevel"
        );
    }
}
