//! Property-based tests of the cloaking invariants, across all four
//! algorithms and arbitrary populations.
//!
//! The invariants under test are the paper's three requirements from
//! Sec. 5:
//! 1. the cloaked region contains >= k users (when the population
//!    allows) and always contains the subject;
//! 2. space-dependent cloaks are a function of the occupied cell only
//!    (no reverse engineering);
//! 3. reported metadata (`achieved_k`, satisfaction flags) is truthful.

use lbsp_anonymizer::{
    CloakRequirement, CloakingAlgorithm, GridCloak, HilbertCloak, MbrCloak, NaiveCloak, QuadCloak,
    TemporalCloak,
};
use lbsp_geom::{Point, Rect, SimTime};
use proptest::prelude::*;

fn unit_world() -> Rect {
    Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
}

prop_compose! {
    fn upoint()(x in 0.0f64..1.0, y in 0.0f64..1.0) -> Point {
        Point::new(x, y)
    }
}

fn algorithms(positions: &[Point]) -> Vec<Box<dyn CloakingAlgorithm>> {
    let w = unit_world();
    let mut algos: Vec<Box<dyn CloakingAlgorithm>> = vec![
        Box::new(NaiveCloak::new(w, 16)),
        Box::new(MbrCloak::new(w, 16)),
        Box::new(QuadCloak::new(w, 6)),
        Box::new(QuadCloak::new(w, 6).with_neighbor_merge(true)),
        Box::new(GridCloak::new(w, 16)),
        Box::new(GridCloak::new(w, 16).with_refinement(true)),
        Box::new(HilbertCloak::new(w, 16)),
    ];
    for a in &mut algos {
        for (i, p) in positions.iter().enumerate() {
            a.upsert(i as u64, *p);
        }
    }
    algos
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn cloaks_contain_subject_and_honor_k(
        pts in prop::collection::vec(upoint(), 2..120),
        subject in 0usize..120,
        k in 1u32..40,
    ) {
        let subject = (subject % pts.len()) as u64;
        let req = CloakRequirement::k_only(k);
        for algo in algorithms(&pts) {
            let c = algo.cloak(subject, &req).unwrap();
            let name = algo.name();
            prop_assert!(
                c.region.contains_point(pts[subject as usize]),
                "{name}: subject outside region"
            );
            // achieved_k is a truthful recount.
            let recount = algo.count_in_region(&c.region) as u32;
            prop_assert_eq!(c.achieved_k, recount, "{}: achieved_k lies", name);
            // k_satisfied flag is consistent.
            prop_assert_eq!(c.k_satisfied, recount >= k, "{}: flag", name);
            // If the population suffices, k must actually be satisfied.
            if (k as usize) <= pts.len() {
                prop_assert!(c.k_satisfied, "{name}: k={k} achievable but unmet");
            }
            // Region stays within the world.
            prop_assert!(algo.world().contains_rect(&c.region), "{name}");
        }
    }

    #[test]
    fn a_min_is_respected_when_feasible(
        pts in prop::collection::vec(upoint(), 2..80),
        a_min in 0.0f64..0.5,
    ) {
        let req = CloakRequirement { k: 2, a_min, a_max: f64::INFINITY };
        for algo in algorithms(&pts) {
            let c = algo.cloak(0, &req).unwrap();
            // a_min <= 0.5 < world area, and k=2 <= population, so the
            // requirement is always feasible.
            prop_assert!(
                c.fully_satisfied(),
                "{}: area {} for a_min {}",
                algo.name(),
                c.area(),
                a_min
            );
            prop_assert!(c.area() >= a_min * (1.0 - 1e-9));
        }
    }

    #[test]
    fn space_dependent_cloaks_are_cell_pure(
        pts in prop::collection::vec(upoint(), 10..80),
        dx in 0.0f64..0.9,
        dy in 0.0f64..0.9,
        k in 2u32..10,
    ) {
        // Two subjects planted in the same leaf cell of every
        // space-dependent structure at its finest granularity: quad
        // depth 6 stops at 1/64; grid 16 with multilevel refinement
        // (max depth 4) quarters a 1/16 cell down to 1/256. Cells of
        // side 1/256 are aligned with all of those boundaries.
        let cell = 1.0 / 256.0;
        let base = Point::new((dx / cell).floor() * cell, (dy / cell).floor() * cell);
        let a = Point::new(base.x + cell * 0.25, base.y + cell * 0.25);
        let b = Point::new(base.x + cell * 0.75, base.y + cell * 0.75);
        let mut all = pts.clone();
        let ia = all.len() as u64;
        all.push(a);
        let ib = all.len() as u64;
        all.push(b);
        let req = CloakRequirement::k_only(k);
        // Only the space-partitioning cloaks are cell-pure; Hilbert is
        // reciprocal (bucket-pure) but its buckets are order-based, not
        // cell-based.
        let cell_pure = ["quad", "quad+merge", "grid", "grid+multilevel"];
        for algo in algorithms(&all)
            .into_iter()
            .filter(|a| cell_pure.contains(&a.name()))
        {
            let ca = algo.cloak(ia, &req).unwrap();
            let cb = algo.cloak(ib, &req).unwrap();
            prop_assert_eq!(
                ca.region, cb.region,
                "{}: same-cell users must share a region", algo.name()
            );
        }
    }

    #[test]
    fn larger_k_never_shrinks_region(
        pts in prop::collection::vec(upoint(), 20..100),
        subject in 0usize..100,
    ) {
        let subject = (subject % pts.len()) as u64;
        // Hilbert buckets for different k are not nested, so its areas
        // are not monotone in k; every other algorithm's are.
        for algo in algorithms(&pts)
            .into_iter()
            .filter(|a| a.name() != "hilbert")
        {
            let mut last_area = -1.0f64;
            for k in [2u32, 5, 10, 20] {
                let c = algo.cloak(subject, &CloakRequirement::k_only(k)).unwrap();
                prop_assert!(
                    c.area() >= last_area - 1e-12,
                    "{}: area shrank from {} to {} at k={}",
                    algo.name(),
                    last_area,
                    c.area(),
                    k
                );
                last_area = c.area();
            }
        }
    }

    #[test]
    fn hilbert_reciprocity_holds_for_arbitrary_populations(
        pts in prop::collection::vec(upoint(), 4..80),
        k in 2u32..12,
    ) {
        prop_assume!(pts.len() >= k as usize);
        let mut algo = HilbertCloak::new(unit_world(), 16);
        for (i, p) in pts.iter().enumerate() {
            algo.upsert(i as u64, *p);
        }
        let req = CloakRequirement::k_only(k);
        // Group users by the region they receive; every group (anonymity
        // set) must have at least k members, and each member's own
        // location must lie inside the shared region.
        let mut groups: std::collections::HashMap<String, Vec<usize>> =
            std::collections::HashMap::new();
        for (i, p) in pts.iter().enumerate() {
            let c = algo.cloak(i as u64, &req).unwrap();
            prop_assert!(c.region.contains_point(*p));
            groups.entry(format!("{:?}", c.region)).or_default().push(i);
        }
        for (region, members) in &groups {
            prop_assert!(
                members.len() >= k as usize,
                "anonymity set {region} has only {} members",
                members.len()
            );
        }
    }

    #[test]
    fn temporal_cloak_releases_are_valid(
        pts in prop::collection::vec(upoint(), 1..60),
        subject in upoint(),
        k in 2u32..10,
        max_area in 0.0001f64..1.0,
        max_delay in 0.0f64..100.0,
    ) {
        let mut quad = QuadCloak::new(unit_world(), 6);
        for (i, p) in pts.iter().enumerate() {
            quad.upsert(i as u64 + 1, *p);
        }
        let mut tc = TemporalCloak::new(quad, max_area, max_delay);
        let req = CloakRequirement::k_only(k);
        let submitted = SimTime::ZERO;
        let immediate = tc.submit(0, subject, req, submitted).unwrap();
        if let Some(rel) = immediate {
            // Immediate releases satisfy both bounds and carry no delay.
            prop_assert!(rel.region.k_satisfied);
            prop_assert!(rel.region.area() <= max_area * (1.0 + 1e-9));
            prop_assert_eq!(rel.delay(), 0.0);
        } else {
            prop_assert_eq!(tc.pending(), 1);
            // Tick past the deadline: the update must release, best
            // effort or not, with a delay of at least max_delay.
            let late = SimTime::from_secs(max_delay + 1.0);
            let released = tc.tick(late);
            prop_assert_eq!(released.len(), 1);
            let rel = released[0];
            prop_assert!(rel.delay() >= max_delay);
            prop_assert!(rel.region.region.contains_point(
                tc.inner().location(0).expect("subject present")
            ));
            prop_assert_eq!(tc.pending(), 0);
        }
    }

    #[test]
    fn updates_relocate_cloaks(
        pts in prop::collection::vec(upoint(), 10..60),
        to in upoint(),
    ) {
        for mut algo in algorithms(&pts) {
            algo.upsert(0, to);
            let c = algo.cloak(0, &CloakRequirement::k_only(3)).unwrap();
            prop_assert!(
                c.region.contains_point(to),
                "{}: cloak follows the update",
                algo.name()
            );
        }
    }
}
