//! # privacy-lbs
//!
//! Umbrella crate for the reproduction of *"Towards Privacy-Aware
//! Location-Based Database Servers"* (Mokbel, ICDE 2006).
//!
//! Re-exports the workspace crates under stable module names so examples,
//! integration tests, and downstream users need a single dependency:
//!
//! * [`geom`] — points, rectangles, distances, simulation time.
//! * [`index`] — grid / pyramid / quadtree / R-tree spatial indexes.
//! * [`mobility`] — synthetic user populations and movement models.
//! * [`anonymizer`] — privacy profiles, cloaking algorithms, attacks.
//! * [`server`] — the privacy-aware query processor.
//! * [`system`] — the end-to-end architecture of the paper's Fig. 1.
//! * [`net`] — the framed TCP transport deploying the system as a
//!   real network service (`repro --serve` / `--connect`).
//! * [`store`] — the durable write-ahead log and crash recovery
//!   (`repro --serve ... --wal-dir DIR`).
//!
//! # Example: the whole pipeline
//!
//! ```
//! use privacy_lbs::anonymizer::{CloakRequirement, PrivacyProfile, QuadCloak};
//! use privacy_lbs::geom::{Point, Rect, SimTime};
//! use privacy_lbs::server::PublicObject;
//! use privacy_lbs::system::{MobileUser, PrivacyAwareSystem};
//!
//! // A unit-square world with three gas stations.
//! let world = Rect::new_unchecked(0.0, 0.0, 1.0, 1.0);
//! let stations = vec![
//!     PublicObject::new(0, Point::new(0.2, 0.2), 0),
//!     PublicObject::new(1, Point::new(0.5, 0.6), 0),
//!     PublicObject::new(2, Point::new(0.9, 0.1), 0),
//! ];
//! let mut system = PrivacyAwareSystem::new(QuadCloak::new(world, 5), 42, stations);
//!
//! // A small crowd makes k-anonymity possible.
//! let profile = PrivacyProfile::uniform(CloakRequirement::k_only(4)).unwrap();
//! for id in 0..10u64 {
//!     system.register_user(MobileUser::active(id, profile.clone()));
//!     let pos = Point::new(0.4 + 0.01 * id as f64, 0.5);
//!     system.process_update(id, pos, SimTime::ZERO).unwrap();
//! }
//!
//! // "Find my nearest gas station" — the server sees only a rectangle.
//! let outcome = system.private_nn_query(3, SimTime::ZERO).unwrap();
//! assert!(outcome.cloak.area() > 0.0, "k=4 means a real region, not a point");
//! assert_eq!(outcome.exact.unwrap().id, 1, "nearest station after local refinement");
//! ```

#![forbid(unsafe_code)]

pub use lbsp_anonymizer as anonymizer;
pub use lbsp_cluster as cluster;
pub use lbsp_core as system;
pub use lbsp_geom as geom;
pub use lbsp_index as index;
pub use lbsp_mobility as mobility;
pub use lbsp_net as net;
pub use lbsp_server as server;
pub use lbsp_store as store;

/// Crate version, for examples that print provenance.
pub const VERSION: &str = env!("CARGO_PKG_VERSION");
