//! The cluster's headline guarantee: a K-node region-sharded cluster
//! behind a [`Router`] answers the full workload — registrations,
//! cloaked updates, standing-query registrations, deltas, snapshots —
//! **byte-identically** to one sequential `PrivacyAwareSystem`, for
//! K ∈ {1, 2, 4}, with a workload in which well over 10% of users
//! cross partition boundaries (forcing `USER_HANDOFF` migrations) and
//! standing-query deltas originate on whichever node owns the moving
//! user. An unreachable node must surface as a loud kinded
//! `ROUTE_FAIL` — `RETRYABLE` while its supervisor reconnects, `DOWN`
//! once the attempt budget is spent — never a hang or a masqueraded
//! application error, and never an error text leaking node addresses.

use lbsp_anonymizer::{CloakRequirement, GridCloak, PrivacyProfile};
use lbsp_cluster::{PartitionMap, Router, RouterConfig};
use lbsp_core::engine::{EngineConfig, ShardedEngine};
use lbsp_core::wire::{self, StandingKind};
use lbsp_core::{MobileUser, PrivacyAwareSystem};
use lbsp_geom::{Point, Rect, SimTime};
use lbsp_net::{
    is_retryable_route_failure, is_route_failure, NetClient, NetConfig, NetServer, Reply,
};
use lbsp_server::PublicObject;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use std::collections::HashMap;
use std::net::TcpListener;
use std::time::Duration;

const USERS: u64 = 200;
const WAVES: u64 = 3;
const SEED: u64 = 20060406;
/// Must equal [`EngineConfig::new`]'s secret so pseudonyms agree.
const SECRET: u64 = 0x1BAD_B002_CAFE_F00D;

fn world() -> Rect {
    Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
}

fn requirement_for(i: u64) -> CloakRequirement {
    CloakRequirement {
        k: [2u32, 5, 10, 25][(i % 4) as usize],
        a_min: if i.is_multiple_of(5) { 0.01 } else { 0.0 },
        a_max: f64::INFINITY,
    }
}

fn wave(w: u64) -> Vec<(u64, Point, SimTime)> {
    let mut rng = StdRng::seed_from_u64(SEED ^ (w.wrapping_mul(0x9E37)));
    (0..USERS)
        .map(|i| {
            let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
            (i, p, SimTime::from_secs((w * USERS + i) as f64 * 0.25))
        })
        .collect()
}

fn public_objects() -> Vec<PublicObject> {
    let mut rng = StdRng::seed_from_u64(SEED ^ 1);
    (0..150)
        .map(|id| {
            PublicObject::new(
                id,
                Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)),
                0,
            )
        })
        .collect()
}

const COUNT_AREAS: [(f64, f64, f64, f64); 2] = [(0.2, 0.2, 0.7, 0.7), (0.05, 0.55, 0.45, 0.95)];
const RANGE_OWNERS: [(u64, f64); 2] = [(7, 0.1), (13, 0.2)];

fn fresh_engine() -> ShardedEngine {
    let mut cfg = EngineConfig::new(world());
    cfg.refine = true;
    let mut engine = ShardedEngine::new(cfg, 2);
    engine.load_public(public_objects());
    engine
}

/// Sequential reference: cloaked bytes for every row, plus the final
/// wire state of every standing query.
struct Reference {
    updates: Vec<Vec<u8>>,
    standing: Vec<((StandingKind, u64), Vec<u8>)>,
}

fn reference_run() -> Reference {
    let algo = GridCloak::new(world(), 16).with_refinement(true);
    let mut sys = PrivacyAwareSystem::new(algo, SECRET, public_objects());
    for i in 0..USERS {
        let profile = PrivacyProfile::uniform(requirement_for(i)).unwrap();
        sys.register_user(MobileUser::active(i, profile));
    }
    let mut updates = Vec::new();
    for &(id, pos, time) in &wave(0) {
        let u = sys.process_update(id, pos, time).unwrap().unwrap();
        updates.push(wire::encode_cloaked_update(&u).to_vec());
    }
    let mut keys: Vec<(StandingKind, u64)> = Vec::new();
    for &(x0, y0, x1, y1) in &COUNT_AREAS {
        let id = sys.add_standing_count(Rect::new_unchecked(x0, y0, x1, y1));
        keys.push((StandingKind::Count, id));
    }
    for &(user, radius) in &RANGE_OWNERS {
        let id = sys.add_standing_private_range(user, radius);
        keys.push((StandingKind::Range, id));
    }
    for w in 1..WAVES {
        for &(id, pos, time) in &wave(w) {
            let u = sys.process_update(id, pos, time).unwrap().unwrap();
            updates.push(wire::encode_cloaked_update(&u).to_vec());
        }
    }
    let standing = keys
        .into_iter()
        .map(|(kind, id)| {
            let state = sys.standing_state(kind, id).unwrap();
            ((kind, id), wire::encode_standing_state(&state).to_vec())
        })
        .collect();
    Reference { updates, standing }
}

/// K nodes on loopback plus a router fronting them.
fn spawn_cluster(k: usize) -> (Vec<NetServer>, Router) {
    let servers: Vec<NetServer> = (0..k)
        .map(|_| NetServer::bind("127.0.0.1:0", fresh_engine(), NetConfig::default()).unwrap())
        .collect();
    let addrs: Vec<String> = servers.iter().map(|s| s.local_addr().to_string()).collect();
    let addr_refs: Vec<&str> = addrs.iter().map(|s| s.as_str()).collect();
    let router = Router::bind("127.0.0.1:0", &addr_refs, world(), RouterConfig::default()).unwrap();
    (servers, router)
}

/// How many users' wave-to-wave movement crosses a K-way partition
/// boundary (each crossing forces a handoff).
fn boundary_crossers(k: usize) -> u64 {
    let pm = PartitionMap::new(world(), k);
    (0..USERS as usize)
        .filter(|&i| {
            let nodes: Vec<usize> = (0..WAVES).map(|w| pm.node_of(wave(w)[i].1)).collect();
            nodes.windows(2).any(|w| w[0] != w[1])
        })
        .count() as u64
}

#[test]
fn cluster_is_byte_identical_to_the_sequential_system() {
    let reference = reference_run();

    for k in [1usize, 2, 4] {
        // The workload itself guarantees boundary pressure: at K=2 and
        // K=4 far more than 10% of users change stripes between waves.
        if k > 1 {
            let crossers = boundary_crossers(k);
            assert!(
                crossers * 10 >= USERS,
                "workload must move >=10% of users across boundaries (K={k}: {crossers})"
            );
        }

        let (servers, router) = spawn_cluster(k);
        let mut client = NetClient::connect(router.local_addr()).unwrap();

        for i in 0..USERS {
            let r = requirement_for(i);
            assert_eq!(
                client.register(i, r.k, r.a_min, r.a_max).unwrap(),
                Reply::Ok,
                "register {i} (K={k})"
            );
        }
        let mut expect_updates = reference.updates.iter();
        for &(id, pos, time) in &wave(0) {
            match client.update(id, pos, time).unwrap() {
                Reply::Cloaked(bytes) => {
                    assert_eq!(
                        Some(&bytes),
                        expect_updates.next(),
                        "update user {id} (K={k})"
                    )
                }
                other => panic!("update user {id} (K={k}): unexpected reply {other:?}"),
            }
        }

        // Standing registrations broadcast through the router come back
        // with the same ids the sequential registries produced.
        let mut keys: Vec<(StandingKind, u64)> = Vec::new();
        for &(x0, y0, x1, y1) in &COUNT_AREAS {
            let area = Rect::new_unchecked(x0, y0, x1, y1);
            match client.register_standing_count(area).unwrap() {
                Reply::StandingRegistered(bytes) => {
                    let r = wire::decode_standing_ref(&bytes).unwrap();
                    assert_eq!(r.kind, StandingKind::Count);
                    keys.push((r.kind, r.id));
                }
                other => panic!("standing-count registration (K={k}): {other:?}"),
            }
        }
        for &(user, radius) in &RANGE_OWNERS {
            match client.register_standing_range(user, radius).unwrap() {
                Reply::StandingRegistered(bytes) => {
                    let r = wire::decode_standing_ref(&bytes).unwrap();
                    assert_eq!(r.kind, StandingKind::Range);
                    keys.push((r.kind, r.id));
                }
                other => panic!("standing-range registration (K={k}): {other:?}"),
            }
        }
        assert_eq!(
            keys,
            reference
                .standing
                .iter()
                .map(|(key, _)| *key)
                .collect::<Vec<_>>(),
            "query ids agree with the sequential registries (K={k})"
        );

        for w in 1..WAVES {
            for &(id, pos, time) in &wave(w) {
                match client.update(id, pos, time).unwrap() {
                    Reply::Cloaked(bytes) => {
                        assert_eq!(
                            Some(&bytes),
                            expect_updates.next(),
                            "update user {id} wave {w} (K={k})"
                        )
                    }
                    other => panic!("update user {id} wave {w} (K={k}): {other:?}"),
                }
            }
        }

        // Deltas fanned out by the router: every one decodes, and the
        // last per query matches the sequential final state under the
        // same per-kind comparison the single-node test uses.
        let deltas = client.take_standing_deltas();
        assert!(!deltas.is_empty(), "movement pushed deltas (K={k})");
        let mut last: HashMap<(StandingKind, u64), Vec<u8>> = HashMap::new();
        for bytes in &deltas {
            let state = wire::decode_standing_state(bytes).expect("delta decodes");
            let kind = match state {
                wire::StandingState::Count(_) => StandingKind::Count,
                wire::StandingState::Range(_) => StandingKind::Range,
            };
            last.insert((kind, state.id()), bytes.clone());
        }
        for (key, expect) in &reference.standing {
            let Some(bytes) = last.get(key) else { continue };
            let got = wire::decode_standing_state(bytes).unwrap();
            let want = wire::decode_standing_state(expect).unwrap();
            match (got, want) {
                (wire::StandingState::Count(g), wire::StandingState::Count(w)) => {
                    assert_eq!(
                        (g.seq, g.certain, g.possible),
                        (w.seq, w.certain, w.possible),
                        "last count delta for {key:?} (K={k})"
                    );
                }
                (wire::StandingState::Range(_), wire::StandingState::Range(_)) => {
                    assert_eq!(bytes, expect, "last range delta for {key:?} (K={k})");
                }
                _ => panic!("delta kind mismatch for {key:?} (K={k})"),
            }
        }

        // Snapshots routed to whichever node answers authoritatively
        // (node 0 for counts, the subject's owner for ranges) are
        // byte-identical to the sequential path — including the `seq`
        // counters, which survive handoffs intact.
        for (key, expect) in &reference.standing {
            match client.standing_snapshot(key.0, key.1).unwrap() {
                Reply::StandingState(bytes) => {
                    assert_eq!(&bytes, expect, "snapshot {key:?} (K={k})")
                }
                other => panic!("snapshot {key:?} (K={k}): unexpected reply {other:?}"),
            }
        }

        // Boundary crossings really happened and really migrated users.
        if k > 1 {
            assert!(
                router.handoffs() >= boundary_crossers(k),
                "handoffs (K={k}): {} < {}",
                router.handoffs(),
                boundary_crossers(k)
            );
        } else {
            assert_eq!(router.handoffs(), 0, "K=1 is a plain proxy");
        }

        drop(client);
        let report = router.shutdown();
        assert_eq!(report.route_failures, 0, "healthy cluster (K={k})");
        assert_eq!(report.handoffs == 0, k == 1);

        // Lockstep proof: *every* node's count registries hold the
        // sequential final state — the replicated planes never drifted.
        // (Range registries live only on the subject's owner; the
        // snapshot check above already pinned those.)
        for (n, server) in servers.into_iter().enumerate() {
            let engine = server.shutdown();
            for (key, expect) in &reference.standing {
                if key.0 != StandingKind::Count {
                    continue;
                }
                let state = engine.standing_state(key.0, key.1).unwrap();
                assert_eq!(
                    &wire::encode_standing_state(&state).to_vec(),
                    expect,
                    "node {n} count registry (K={k})"
                );
            }
        }
    }
}

/// A node that never answers walks the whole recovery ladder in plain
/// sight: requests it owns fail `RETRYABLE` while the supervisor
/// retries, then fail `DOWN` once the attempt budget is spent — never a
/// hang, never a masqueraded application error. Requests owned by the
/// *healthy* node keep succeeding throughout (the dead mirror is
/// absorbed), and no failure text ever leaks a node's socket address
/// through the public socket.
#[test]
fn dead_node_is_a_loud_kinded_error() {
    let good = NetServer::bind("127.0.0.1:0", fresh_engine(), NetConfig::default()).unwrap();
    let good_addr = good.local_addr().to_string();
    // A port that was just listening and no longer is: connecting to it
    // fails fast with a refusal.
    let dead_addr = {
        let l = TcpListener::bind("127.0.0.1:0").unwrap();
        l.local_addr().unwrap().to_string()
    };
    let router = Router::bind(
        "127.0.0.1:0",
        &[good_addr.as_str(), dead_addr.as_str()],
        world(),
        RouterConfig {
            reconnect_base: Duration::from_millis(5),
            reconnect_cap: Duration::from_millis(10),
            reconnect_attempts: 2,
            ..RouterConfig::default()
        },
    )
    .unwrap();
    let mut client = NetClient::connect(router.local_addr()).unwrap();

    // Registration touches only node 0 — it works.
    assert_eq!(
        client.register(1, 2, 0.0, f64::INFINITY).unwrap(),
        Reply::Ok
    );
    assert_eq!(
        client.register(2, 2, 0.0, f64::INFINITY).unwrap(),
        Reply::Ok
    );
    // (0.9, 0.9) lies in node 1's stripe: the request *needs* the dead
    // node. The first failure is the demotion itself — RETRYABLE, the
    // supervisor is about to try.
    let err = match client.update(1, Point::new(0.9, 0.9), SimTime::from_secs(1.0)) {
        Err(e) => e,
        Ok(r) => panic!("update owned by a dead node must not succeed: {r:?}"),
    };
    assert!(is_route_failure(&err), "kinded route failure, got {err}");
    assert!(
        err.to_string().contains("node 1"),
        "error names the dead node by index: {err}"
    );
    assert!(
        !err.to_string().contains(&dead_addr),
        "node addresses are topology and never cross the public socket: {err}"
    );
    // The supervisor burns its two attempts against a refused port and
    // declares the node down; from then on the failure kind is DOWN.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    let down_err = loop {
        match client.update(1, Point::new(0.9, 0.9), SimTime::from_secs(2.0)) {
            Err(e) if !is_retryable_route_failure(&e) => break e,
            Err(_) => {}
            Ok(r) => panic!("dead node must not answer: {r:?}"),
        }
        assert!(
            std::time::Instant::now() < deadline,
            "node 1 must be declared down within the attempt budget"
        );
        std::thread::sleep(Duration::from_millis(10));
    };
    assert!(is_route_failure(&down_err), "still kinded: {down_err}");
    assert!(
        down_err.to_string().contains("node 1") && !down_err.to_string().contains(&dead_addr),
        "DOWN text names the index, not the address: {down_err}"
    );
    let snap = router.metrics_registry().net().snapshot();
    assert!(snap.route_failures >= 1, "the DOWN failure was counted");
    assert!(
        snap.retryable_failures >= 1,
        "the reconnect-window failure was counted as retryable"
    );
    assert!(snap.reconnect_attempts >= 2, "the supervisor really tried");
    // A request owned by the *healthy* node sails through: its mirror
    // to the dead node is skipped, not failed. (User 2 never migrated —
    // user 1's single copy was mid-handoff toward the node that died,
    // which is lost with it, exactly as the recovery doctrine says.)
    match client.update(2, Point::new(0.1, 0.1), SimTime::from_secs(3.0)) {
        Ok(Reply::Cloaked(_)) => {}
        other => panic!("update owned by the live node must succeed: {other:?}"),
    }
    // The client connection itself is fine — the router still answers.
    match client.ping(b"alive").unwrap() {
        Reply::Pong(p) => assert_eq!(p, b"alive"),
        other => panic!("ping after route failure: {other:?}"),
    }
    let report = router.shutdown();
    assert!(report.route_failures >= 1);
    drop(good.shutdown());
}
