//! Adversarial and degenerate scenarios across the whole stack —
//! failure-injection coverage beyond the happy paths.

use privacy_lbs::anonymizer::{
    CloakError, CloakRequirement, CloakingAlgorithm, GridCloak, MbrCloak, NaiveCloak,
    PrivacyProfile, QuadCloak,
};
use privacy_lbs::geom::{Point, Rect, SimTime};
use privacy_lbs::server::{
    private_nn_candidates, private_range_candidates, PrivateRecord, PrivateStore, PublicCountQuery,
    PublicNnQuery, PublicObject, PublicStore,
};
use privacy_lbs::system::{wire, MobileUser, PrivacyAwareSystem};

fn world() -> Rect {
    Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
}

fn all_algorithms() -> Vec<Box<dyn CloakingAlgorithm>> {
    vec![
        Box::new(NaiveCloak::new(world(), 8)),
        Box::new(MbrCloak::new(world(), 8)),
        Box::new(QuadCloak::new(world(), 5)),
        Box::new(QuadCloak::new(world(), 5).with_neighbor_merge(true)),
        Box::new(GridCloak::new(world(), 8)),
        Box::new(GridCloak::new(world(), 8).with_refinement(true)),
    ]
}

/// A population of exactly one user: k=1 works, k=2 is best-effort.
#[test]
fn lone_user_in_the_world() {
    for mut algo in all_algorithms() {
        algo.upsert(0, Point::new(0.5, 0.5));
        let ok = algo.cloak(0, &CloakRequirement::none()).unwrap();
        assert!(ok.fully_satisfied(), "{}", algo.name());
        let best_effort = algo.cloak(0, &CloakRequirement::k_only(2)).unwrap();
        assert!(!best_effort.k_satisfied, "{}", algo.name());
        assert_eq!(best_effort.achieved_k, 1, "{}", algo.name());
        assert!(
            best_effort.region.contains_point(Point::new(0.5, 0.5)),
            "{}",
            algo.name()
        );
    }
}

/// Every user at the same point: k is trivially satisfiable but areas
/// are degenerate; a_min forces real area.
#[test]
fn fully_coincident_population() {
    for mut algo in all_algorithms() {
        for i in 0..50u64 {
            algo.upsert(i, Point::new(0.25, 0.75));
        }
        let c = algo.cloak(0, &CloakRequirement::k_only(50)).unwrap();
        assert!(c.k_satisfied, "{}", algo.name());
        let with_area = algo
            .cloak(
                0,
                &CloakRequirement {
                    k: 50,
                    a_min: 0.01,
                    a_max: f64::INFINITY,
                },
            )
            .unwrap();
        assert!(with_area.fully_satisfied(), "{}", algo.name());
        assert!(with_area.area() >= 0.01 - 1e-9, "{}", algo.name());
    }
}

/// Users exactly at world corners: cloaks stay inside the world and
/// still contain their subject.
#[test]
fn corner_users() {
    let corners = [
        Point::new(0.0, 0.0),
        Point::new(1.0, 0.0),
        Point::new(0.0, 1.0),
        Point::new(1.0, 1.0),
    ];
    for mut algo in all_algorithms() {
        for (i, c) in corners.iter().enumerate() {
            algo.upsert(i as u64, *c);
        }
        for i in 4..20u64 {
            algo.upsert(i, Point::new(0.5, 0.5));
        }
        for (i, c) in corners.iter().enumerate() {
            let cloak = algo.cloak(i as u64, &CloakRequirement::k_only(5)).unwrap();
            assert!(world().contains_rect(&cloak.region), "{}", algo.name());
            assert!(cloak.region.contains_point(*c), "{}", algo.name());
            assert!(cloak.k_satisfied, "{}", algo.name());
        }
    }
}

/// Contradictory profile: huge k with a tiny a_max. k wins (paper's
/// requirement 1 is the "minimum requirement"), area flag reports the
/// contradiction.
#[test]
fn contradictory_profile_is_best_effort_not_error() {
    for mut algo in all_algorithms() {
        for i in 0..100u64 {
            let x = 0.05 + 0.09 * (i % 10) as f64;
            let y = 0.05 + 0.09 * (i / 10) as f64;
            algo.upsert(i, Point::new(x, y));
        }
        let req = CloakRequirement {
            k: 80,
            a_min: 0.0,
            a_max: 1e-6,
        };
        let c = algo.cloak(0, &req).unwrap();
        assert!(c.k_satisfied, "{}: k has priority", algo.name());
        assert!(!c.area_satisfied, "{}: contradiction reported", algo.name());
    }
}

/// a_max = a_min = 0 with k = 1 degenerates to the exact point and is
/// satisfied.
#[test]
fn zero_area_bounds_with_no_privacy() {
    let mut algo = QuadCloak::new(world(), 5);
    algo.upsert(0, Point::new(0.3, 0.3));
    let req = CloakRequirement {
        k: 1,
        a_min: 0.0,
        a_max: 0.0,
    };
    let c = algo.cloak(0, &req).unwrap();
    assert!(c.fully_satisfied());
    assert_eq!(c.area(), 0.0);
}

/// Invalid requirements are rejected uniformly.
#[test]
fn invalid_requirements_error() {
    let mut algo = GridCloak::new(world(), 8);
    algo.upsert(0, Point::new(0.5, 0.5));
    for req in [
        CloakRequirement {
            k: 0,
            a_min: 0.0,
            a_max: 1.0,
        },
        CloakRequirement {
            k: 5,
            a_min: -0.1,
            a_max: 1.0,
        },
        CloakRequirement {
            k: 5,
            a_min: 0.5,
            a_max: 0.1,
        },
        CloakRequirement {
            k: 5,
            a_min: f64::NAN,
            a_max: 1.0,
        },
    ] {
        assert!(matches!(
            algo.cloak(0, &req),
            Err(CloakError::InvalidRequirement(_))
        ));
    }
}

/// Queries against an empty server and an empty world population.
#[test]
fn empty_server_queries() {
    let empty_public = PublicStore::new();
    let cloak = Rect::new_unchecked(0.2, 0.2, 0.4, 0.4);
    assert!(private_range_candidates(&empty_public, &cloak, 0.5).is_empty());
    assert!(private_nn_candidates(&empty_public, &cloak).is_empty());

    let empty_private = PrivateStore::new();
    let count = PublicCountQuery::new(world()).evaluate(&empty_private);
    assert_eq!(count.expected, 0.0);
    let nn = PublicNnQuery::new(Point::new(0.5, 0.5)).evaluate(&empty_private);
    assert!(nn.candidates.is_empty());
}

/// Private records with degenerate (point) regions work through all
/// public queries.
#[test]
fn degenerate_private_records() {
    let mut store = PrivateStore::new();
    for i in 0..10u64 {
        store.upsert(PrivateRecord::new(
            i,
            Rect::from_point(Point::new(0.1 * i as f64, 0.5)),
        ));
    }
    let count = PublicCountQuery::new(Rect::new_unchecked(0.0, 0.0, 0.45, 1.0)).evaluate(&store);
    // Points at x = 0.0..=0.4 are inside: 5 certain.
    assert_eq!(count.certain, 5);
    assert_eq!(count.possible, 5);
    assert_eq!(count.expected, 5.0);
    let nn = PublicNnQuery::new(Point::new(0.21, 0.5)).evaluate(&store);
    assert_eq!(nn.most_probable(), Some(2));
    assert_eq!(nn.candidates[0].probability, 1.0);
}

/// Garbage bytes never decode into wire messages, and truncation at
/// every length is rejected.
#[test]
fn wire_rejects_garbage() {
    let garbage = vec![0xFFu8; 64];
    // NaN bounds: f64 from 0xFF.. bytes is NaN -> invalid rect.
    assert!(wire::decode_cloaked_update(&garbage).is_none());
    for len in 0..wire::CLOAKED_UPDATE_LEN {
        assert!(wire::decode_cloaked_update(&garbage[..len]).is_none());
    }
    for len in 0..wire::EXACT_UPDATE_LEN {
        assert!(wire::decode_exact_update(&garbage[..len]).is_none());
    }
}

/// The system rejects flows for unknown users but keeps serving others.
#[test]
fn partial_failures_are_isolated() {
    let mut sys = PrivacyAwareSystem::new(
        QuadCloak::new(world(), 5),
        1,
        vec![PublicObject::new(0, Point::new(0.5, 0.5), 0)],
    );
    let profile = PrivacyProfile::uniform(CloakRequirement::k_only(2)).unwrap();
    sys.register_user(MobileUser::active(1, profile.clone()));
    sys.register_user(MobileUser::active(2, profile));
    sys.process_update(1, Point::new(0.4, 0.4), SimTime::ZERO)
        .unwrap();
    sys.process_update(2, Point::new(0.41, 0.41), SimTime::ZERO)
        .unwrap();
    // Unknown user errors...
    assert!(sys
        .process_update(99, Point::ORIGIN, SimTime::ZERO)
        .is_err());
    assert!(sys.private_nn_query(99, SimTime::ZERO).is_err());
    // ...while known users keep working.
    let out = sys.private_nn_query(1, SimTime::ZERO).unwrap();
    assert!(out.exact.is_some());
}

/// Extreme k values: u32::MAX must not overflow or hang.
#[test]
fn extreme_k_is_graceful() {
    let mut algo = QuadCloak::new(world(), 5);
    for i in 0..10u64 {
        algo.upsert(i, Point::new(0.1 * i as f64, 0.5));
    }
    let c = algo.cloak(0, &CloakRequirement::k_only(u32::MAX)).unwrap();
    assert!(!c.k_satisfied);
    assert_eq!(c.region, world());
}
