//! Fault-injection suite for the self-healing cluster, driven through
//! the in-process TCP chaos proxy ([`lbsp_net::ChaosProxy`]). Each test
//! puts node 1 of a two-node cluster behind the proxy and injects one
//! fault class the recovery doctrine (DESIGN.md) promises to survive:
//!
//! * **sever mid-request** — the owner's stripe fails `RETRYABLE`
//!   *fast* (no node-timeout burn), heals on restore, and every reply
//!   before/after the fault is byte-identical to a sequential engine;
//! * **sever mid-broadcast** — a dead *mirror* never fails a client
//!   request: plane frames and broadcasts are absorbed into the
//!   catch-up buffer and replayed in order on rejoin, keeping the
//!   standing registries in lockstep;
//! * **slow node** — a node answering slower than `node_timeout` is
//!   demoted and held in `Reconnecting` (RETRYABLE, never a hang)
//!   until it speeds back up;
//! * **catch-up overflow** — a tiny buffer forces the rejoin through
//!   the bulk `NODE_RESYNC` path (`resync_bytes` moves) and replies
//!   stay byte-identical after it;
//! * **kill → restart from WAL → rejoin** — the headline guarantee:
//!   a durable node hard-stopped under load and restarted from its
//!   journal on a fresh port rejoins, and the wire output matches the
//!   run that never crashed.

use lbsp_anonymizer::{CloakRequirement, PrivacyProfile};
use lbsp_cluster::{Router, RouterConfig};
use lbsp_core::engine::{EngineConfig, ShardedEngine};
use lbsp_core::wire::{self, StandingKind};
use lbsp_core::Durability;
use lbsp_geom::{Point, Rect, SimTime};
use lbsp_net::{is_retryable_route_failure, ChaosProxy, NetClient, NetConfig, NetServer, Reply};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

const USERS: u64 = 24;

fn world() -> Rect {
    Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
}

fn fresh_engine() -> ShardedEngine {
    let mut cfg = EngineConfig::new(world());
    cfg.refine = true;
    ShardedEngine::new(cfg, 2)
}

fn profile(i: u64) -> PrivacyProfile {
    let k = [2u32, 5, 10, 25][(i % 4) as usize];
    PrivacyProfile::uniform(CloakRequirement::k_only(k)).expect("valid profile")
}

/// Deterministic geometry with explicit stripe ownership: even users
/// live in node 0's stripe, odd users in node 1's, and per-wave drift
/// never crosses the boundary (handoffs happen exactly once, on the
/// first update).
fn pos(i: u64, wave: u64) -> Point {
    let x = if i.is_multiple_of(2) {
        0.10 + i as f64 * 0.012
    } else {
        0.55 + i as f64 * 0.012
    };
    Point::new(x + wave as f64 * 1e-3, 0.20 + i as f64 * 0.02)
}

fn stamp(i: u64, wave: u64) -> SimTime {
    SimTime::from_secs(wave as f64 * 60.0 + i as f64 * 1e-3)
}

/// A reconnect schedule fast enough for test-scale outages but with a
/// budget that outlasts every scripted fault window.
fn fast_recovery() -> RouterConfig {
    RouterConfig {
        node_timeout: Duration::from_millis(400),
        reconnect_base: Duration::from_millis(2),
        reconnect_cap: Duration::from_millis(10),
        reconnect_attempts: 5_000,
        ..RouterConfig::default()
    }
}

/// Two nodes — node 1 reached through a chaos proxy — and a router.
fn spawn(cfg: RouterConfig) -> (NetServer, NetServer, ChaosProxy, Router) {
    let node0 = NetServer::bind("127.0.0.1:0", fresh_engine(), NetConfig::default()).unwrap();
    let node1 = NetServer::bind("127.0.0.1:0", fresh_engine(), NetConfig::default()).unwrap();
    let proxy = ChaosProxy::bind(node1.local_addr()).unwrap();
    let nodes = [node0.local_addr().to_string(), proxy.addr().to_string()];
    let refs: Vec<&str> = nodes.iter().map(|s| s.as_str()).collect();
    let router = Router::bind("127.0.0.1:0", &refs, world(), cfg).unwrap();
    (node0, node1, proxy, router)
}

fn connect(router: &Router) -> NetClient {
    let client = NetClient::connect(router.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    client
        .set_write_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    client
}

fn register_all(client: &mut NetClient, reference: &mut ShardedEngine) {
    for i in 0..USERS {
        reference.register(i, profile(i));
        let k = [2u32, 5, 10, 25][(i % 4) as usize];
        assert_eq!(
            client.register(i, k, 0.0, f64::INFINITY).unwrap(),
            Reply::Ok,
            "register {i}"
        );
    }
}

/// One update compared byte-for-byte against the reference engine,
/// retrying RETRYABLE failures until `deadline`.
fn update_identical(
    client: &mut NetClient,
    reference: &mut ShardedEngine,
    i: u64,
    wave: u64,
    deadline: Instant,
) {
    let (p, t) = (pos(i, wave), stamp(i, wave));
    let want = reference
        .process_updates_wire(&[(i, p, t)])
        .into_iter()
        .next()
        .expect("one frame")
        .expect("registered user cloaks")
        .to_vec();
    loop {
        match client.update(i, p, t) {
            Ok(Reply::Cloaked(bytes)) => {
                assert_eq!(bytes, want, "update {i} wave {wave} diverges");
                return;
            }
            Err(e) if is_retryable_route_failure(&e) && Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(5));
            }
            other => panic!("update {i} wave {wave}: {other:?}"),
        }
    }
}

fn run_wave(client: &mut NetClient, reference: &mut ShardedEngine, ids: &[u64], wave: u64) {
    let deadline = Instant::now() + Duration::from_secs(10);
    for &i in ids {
        update_identical(client, reference, i, wave, deadline);
    }
}

fn all_users() -> Vec<u64> {
    (0..USERS).collect()
}

fn even_users() -> Vec<u64> {
    (0..USERS).step_by(2).collect()
}

#[test]
fn sever_mid_request_fails_retryable_fast_and_heals_byte_identical() {
    let (node0, node1, proxy, router) = spawn(fast_recovery());
    let mut reference = fresh_engine();
    let mut client = connect(&router);
    register_all(&mut client, &mut reference);
    run_wave(&mut client, &mut reference, &all_users(), 0);

    proxy.sever();
    std::thread::sleep(Duration::from_millis(30));
    // The owner's stripe fails RETRYABLE, and it fails *fast*: the
    // demotion check in `begin` must answer from the state machine, not
    // burn the full node timeout against a channel whose reader is gone
    // (the dead-channel race this PR fixes).
    let started = Instant::now();
    match client.update(1, pos(1, 1), stamp(1, 1)) {
        Err(e) => {
            assert!(is_retryable_route_failure(&e), "kind is RETRYABLE: {e}");
            assert!(
                !e.to_string().contains(&node1.local_addr().to_string()),
                "no address leak: {e}"
            );
        }
        Ok(r) => panic!("severed stripe answered {r:?}"),
    }
    assert!(
        started.elapsed() < Duration::from_millis(350),
        "severed stripe must fail fast, took {:?}",
        started.elapsed()
    );

    // Nothing died — the proxy just cut the wire. Restore it and the
    // supervisor heals the node; the stranded request then succeeds and
    // stays on the sequential byte stream.
    proxy.restore();
    run_wave(&mut client, &mut reference, &all_users(), 1);

    let snap = router.metrics_registry().net().snapshot();
    assert!(snap.retryable_failures >= 1, "retryable counted");
    assert!(snap.node_rejoins >= 1, "rejoin counted");
    let report = router.shutdown();
    assert_eq!(report.route_failures, 0, "no fatal failures");
    drop((node0.shutdown(), node1.shutdown()));
}

#[test]
fn sever_mid_broadcast_never_fails_the_client_and_replays_in_order() {
    let (node0, node1, proxy, router) = spawn(fast_recovery());
    let mut reference = fresh_engine();
    let mut client = connect(&router);
    register_all(&mut client, &mut reference);
    run_wave(&mut client, &mut reference, &all_users(), 0);

    proxy.sever();
    std::thread::sleep(Duration::from_millis(30));
    // Node 1 is now only a *mirror* for this traffic: every update in
    // node 0's stripe must succeed byte-identically (the mirror frames
    // are absorbed into the catch-up buffer, not failed)…
    run_wave(&mut client, &mut reference, &even_users(), 1);
    // …and a standing-query broadcast mid-outage succeeds too, with the
    // id the sequential registry assigns (node 0 — the sole allocator —
    // grants it; the STANDING_INSTALL mirror frame carrying that id is
    // buffered and replays into node 1 on rejoin).
    let area = Rect::new_unchecked(0.05, 0.05, 0.45, 0.95);
    let want_id = reference.add_standing_count(area);
    let got = match client.register_standing_count(area).unwrap() {
        Reply::StandingRegistered(bytes) => wire::decode_standing_ref(&bytes).unwrap(),
        other => panic!("standing registration during outage: {other:?}"),
    };
    assert_eq!((got.kind, got.id), (StandingKind::Count, want_id));

    proxy.restore();
    // Odd stripe comes back (buffer replayed first, in order), and the
    // whole population keeps the sequential byte stream.
    run_wave(&mut client, &mut reference, &all_users(), 2);
    let want = reference
        .standing_state(StandingKind::Count, want_id)
        .unwrap();
    match client
        .standing_snapshot(StandingKind::Count, want_id)
        .unwrap()
    {
        Reply::StandingState(bytes) => {
            assert_eq!(
                bytes,
                wire::encode_standing_state(&want).to_vec(),
                "standing snapshot after rejoin"
            );
        }
        other => panic!("standing snapshot: {other:?}"),
    }

    let report = router.shutdown();
    assert_eq!(
        report.route_failures, 0,
        "a dead mirror never fails a client request"
    );
    drop(node0.shutdown());
    // Lockstep proof at the node level: the replayed registry on the
    // rejoined mirror carries the same observable counters (`expected`
    // is summation-order-sensitive f64, so integers pin the claim).
    let engine1 = node1.shutdown();
    let state = engine1
        .standing_state(StandingKind::Count, want_id)
        .unwrap();
    match (state, want) {
        (wire::StandingState::Count(g), wire::StandingState::Count(w)) => {
            assert_eq!(
                (g.seq, g.certain, g.possible),
                (w.seq, w.certain, w.possible),
                "rejoined mirror registry in lockstep"
            );
        }
        _ => panic!("count query answered with a non-count state"),
    }
}

#[test]
fn ack_lost_standing_install_replays_as_a_noop() {
    // The nastiest broadcast fault: node 1 *applies* the mirror install
    // but the ack never reaches the router (the proxy cuts the reply at
    // byte zero). The router must park the frame and replay it on
    // rejoin, and the replay must be a no-op — the install carries the
    // node-0-granted id, so re-installing a present id changes nothing.
    // Allocation-in-lockstep mirroring would double-register here and
    // skew every later id on node 1.
    let (node0, node1, proxy, router) = spawn(fast_recovery());
    let mut reference = fresh_engine();
    let mut client = connect(&router);
    register_all(&mut client, &mut reference);
    run_wave(&mut client, &mut reference, &all_users(), 0);

    let register_identical = |client: &mut NetClient, reference: &mut ShardedEngine, area| {
        let want_id = reference.add_standing_count(area);
        let deadline = Instant::now() + Duration::from_secs(10);
        loop {
            match client.register_standing_count(area) {
                Ok(Reply::StandingRegistered(bytes)) => {
                    let got = wire::decode_standing_ref(&bytes).unwrap();
                    assert_eq!((got.kind, got.id), (StandingKind::Count, want_id));
                    return want_id;
                }
                Err(e) if is_retryable_route_failure(&e) && Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(5));
                }
                other => panic!("standing registration: {other:?}"),
            }
        }
    };

    // Query A lands everywhere cleanly.
    let id_a = register_identical(
        &mut client,
        &mut reference,
        Rect::new_unchecked(0.05, 0.05, 0.45, 0.95),
    );
    // All traffic is quiesced (closed-loop client), so the next
    // upstream→client bytes are exactly the ack of the next mirror
    // frame: query B's install reaches node 1, its ack does not.
    proxy.sever_after_downstream_bytes(0);
    let id_b = register_identical(
        &mut client,
        &mut reference,
        Rect::new_unchecked(0.50, 0.05, 0.95, 0.95),
    );
    // Query C registers while node 1 is away: its install is buffered
    // behind the parked replay of B's.
    let id_c = register_identical(
        &mut client,
        &mut reference,
        Rect::new_unchecked(0.25, 0.25, 0.75, 0.75),
    );

    proxy.restore();
    // Rejoin replays B's install (a no-op — node 1 already holds id B)
    // then C's, and the cluster stays on the sequential byte stream.
    run_wave(&mut client, &mut reference, &all_users(), 1);

    let snap = router.metrics_registry().net().snapshot();
    assert!(snap.node_rejoins >= 1, "rejoin counted");
    assert_eq!(snap.mirror_drops, 0, "no preserved frame was dropped");
    let report = router.shutdown();
    assert_eq!(report.route_failures, 0, "no fatal failures");
    drop(node0.shutdown());

    // Node-level proof on the rejoined mirror: exactly the three
    // queries, under exactly the reference's ids — no phantom duplicate
    // from the replayed install, no skewed counter. (`expected` is
    // summation-order-sensitive f64; integers pin the claim.)
    let engine1 = node1.shutdown();
    assert_eq!(engine1.standing_counts().len(), 3, "no phantom queries");
    for id in [id_a, id_b, id_c] {
        let want = reference.standing_state(StandingKind::Count, id).unwrap();
        let got = engine1.standing_state(StandingKind::Count, id).unwrap();
        match (got, want) {
            (wire::StandingState::Count(g), wire::StandingState::Count(w)) => {
                assert_eq!(
                    (g.id, g.seq, g.certain, g.possible),
                    (w.id, w.seq, w.certain, w.possible),
                    "query {id} on the rejoined mirror"
                );
            }
            _ => panic!("count query answered with a non-count state"),
        }
    }
}

#[test]
fn slow_node_is_demoted_retryable_and_heals_when_it_speeds_up() {
    let mut cfg = fast_recovery();
    cfg.node_timeout = Duration::from_millis(150);
    let (node0, node1, proxy, router) = spawn(cfg);
    let mut reference = fresh_engine();
    let mut client = connect(&router);
    register_all(&mut client, &mut reference);
    run_wave(&mut client, &mut reference, &all_users(), 0);

    // Every forwarded chunk now takes far longer than the node timeout:
    // the next request on node 1's stripe must time out into a
    // RETRYABLE demotion — bounded by `node_timeout`, never a hang —
    // and the liveness ping keeps the node in `Reconnecting` for as
    // long as it stays slow.
    proxy.set_delay(Duration::from_millis(600));
    let started = Instant::now();
    match client.update(1, pos(1, 1), stamp(1, 1)) {
        Err(e) => assert!(is_retryable_route_failure(&e), "kind is RETRYABLE: {e}"),
        Ok(r) => panic!("slow node answered in time: {r:?}"),
    }
    let elapsed = started.elapsed();
    assert!(
        elapsed < Duration::from_secs(5),
        "slowness is bounded by node_timeout, took {elapsed:?}"
    );

    proxy.set_delay(Duration::ZERO);
    run_wave(&mut client, &mut reference, &all_users(), 1);
    let snap = router.metrics_registry().net().snapshot();
    assert!(snap.retryable_failures >= 1);
    assert!(snap.node_rejoins >= 1, "recovered once the delay cleared");
    let report = router.shutdown();
    assert_eq!(report.route_failures, 0);
    drop((node0.shutdown(), node1.shutdown()));
}

#[test]
fn catchup_overflow_rejoins_through_bulk_resync() {
    let mut cfg = fast_recovery();
    // Small enough that a handful of mirror frames overflows it.
    cfg.catchup_buffer_bytes = 256;
    let (node0, node1, proxy, router) = spawn(cfg);
    let mut reference = fresh_engine();
    let mut client = connect(&router);
    register_all(&mut client, &mut reference);
    run_wave(&mut client, &mut reference, &all_users(), 0);

    proxy.sever();
    std::thread::sleep(Duration::from_millis(30));
    // Two full waves of node-0-stripe traffic: far more plane bytes
    // than the buffer holds, so the rejoin must go through the bulk
    // donor-resync path instead of ordered replay.
    run_wave(&mut client, &mut reference, &even_users(), 1);
    run_wave(&mut client, &mut reference, &even_users(), 2);

    proxy.restore();
    // The stranded stripe heals — its first reply proves the bulk image
    // (positions and cloaks are exact-bit codecs) reconstructed the
    // planes, because the cloak for an odd user depends on the *whole*
    // population's positions.
    run_wave(&mut client, &mut reference, &all_users(), 3);

    let snap = router.metrics_registry().net().snapshot();
    assert!(
        snap.resync_bytes > 0,
        "overflowed rejoin must pay a bulk resync, counters: {snap:?}"
    );
    assert!(snap.node_rejoins >= 1);
    let report = router.shutdown();
    assert_eq!(report.route_failures, 0);
    drop((node0.shutdown(), node1.shutdown()));
}

// ---------------------------------------------------------------------
// Kill → restart from WAL → rejoin (the acceptance guarantee).
// ---------------------------------------------------------------------

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn new() -> TempDir {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("lbsp-cluster-chaos-{}-{n}", std::process::id()));
        fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

#[test]
fn killed_node_restarts_from_wal_rejoins_and_stays_byte_identical() {
    let dir = TempDir::new();
    let open_node1 = || {
        let mut cfg = EngineConfig::new(world());
        cfg.refine = true;
        lbsp_store::open_engine(dir.path(), cfg, 2, Durability::default())
            .expect("open durable node 1")
    };

    let node0 = NetServer::bind("127.0.0.1:0", fresh_engine(), NetConfig::default()).unwrap();
    let opened = open_node1();
    assert!(!opened.recovered);
    let node1 = NetServer::bind("127.0.0.1:0", opened.engine, NetConfig::default()).unwrap();
    let proxy = ChaosProxy::bind(node1.local_addr()).unwrap();
    let nodes = [node0.local_addr().to_string(), proxy.addr().to_string()];
    let refs: Vec<&str> = nodes.iter().map(|s| s.as_str()).collect();
    let router = Router::bind("127.0.0.1:0", &refs, world(), fast_recovery()).unwrap();
    let mut reference = fresh_engine();
    let mut client = connect(&router);
    register_all(&mut client, &mut reference);
    run_wave(&mut client, &mut reference, &all_users(), 0);
    run_wave(&mut client, &mut reference, &all_users(), 1);

    // Hard-stop the durable node mid-life and cut its wire.
    proxy.sever();
    drop(node1.shutdown());
    std::thread::sleep(Duration::from_millis(30));
    match client.update(1, pos(1, 2), stamp(1, 2)) {
        Err(e) => assert!(is_retryable_route_failure(&e), "outage is RETRYABLE: {e}"),
        Ok(r) => panic!("killed node answered {r:?}"),
    }
    // The healthy stripe never notices (mirrors buffered).
    run_wave(&mut client, &mut reference, &even_users(), 2);

    // Restart from the journal on a fresh port; retarget and heal the
    // proxy; the supervisor replays the buffered frames and the cluster
    // output rejoins the uncrashed byte stream — odd stripe included.
    let opened = open_node1();
    assert!(opened.recovered, "restart recovered WAL state");
    let node1 = NetServer::bind("127.0.0.1:0", opened.engine, NetConfig::default()).unwrap();
    proxy.set_upstream(node1.local_addr());
    proxy.restore();
    let odd: Vec<u64> = (1..USERS).step_by(2).collect();
    run_wave(&mut client, &mut reference, &odd, 2);
    run_wave(&mut client, &mut reference, &all_users(), 3);

    let snap = router.metrics_registry().net().snapshot();
    assert!(snap.node_rejoins >= 1, "the rejoin happened");
    assert!(snap.reconnect_attempts >= 1);
    let report = router.shutdown();
    assert_eq!(
        report.route_failures, 0,
        "a transient single fault leaves no fatal route failures"
    );
    drop((node0.shutdown(), node1.shutdown()));
}
