//! Deterministic concurrency tests for the sharded engine.
//!
//! The contract under test: the sharded, multi-worker engine is an
//! *implementation detail* — every byte that crosses the anonymizer →
//! server trust boundary is identical to what the single-threaded
//! pipeline emits, for every worker count and every replayed schedule.
//! Cloaking consumes only integer cell counts, summing per-shard counts
//! is order-independent, and per-shard query results merge in canonical
//! id order, so equivalence is exact, not approximate.

use lbsp_anonymizer::{CloakRequirement, GridCloak, LocationAnonymizer, PrivacyProfile};
use lbsp_core::engine::{EngineConfig, ShardedEngine};
use lbsp_core::wire;
use lbsp_geom::{Point, Rect, SimTime};
use lbsp_server::{private_range_candidates, PublicObject, PublicStore, Server};
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

fn world() -> Rect {
    Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
}

/// A seeded random population with mixed privacy requirements.
fn random_updates(seed: u64, n: u64) -> Vec<(u64, Point, SimTime)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
            (i, p, SimTime::from_secs(rng.random_range(0.0..3600.0)))
        })
        .collect()
}

fn profile_for(i: u64) -> PrivacyProfile {
    // Cycle through k levels and an occasional area floor.
    let k = [2u32, 5, 10, 25][(i % 4) as usize];
    let a_min = if i.is_multiple_of(5) { 0.01 } else { 0.0 };
    PrivacyProfile::uniform(CloakRequirement {
        k,
        a_min,
        a_max: f64::INFINITY,
    })
    .unwrap()
}

fn sequential(refine: bool, n: u64) -> LocationAnonymizer<GridCloak> {
    let cfg = EngineConfig::new(world());
    let mut a = LocationAnonymizer::new(
        GridCloak::new(world(), cfg.grid_side).with_refinement(refine),
        cfg.secret,
    );
    for i in 0..n {
        a.register(i, profile_for(i));
    }
    a
}

fn sharded(refine: bool, threads: usize, n: u64) -> ShardedEngine {
    let mut cfg = EngineConfig::new(world());
    cfg.refine = refine;
    let mut e = ShardedEngine::new(cfg, threads);
    for i in 0..n {
        e.register(i, profile_for(i));
    }
    e
}

/// Sequential anonymizer and 4-worker sharded engine agree on every
/// cloak — region, achieved k, flags, pseudonym — across seeds, with
/// and without multi-level refinement.
#[test]
fn sharded_equals_sequential_across_seeds() {
    for refine in [false, true] {
        for seed in [1u64, 7, 42] {
            let updates = random_updates(seed, 200);
            let mut seq = sequential(refine, 200);
            let mut eng = sharded(refine, 4, 200);
            let a = seq.handle_updates_batch(&updates);
            let b = eng.process_updates(&updates);
            assert_eq!(a.len(), b.len());
            for (i, (x, y)) in a.iter().zip(&b).enumerate() {
                let x = x.as_ref().unwrap();
                let y = y.as_ref().unwrap();
                assert_eq!(x.pseudonym, y.pseudonym, "row {i} seed {seed}");
                assert_eq!(x.region, y.region, "row {i} seed {seed} refine {refine}");
            }
        }
    }
}

/// `--threads 1` and `--threads 4` produce bit-identical wire bytes, as
/// do replayed schedules under many seeds.
#[test]
fn thread_counts_and_schedules_are_byte_identical() {
    let updates = random_updates(99, 300);
    let reference = sharded(true, 1, 300).process_updates_wire(&updates);
    for threads in [2usize, 4] {
        let got = sharded(true, threads, 300).process_updates_wire(&updates);
        for (a, b) in reference.iter().zip(&got) {
            assert_eq!(a.as_ref().unwrap().to_vec(), b.as_ref().unwrap().to_vec());
        }
    }
    for seed in 0..16u64 {
        let mut cfg = EngineConfig::new(world());
        cfg.refine = true;
        let mut replay = ShardedEngine::with_replay(cfg, seed);
        for i in 0..300u64 {
            replay.register(i, profile_for(i));
        }
        let got = replay.process_updates_wire(&updates);
        for (a, b) in reference.iter().zip(&got) {
            assert_eq!(
                a.as_ref().unwrap().to_vec(),
                b.as_ref().unwrap().to_vec(),
                "replay seed {seed}"
            );
        }
    }
}

/// Users parked exactly on shard-stripe boundaries — and cloaks that
/// straddle several stripes — behave identically to the sequential path.
#[test]
fn shard_boundary_users_are_equivalent() {
    let n = 64u64;
    let mut seq = sequential(false, n);
    let mut eng = sharded(false, 4, n);
    // With 4 stripes the boundaries sit at x = 0.25, 0.5, 0.75; also
    // test the world edges where clamping applies.
    let xs = [0.0, 0.25, 0.5, 0.75, 1.0];
    let updates: Vec<(u64, Point, SimTime)> = (0..n)
        .map(|i| {
            let x = xs[(i % 5) as usize];
            let y = (i as f64 / n as f64).min(0.999);
            (i, Point::new(x, y), SimTime::ZERO)
        })
        .collect();
    let a = seq.handle_updates_batch(&updates);
    let b = eng.process_updates(&updates);
    for (i, (x, y)) in a.iter().zip(&b).enumerate() {
        let (x, y) = (x.as_ref().unwrap(), y.as_ref().unwrap());
        assert_eq!(x.region, y.region, "boundary row {i}");
        // Sparse columns force merges across stripe boundaries; the
        // regions must still contain the subject.
        assert!(y.region.region.contains_point(updates[i].1));
    }
    // A boundary user moving along the boundary line stays single-copy.
    eng.process_updates(&[(0, Point::new(0.5, 0.9), SimTime::from_secs(1.0))]);
    assert_eq!(eng.population(), n as usize);
}

/// Private range queries: the sharded fan-out merged in id order equals
/// the unsharded server's candidate set, and the wire request carries
/// the same cloak the sequential anonymizer would produce.
#[test]
fn range_queries_match_unsharded_server() {
    let mut rng = StdRng::seed_from_u64(5);
    let objects: Vec<PublicObject> = (0..150u64)
        .map(|id| {
            PublicObject::new(
                id,
                Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)),
                0,
            )
        })
        .collect();
    let updates = random_updates(11, 120);
    let mut seq = sequential(false, 120);
    let mut server = Server::new(objects.clone());
    let mut eng = sharded(false, 4, 120);
    eng.load_public(objects);
    seq.handle_updates_batch(&updates);
    eng.process_updates(&updates);
    for user in [0u64, 3, 57, 119] {
        for radius in [0.05, 0.2] {
            let ans = eng.range_query(user, SimTime::ZERO, radius).unwrap();
            let q = seq.cloak_query(user, SimTime::ZERO).unwrap();
            assert_eq!(q.region, ans.region, "user {user}");
            let mut expect = server.private_range(&q.region.region, radius);
            expect.sort_unstable_by_key(|o| o.id);
            assert_eq!(ans.candidates, expect, "user {user} radius {radius}");
            // Round-trip the response hop.
            let decoded = wire::decode_candidates(&ans.response).unwrap();
            let expect_pairs: Vec<(u64, Point)> = expect.iter().map(|o| (o.id, o.pos)).collect();
            assert_eq!(decoded, expect_pairs);
        }
    }
}

/// 10k users through a 4-worker engine: every cloak satisfies its
/// requirement, the private store tracks one record per user, and a
/// second full-population batch (all users moving) stays consistent.
#[test]
fn ten_thousand_user_smoke() {
    let n = 10_000u64;
    let mut eng = sharded(false, 4, n);
    let updates = random_updates(1234, n);
    let out = eng.process_updates(&updates);
    assert_eq!(out.len(), n as usize);
    for (i, res) in out.iter().enumerate() {
        let u = res.as_ref().unwrap();
        assert!(u.region.k_satisfied, "row {i}");
        assert!(u.region.region.contains_point(updates[i].1));
    }
    assert_eq!(eng.population(), n as usize);
    assert_eq!(eng.private_len(), n as usize);
    // Everybody moves: population and record counts must not drift.
    let mut moved = random_updates(5678, n);
    for (i, u) in moved.iter_mut().enumerate() {
        u.2 = SimTime::from_secs(60.0 + i as f64);
    }
    let out = eng.process_updates(&moved);
    assert!(out.iter().all(|r| r.is_ok()));
    assert_eq!(eng.population(), n as usize);
    assert_eq!(eng.private_len(), n as usize);
    assert_eq!(eng.private_intersecting(&world()), n as usize);
}

/// The per-object range predicate is shard-decomposable: the union of
/// per-shard candidate lists over a partition of the objects equals the
/// candidates over the whole set — checked directly on the primitive.
#[test]
fn candidate_predicate_is_partition_invariant() {
    let mut rng = StdRng::seed_from_u64(77);
    let objects: Vec<PublicObject> = (0..80u64)
        .map(|id| {
            PublicObject::new(
                id,
                Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)),
                0,
            )
        })
        .collect();
    let whole = PublicStore::bulk_load(objects.clone());
    // Partition into 3 arbitrary stores.
    let mut parts = vec![Vec::new(), Vec::new(), Vec::new()];
    for o in &objects {
        parts[(o.id % 3) as usize].push(*o);
    }
    let stores: Vec<PublicStore> = parts.into_iter().map(PublicStore::bulk_load).collect();
    let cloak = Rect::new_unchecked(0.3, 0.3, 0.6, 0.6);
    for radius in [0.0, 0.1, 0.4] {
        let mut merged: Vec<PublicObject> = stores
            .iter()
            .flat_map(|s| private_range_candidates(s, &cloak, radius))
            .collect();
        merged.sort_unstable_by_key(|o| o.id);
        let mut expect = private_range_candidates(&whole, &cloak, radius);
        expect.sort_unstable_by_key(|o| o.id);
        assert_eq!(merged, expect, "radius {radius}");
    }
}
