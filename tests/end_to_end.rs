//! Cross-crate integration tests: the full architecture of Fig. 1
//! exercised through the public API of the umbrella crate.

use privacy_lbs::anonymizer::{
    CloakRequirement, CloakingAlgorithm, GridCloak, PrivacyProfile, QuadCloak,
};
use privacy_lbs::geom::{Point, Rect, SimTime};
use privacy_lbs::mobility::{PoiCategory, PoiSet, SpatialDistribution};
use privacy_lbs::server::PublicObject;
use privacy_lbs::system::{MobileUser, PrivacyAwareSystem, SimulationConfig, SimulationEngine};

fn world() -> Rect {
    Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
}

fn pois(n: usize) -> Vec<PublicObject> {
    PoiSet::generate_category(
        world(),
        n,
        PoiCategory::GasStation,
        &SpatialDistribution::Uniform,
        5,
    )
    .pois()
    .iter()
    .map(|p| PublicObject::new(p.id, p.pos, 0))
    .collect()
}

fn lattice_system<A: CloakingAlgorithm>(algo: A, k: u32, n_pois: usize) -> PrivacyAwareSystem<A> {
    let mut sys = PrivacyAwareSystem::new(algo, 77, pois(n_pois));
    let profile = PrivacyProfile::uniform(CloakRequirement::k_only(k)).unwrap();
    for i in 0..400u64 {
        sys.register_user(MobileUser::active(i, profile.clone()));
        let x = 0.025 + 0.05 * (i % 20) as f64;
        let y = 0.025 + 0.05 * (i / 20) as f64;
        sys.process_update(i, Point::new(x, y), SimTime::ZERO)
            .unwrap();
    }
    sys
}

/// The core privacy invariant, end to end: with k > 1 the server never
/// receives a record that pinpoints a user, and every stored region was
/// k-anonymous when produced.
#[test]
fn server_never_sees_exact_locations() {
    let mut sys = lattice_system(QuadCloak::new(world(), 6), 10, 100);
    for i in 0..400u64 {
        let update = sys
            .process_update(i, sys.device_position(i).unwrap(), SimTime::from_secs(1.0))
            .unwrap()
            .unwrap();
        assert!(
            update.region.area() > 0.0,
            "user {i}: k=10 region is not a point"
        );
        assert!(update.region.achieved_k >= 10);
        // The pseudonym is not the true id.
        assert_ne!(update.pseudonym.0, i);
    }
    assert_eq!(sys.private_store().len(), 400);
}

/// End-to-end QoS invariant: private queries answered over cloaks give
/// exactly the same final answer as queries over the exact location,
/// paying only candidate-set overhead.
#[test]
fn private_queries_are_exact_after_refinement() {
    let mut sys = lattice_system(GridCloak::new(world(), 32), 15, 200);
    for id in (0..400u64).step_by(13) {
        let pos = sys.device_position(id).unwrap();
        // Range query.
        let out = sys.private_range_query(id, 0.12, SimTime::ZERO).unwrap();
        let direct: Vec<_> = sys
            .public_store()
            .iter()
            .filter(|o| o.pos.dist(pos) <= 0.12)
            .map(|o| o.id)
            .collect();
        assert_eq!(out.exact.len(), direct.len(), "user {id}");
        assert!(out.candidates.len() >= out.exact.len());
        // NN query.
        let nn = sys.private_nn_query(id, SimTime::ZERO).unwrap();
        let direct_nn = sys.public_store().k_nearest(pos, 1)[0];
        let got = nn.exact.unwrap();
        assert!(
            (got.pos.dist(pos) - direct_nn.pos.dist(pos)).abs() < 1e-12,
            "user {id}"
        );
    }
}

/// Greater k must not reduce privacy and must not improve QoS: the
/// monotone trade-off claim of the paper's introduction.
#[test]
fn privacy_qos_tradeoff_is_monotone() {
    let mut area_by_k = Vec::new();
    let mut cands_by_k = Vec::new();
    for k in [2u32, 10, 50, 150] {
        let mut sys = lattice_system(QuadCloak::new(world(), 6), k, 300);
        let mut area = 0.0;
        let mut cands = 0usize;
        let ids: Vec<u64> = (0..400).step_by(7).collect();
        for &id in &ids {
            let out = sys.private_nn_query(id, SimTime::ZERO).unwrap();
            area += out.cloak.area();
            cands += out.candidates.len();
        }
        area_by_k.push(area / ids.len() as f64);
        cands_by_k.push(cands as f64 / ids.len() as f64);
    }
    for w in area_by_k.windows(2) {
        assert!(
            w[1] >= w[0] - 1e-12,
            "cloak area grows with k: {area_by_k:?}"
        );
    }
    assert!(
        cands_by_k.last().unwrap() > cands_by_k.first().unwrap(),
        "candidate cost grows with k: {cands_by_k:?}"
    );
}

/// Public queries degrade gracefully: the interval always brackets the
/// true count.
#[test]
fn public_count_interval_brackets_truth() {
    let mut sys = lattice_system(QuadCloak::new(world(), 6), 20, 50);
    for t in 0..20 {
        let fx = (t % 5) as f64 / 6.25;
        let fy = (t / 5) as f64 / 5.0;
        let q = Rect::new_unchecked(fx, fy, (fx + 0.3).min(1.0), (fy + 0.3).min(1.0));
        let truth = (0..400u64)
            .filter(|&i| q.contains_point(sys.device_position(i).unwrap()))
            .count();
        let ans = sys.public_count_query(q);
        assert!(
            ans.certain <= truth && truth <= ans.possible,
            "rect {t}: truth {truth} outside [{}, {}]",
            ans.certain,
            ans.possible
        );
        // The PDF agrees with the interval.
        assert!(ans.probability_of(truth) > 0.0 || ans.possible == ans.certain);
    }
}

/// A full simulated day with the paper's profile: the system works
/// under temporal requirement switches without a single failure.
#[test]
fn full_day_with_paper_profile() {
    let w = Rect::new_unchecked(0.0, 0.0, 6.0, 6.0);
    let cfg = SimulationConfig {
        users: 500,
        pois: 100,
        distribution: SpatialDistribution::three_cities(&w),
        speed: (0.002, 0.01),
        tick_seconds: 2.0 * 3600.0,
        query_fraction: 0.1,
        query_radius: 0.5,
        seed: 99,
    };
    let mut engine =
        SimulationEngine::new(QuadCloak::new(w, 7), cfg, PrivacyProfile::paper_example());
    let reports = engine.run(12); // 24 hours
    assert_eq!(reports.len(), 12);
    let total_updates: usize = reports.iter().map(|r| r.updates).sum();
    assert_eq!(total_updates, 500 * 12);
    // k=1000 > 500 users, so night cloaks are flagged unsatisfied —
    // best-effort, not an error.
    let night_unsat: usize = reports.iter().map(|r| r.unsatisfied).sum();
    assert!(night_unsat > 0, "night ticks are best-effort");
}

/// Unregistering (passive mode) stops the flow of information.
#[test]
fn unregister_is_forgotten() {
    let mut sys = lattice_system(QuadCloak::new(world(), 6), 5, 10);
    assert!(sys.private_range_query(3, 0.1, SimTime::ZERO).is_ok());
    // Simulate opting out by replacing with a passive registration: the
    // anonymizer drops the user.
    sys.register_user(MobileUser::passive(3));
    let out = sys
        .process_update(3, Point::new(0.5, 0.5), SimTime::ZERO)
        .unwrap();
    assert!(out.is_none(), "passive users produce no cloaked updates");
}
