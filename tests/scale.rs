//! Laptop-scale stress test, ignored by default.
//!
//! Run with: `cargo test --release --test scale -- --ignored`

use privacy_lbs::anonymizer::{CloakRequirement, PrivacyProfile, QuadCloak};
use privacy_lbs::geom::{Rect, SimTime};
use privacy_lbs::mobility::SpatialDistribution;
use privacy_lbs::system::{SimulationConfig, SimulationEngine};

/// 100,000 users through three full ticks of the pipeline: every update
/// cloaks, every cloak is k-anonymous, every sampled query refines to
/// the exact answer. This is the headline scalability claim exercised
/// end to end rather than per-kernel.
#[test]
#[ignore = "takes ~a minute; run explicitly with --ignored"]
fn hundred_thousand_users_end_to_end() {
    let world = Rect::new_unchecked(0.0, 0.0, 1.0, 1.0);
    let cfg = SimulationConfig {
        users: 100_000,
        pois: 5_000,
        distribution: SpatialDistribution::three_cities(&world),
        speed: (0.001, 0.005),
        tick_seconds: 60.0,
        query_fraction: 0.01,
        query_radius: 0.03,
        seed: 1234,
    };
    let profile = PrivacyProfile::uniform(CloakRequirement::k_only(50)).unwrap();
    let mut engine = SimulationEngine::new(QuadCloak::new(world, 9), cfg, profile);
    let reports = engine.run(3);
    let updates: usize = reports.iter().map(|r| r.updates).sum();
    let unsat: usize = reports.iter().map(|r| r.unsatisfied).sum();
    assert_eq!(updates, 300_000);
    assert_eq!(unsat, 0, "k=50 over 100k users always satisfiable");
    let m = &engine.system().metrics;
    assert!(m.achieved_k.summary().min >= 50.0);
    assert_eq!(engine.system().private_store().len(), 100_000);
    // Sampled end-to-end correctness after the run.
    for id in (0..100_000u64).step_by(9973) {
        let out = engine
            .system_mut()
            .private_nn_query(id, SimTime::from_secs(180.0))
            .unwrap();
        assert!(out.exact.is_some());
    }
}
