//! Headline durability test: a server that is hard-stopped mid-batch
//! and recovered from its write-ahead log produces wire output
//! byte-identical to a server that never crashed — at worker counts
//! 1 and 4.
//!
//! The crash is simulated at the worst legal point: an update batch
//! that reached the log (journal-then-apply means the record is
//! durable) but whose effects never landed in memory. Recovery must
//! apply it; dropping it would silently lose acknowledged work.

use privacy_lbs::anonymizer::{CloakRequirement, PrivacyProfile, QuadCloak};
use privacy_lbs::geom::{Point, Rect, SimTime};
use privacy_lbs::server::PublicObject;
use privacy_lbs::store::{open_engine, open_system, recover_engine, Wal};
use privacy_lbs::system::journal;
use privacy_lbs::system::wire::{self, StandingKind};
use privacy_lbs::system::{
    Durability, EngineConfig, EngineOp, JournalRecord, MobileUser, PrivacyAwareSystem,
    ShardedEngine, UserId,
};
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

// ---------------------------------------------------------------------
// Test hygiene: every run gets its own scratch directory, cleaned up by
// a drop guard even when an assertion panics mid-test.
// ---------------------------------------------------------------------

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let path =
            std::env::temp_dir().join(format!("lbsp-persistence-{tag}-{}-{n}", std::process::id()));
        fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

// ---------------------------------------------------------------------
// The mixed workload, split at the crash point.
// ---------------------------------------------------------------------

fn world() -> Rect {
    Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
}

fn profile(k: u32) -> PrivacyProfile {
    PrivacyProfile::uniform(CloakRequirement::k_only(k)).expect("valid profile")
}

fn wave(n: u64, salt: u64) -> Vec<(UserId, Point, SimTime)> {
    (0..n)
        .map(|i| {
            let x = (((i + salt) as f64 * 0.618_033_988_749) % 1.0).min(0.999);
            let y = (((i + 3 * salt) as f64 * 0.414_213_562_373) % 1.0).min(0.999);
            (i % 32, Point::new(x, y), SimTime::from_secs(salt as f64))
        })
        .collect()
}

/// Everything that happens before the crash: registrations, public
/// data, a first update wave, standing queries.
fn phase_before(engine: &mut ShardedEngine) -> (u64, u64) {
    for i in 0..32u64 {
        engine.register(i, profile(3 + (i % 3) as u32));
    }
    let objects: Vec<PublicObject> = (0..25)
        .map(|i| {
            PublicObject::new(
                i,
                Point::new(((i as f64) * 0.041) % 1.0, ((i as f64) * 0.067) % 1.0),
                (i % 2) as u32,
            )
        })
        .collect();
    engine.load_public(objects);
    engine.process_updates(&wave(64, 1));
    let qc = engine.add_standing_count(Rect::new_unchecked(0.15, 0.15, 0.85, 0.85));
    let qr = engine.add_standing_range(5, 0.25);
    (qc, qr)
}

/// The batch in flight when the crash hits.
fn crash_batch() -> Vec<(UserId, Point, SimTime)> {
    wave(48, 11)
}

/// Everything after recovery, returning the run's wire output: every
/// cloaked-update frame of two more waves, both standing-query states,
/// the drained change list, and a range-query response.
fn phase_after(engine: &mut ShardedEngine, qc: u64, qr: u64) -> Vec<Vec<u8>> {
    let mut out: Vec<Vec<u8>> = Vec::new();
    for salt in [17u64, 23] {
        for frame in engine.process_updates_wire(&wave(64, salt)) {
            out.push(frame.expect("registered users cloak").to_vec());
        }
    }
    for (kind, id) in [(StandingKind::Count, qc), (StandingKind::Range, qr)] {
        let state = engine
            .standing_state(kind, id)
            .expect("standing query live");
        out.push(wire::encode_standing_state(&state).to_vec());
    }
    out.push(
        engine
            .take_standing_changes()
            .into_iter()
            .flat_map(|(kind, id)| {
                let mut row = vec![kind as u8];
                row.extend_from_slice(&id.to_le_bytes());
                row
            })
            .collect(),
    );
    let answer = engine
        .range_query(5, SimTime::from_secs(23.0), 0.25)
        .expect("user 5 has a cloak");
    out.push(answer.response.to_vec());
    out.push(journal::encode_engine_state(&engine.export_state()).to_vec());
    out
}

/// Highest-numbered WAL segment in `dir` (for appending the in-flight
/// record the way the crashed process's log thread would have).
fn last_segment_seq(dir: &Path) -> u64 {
    fs::read_dir(dir)
        .expect("read log dir")
        .filter_map(|e| {
            let name = e.expect("dir entry").file_name();
            let name = name
                .to_str()?
                .strip_prefix("wal-")?
                .strip_suffix(".log")?
                .to_string();
            u64::from_str_radix(&name, 16).ok()
        })
        .max()
        .expect("log has segments")
}

#[test]
fn crashed_and_recovered_run_matches_uncrashed_run_byte_for_byte() {
    for workers in [1usize, 4] {
        // ----- Reference: the run that never crashes. -----
        let mut reference = ShardedEngine::new(EngineConfig::new(world()), workers);
        let (qc, qr) = phase_before(&mut reference);
        reference.process_updates(&crash_batch());
        let expected = phase_after(&mut reference, qc, qr);

        // ----- Durable run, hard-stopped mid-batch. -----
        let dir = TempDir::new("headline");
        let policy = Durability {
            snapshot_every: 24,
            fsync: true,
        };
        let opened = open_engine(dir.path(), EngineConfig::new(world()), workers, policy)
            .expect("fresh durable engine");
        assert!(!opened.recovered);
        let mut engine = opened.engine;
        let (qc2, qr2) = phase_before(&mut engine);
        assert_eq!((qc2, qr2), (qc, qr), "query ids are deterministic");
        // Hard stop: drop the engine (no graceful shutdown exists to
        // call — the log must already be complete at every instant).
        drop(engine);

        // The crash batch was journaled but never applied: append the
        // record exactly as the crashed process's WAL had it.
        {
            let next = recover_engine(dir.path(), workers)
                .expect("pre-crash log recovers")
                .next_op_index;
            let mut wal = Wal::create_segment(dir.path(), last_segment_seq(dir.path()) + 1, next)
                .expect("segment for the in-flight record");
            wal.append_record(&JournalRecord::Op(EngineOp::UpdateBatch {
                rows: crash_batch(),
            }))
            .expect("append in-flight batch");
            wal.sync_log().expect("sync in-flight batch");
        }

        // ----- Recover (read-only) and resume. -----
        let recovered = recover_engine(dir.path(), workers).expect("recovery succeeds");
        assert_eq!(recovered.users, 32);
        assert!(recovered.torn.is_none());
        let mut resumed = recovered.engine;
        let actual = phase_after(&mut resumed, qc, qr);

        assert_eq!(
            expected.len(),
            actual.len(),
            "workers={workers}: same number of wire frames"
        );
        for (i, (e, a)) in expected.iter().zip(&actual).enumerate() {
            assert_eq!(
                e, a,
                "workers={workers}: wire frame {i} differs after recovery"
            );
        }
    }
}

#[test]
fn recovery_is_identical_across_worker_counts() {
    // One log, recovered at 1 and 4 workers: byte-identical state and
    // byte-identical subsequent output.
    let dir = TempDir::new("workers");
    let policy = Durability {
        snapshot_every: u64::MAX,
        fsync: true,
    };
    let opened = open_engine(dir.path(), EngineConfig::new(world()), 2, policy)
        .expect("fresh durable engine");
    let mut engine = opened.engine;
    let (qc, qr) = phase_before(&mut engine);
    engine.process_updates(&crash_batch());
    drop(engine);

    let mut one = recover_engine(dir.path(), 1).expect("recover at 1 worker");
    let mut four = recover_engine(dir.path(), 4).expect("recover at 4 workers");
    assert_eq!(
        journal::encode_engine_state(&one.engine.export_state()),
        journal::encode_engine_state(&four.engine.export_state())
    );
    assert_eq!(
        phase_after(&mut one.engine, qc, qr),
        phase_after(&mut four.engine, qc, qr)
    );
}

#[test]
fn full_system_replays_through_open_system() {
    // The end-to-end system (anonymizer + server behind one facade) is
    // replay-only: same ops into a deterministically rebuilt system
    // must converge on the same answers.
    let secret = 0xA11CE;
    let objects: Vec<PublicObject> = (0..12)
        .map(|i| PublicObject::new(i, Point::new(((i as f64) * 0.083) % 1.0, 0.35), 0))
        .collect();
    let make = || PrivacyAwareSystem::new(QuadCloak::new(world(), 6), secret, objects.clone());

    // Reference: never crashes.
    let mut reference = make();
    let drive = |sys: &mut PrivacyAwareSystem<QuadCloak>| {
        for i in 0..24u64 {
            sys.register_user(MobileUser::active(i, profile(4)));
        }
        for (id, p, t) in wave(48, 3) {
            let _ = sys.process_update(id, p, t);
        }
        sys.add_standing_count(Rect::new_unchecked(0.2, 0.2, 0.8, 0.8));
        for (id, p, t) in wave(48, 9) {
            let _ = sys.process_update(id, p, t);
        }
    };
    drive(&mut reference);

    // Durable run: drive, hard-stop, reopen, compare live behavior.
    let dir = TempDir::new("system");
    let policy = Durability::default();
    {
        let opened = open_system(dir.path(), make, policy).expect("fresh durable system");
        assert!(!opened.recovered);
        let mut sys = opened.system;
        drive(&mut sys);
    }
    let reopened = open_system(dir.path(), make, policy).expect("system recovers");
    assert!(reopened.recovered);
    assert!(reopened.ops_replayed > 0);
    let mut sys = reopened.system;

    assert_eq!(sys.user_count(), reference.user_count());
    assert_eq!(sys.server_stats().updates, reference.server_stats().updates);
    // Same queries, same answers.
    for id in [0u64, 5, 11, 17] {
        let a = sys.private_range_query(id, 0.2, SimTime::from_secs(9.0));
        let b = reference.private_range_query(id, 0.2, SimTime::from_secs(9.0));
        match (a, b) {
            (Ok(x), Ok(y)) => {
                assert_eq!(x.candidates, y.candidates, "user {id} candidates differ");
                assert_eq!(x.cloak, y.cloak, "user {id} cloak differs");
            }
            (Err(_), Err(_)) => {}
            (x, y) => panic!("user {id}: recovered {x:?} vs reference {y:?} disagree"),
        }
    }
    // And both keep evolving identically.
    for (id, p, t) in wave(24, 31) {
        let a = sys.process_update(id, p, t);
        let b = reference.process_update(id, p, t);
        assert_eq!(a.is_ok(), b.is_ok(), "user {id} post-recovery update");
        assert_eq!(a.ok(), b.ok(), "user {id} post-recovery cloak");
    }
}
