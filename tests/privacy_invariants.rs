//! End-to-end privacy verification: run the full system, then attack
//! what the server stored, using every adversary in the toolbox.

use privacy_lbs::anonymizer::attack::{
    BoundaryAttack, CenterAttack, IntersectionAttack, OccupancyAttack,
};
use privacy_lbs::anonymizer::{
    CloakRequirement, CloakedRegion, GridCloak, PrivacyProfile, QuadCloak,
};
use privacy_lbs::geom::{Point, Rect, SimTime};
use privacy_lbs::mobility::{Population, SpatialDistribution};
use privacy_lbs::system::{MobileUser, PrivacyAwareSystem};

fn world() -> Rect {
    Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
}

/// Builds a system over a moving population, returning the cloaks the
/// server received plus the ground-truth positions.
fn run_system<A: privacy_lbs::anonymizer::CloakingAlgorithm>(
    algo: A,
    k: u32,
) -> (Vec<CloakedRegion>, Vec<Point>) {
    let mut sys = PrivacyAwareSystem::new(algo, 0xBEEF, Vec::new());
    let mut pop = Population::generate(
        world(),
        1_000,
        &SpatialDistribution::three_cities(&world()),
        0.005,
        0.02,
        3,
    );
    let profile = PrivacyProfile::uniform(CloakRequirement::k_only(k)).unwrap();
    for u in pop.users() {
        sys.register_user(MobileUser::active(u.id, profile.clone()));
        sys.process_update(u.id, u.position(), SimTime::ZERO)
            .unwrap();
    }
    // One movement tick so the measured cloaks come from a warm index.
    let mut cloaks = Vec::new();
    let mut truths = Vec::new();
    for (id, pos) in pop.step_all(10.0) {
        let u = sys
            .process_update(id, pos, SimTime::from_secs(10.0))
            .unwrap()
            .unwrap();
        cloaks.push(u.region);
        truths.push(pos);
    }
    (cloaks, truths)
}

/// The server-side view is not reverse-engineerable for space-dependent
/// cloaks, under all three single-snapshot adversaries.
#[test]
fn system_resists_single_snapshot_attacks() {
    let (cloaks, truths) = run_system(QuadCloak::new(world(), 7), 15);
    let center = CenterAttack::default().attack_all(cloaks.iter().zip(truths.iter().copied()));
    assert_eq!(center.successes, 0, "no center pinpoints");
    let boundary = BoundaryAttack::default().attack_all(cloaks.iter().zip(truths.iter().copied()));
    assert!(
        boundary.success_rate() < 0.01,
        "boundary rate {}",
        boundary.success_rate()
    );
    // Even the background-knowledge adversary is bounded by 1/k.
    let occupancy = OccupancyAttack.attack_all(&cloaks, &truths);
    assert!(
        occupancy <= 1.0 / 15.0 + 1e-9,
        "occupancy attack {} exceeds 1/k",
        occupancy
    );
}

/// Grid cloaks give the same guarantees.
#[test]
fn grid_system_resists_attacks_too() {
    let (cloaks, truths) = run_system(GridCloak::new(world(), 32).with_refinement(true), 15);
    let center = CenterAttack::default().attack_all(cloaks.iter().zip(truths.iter().copied()));
    assert_eq!(center.successes, 0);
    let occupancy = OccupancyAttack.attack_all(&cloaks, &truths);
    assert!(occupancy <= 1.0 / 15.0 + 1e-9);
}

/// Across snapshots: a user's cloak trace through the real system never
/// lets the intersection adversary isolate them below k users.
#[test]
fn trace_intersection_keeps_k_anonymity_for_slow_users() {
    let mut sys = PrivacyAwareSystem::new(QuadCloak::new(world(), 6), 5, Vec::new());
    let profile = PrivacyProfile::uniform(CloakRequirement::k_only(10)).unwrap();
    // A dense static crowd plus one slowly-drifting subject.
    for i in 1..300u64 {
        sys.register_user(MobileUser::active(i, profile.clone()));
        let x = 0.3 + 0.001 * (i % 100) as f64;
        let y = 0.3 + 0.001 * (i / 100) as f64;
        sys.process_update(i, Point::new(x, y), SimTime::ZERO)
            .unwrap();
    }
    sys.register_user(MobileUser::active(0, profile));
    let mut trace = Vec::new();
    let mut pos = Point::new(0.33, 0.33);
    for step in 0..20 {
        pos = Point::new(pos.x + 0.0005, pos.y);
        let u = sys
            .process_update(0, pos, SimTime::from_secs(step as f64))
            .unwrap()
            .unwrap();
        trace.push(u.region);
    }
    let report = IntersectionAttack.attack_trace(&trace, pos).unwrap();
    assert!(report.contains_truth);
    // The intersection still contains at least k users of the crowd —
    // the slow mover never left its cell, so all regions coincide.
    assert_eq!(report.area_ratio(), 1.0);
}

/// The pseudonym mapping is consistent (one pseudonym per user across
/// updates) yet uninvertible without the secret: two systems with
/// different secrets assign unrelated pseudonyms.
#[test]
fn pseudonyms_are_stable_per_user_and_secret_dependent() {
    let mk = |secret: u64| {
        let mut sys = PrivacyAwareSystem::new(QuadCloak::new(world(), 5), secret, Vec::new());
        let profile = PrivacyProfile::default();
        sys.register_user(MobileUser::active(1, profile));
        let a = sys
            .process_update(1, Point::new(0.5, 0.5), SimTime::ZERO)
            .unwrap()
            .unwrap()
            .pseudonym;
        let b = sys
            .process_update(1, Point::new(0.6, 0.6), SimTime::from_secs(1.0))
            .unwrap()
            .unwrap()
            .pseudonym;
        (a, b)
    };
    let (a1, a2) = mk(111);
    assert_eq!(a1, a2, "stable across updates");
    let (b1, _) = mk(222);
    assert_ne!(a1, b1, "secret-dependent");
}

/// k = 1 users opt out of privacy: the server legitimately sees their
/// point — the paper's "willing to share" case — and attacks trivially
/// succeed, which is correct behavior, not a leak.
#[test]
fn k1_users_are_knowingly_exact() {
    let (cloaks, truths) = run_system(QuadCloak::new(world(), 6), 1);
    let center = CenterAttack::default().attack_all(cloaks.iter().zip(truths.iter().copied()));
    assert_eq!(center.successes, center.trials);
    assert!(cloaks.iter().all(|c| c.area() == 0.0));
}
