//! Standing queries across the network are the sequential system in
//! disguise: registering over TCP, moving users, and reading
//! `STANDING_DELTA` pushes / `STANDING_SNAPSHOT` replies must produce
//! bytes identical to a `PrivacyAwareSystem` driven in-process — at
//! more than one server worker-pool size — and the post-shutdown
//! engine's registries must agree with what the client saw.

use lbsp_anonymizer::{CloakRequirement, GridCloak, PrivacyProfile};
use lbsp_core::engine::{EngineConfig, ShardedEngine};
use lbsp_core::wire::{self, StandingKind};
use lbsp_core::{MobileUser, PrivacyAwareSystem};
use lbsp_geom::{Point, Rect, SimTime};
use lbsp_net::{NetClient, NetConfig, NetServer, Reply};
use lbsp_server::PublicObject;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use std::collections::HashMap;

const USERS: u64 = 200;
const WAVES: u64 = 3;
const SEED: u64 = 20060406;
/// Must equal [`EngineConfig::new`]'s secret so pseudonyms agree.
const SECRET: u64 = 0x1BAD_B002_CAFE_F00D;

fn world() -> Rect {
    Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
}

fn requirement_for(i: u64) -> CloakRequirement {
    CloakRequirement {
        k: [2u32, 5, 10, 25][(i % 4) as usize],
        a_min: if i.is_multiple_of(5) { 0.01 } else { 0.0 },
        a_max: f64::INFINITY,
    }
}

/// Wave `w` of movement: every user gets a fresh seeded position.
fn wave(w: u64) -> Vec<(u64, Point, SimTime)> {
    let mut rng = StdRng::seed_from_u64(SEED ^ (w.wrapping_mul(0x9E37)));
    (0..USERS)
        .map(|i| {
            let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
            (i, p, SimTime::from_secs((w * USERS + i) as f64 * 0.25))
        })
        .collect()
}

fn public_objects() -> Vec<PublicObject> {
    let mut rng = StdRng::seed_from_u64(SEED ^ 1);
    (0..150)
        .map(|id| {
            PublicObject::new(
                id,
                Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)),
                0,
            )
        })
        .collect()
}

/// The standing queries both paths register, in identical order, after
/// the first wave has populated the stores.
const COUNT_AREAS: [(f64, f64, f64, f64); 2] = [(0.2, 0.2, 0.7, 0.7), (0.05, 0.55, 0.45, 0.95)];
const RANGE_OWNERS: [(u64, f64); 2] = [(7, 0.1), (13, 0.2)];

fn fresh_engine() -> ShardedEngine {
    let mut cfg = EngineConfig::new(world());
    cfg.refine = true;
    let mut engine = ShardedEngine::new(cfg, 2);
    engine.load_public(public_objects());
    engine
}

/// Sequential reference: cloaked bytes for every row, plus the final
/// wire state of every standing query.
struct Reference {
    updates: Vec<Vec<u8>>,
    standing: Vec<((StandingKind, u64), Vec<u8>)>,
}

fn reference_run() -> Reference {
    let algo = GridCloak::new(world(), 16).with_refinement(true);
    let mut sys = PrivacyAwareSystem::new(algo, SECRET, public_objects());
    for i in 0..USERS {
        let profile = PrivacyProfile::uniform(requirement_for(i)).unwrap();
        sys.register_user(MobileUser::active(i, profile));
    }
    let mut updates = Vec::new();
    for &(id, pos, time) in &wave(0) {
        let u = sys.process_update(id, pos, time).unwrap().unwrap();
        updates.push(wire::encode_cloaked_update(&u).to_vec());
    }
    let mut keys: Vec<(StandingKind, u64)> = Vec::new();
    for &(x0, y0, x1, y1) in &COUNT_AREAS {
        let id = sys.add_standing_count(Rect::new_unchecked(x0, y0, x1, y1));
        keys.push((StandingKind::Count, id));
    }
    for &(user, radius) in &RANGE_OWNERS {
        let id = sys.add_standing_private_range(user, radius);
        keys.push((StandingKind::Range, id));
    }
    for w in 1..WAVES {
        for &(id, pos, time) in &wave(w) {
            let u = sys.process_update(id, pos, time).unwrap().unwrap();
            updates.push(wire::encode_cloaked_update(&u).to_vec());
        }
    }
    let standing = keys
        .into_iter()
        .map(|(kind, id)| {
            let state = sys.standing_state(kind, id).unwrap();
            ((kind, id), wire::encode_standing_state(&state).to_vec())
        })
        .collect();
    Reference { updates, standing }
}

#[test]
fn standing_queries_over_the_network_match_the_sequential_system() {
    let reference = reference_run();

    for workers in [1usize, 4] {
        let server = NetServer::bind(
            "127.0.0.1:0",
            fresh_engine(),
            NetConfig::with_workers(workers),
        )
        .unwrap();
        let mut client = NetClient::connect(server.local_addr()).unwrap();

        for i in 0..USERS {
            let r = requirement_for(i);
            assert_eq!(
                client.register(i, r.k, r.a_min, r.a_max).unwrap(),
                Reply::Ok,
                "register {i} (workers={workers})"
            );
        }
        let mut expect_updates = reference.updates.iter();
        for &(id, pos, time) in &wave(0) {
            match client.update(id, pos, time).unwrap() {
                Reply::Cloaked(bytes) => {
                    assert_eq!(Some(&bytes), expect_updates.next(), "update user {id}")
                }
                other => panic!("update user {id}: unexpected reply {other:?}"),
            }
        }

        // Register the standing queries in the reference order; the
        // server names them with the same ids the sequential
        // registries produced.
        let mut keys: Vec<(StandingKind, u64)> = Vec::new();
        for &(x0, y0, x1, y1) in &COUNT_AREAS {
            let area = Rect::new_unchecked(x0, y0, x1, y1);
            match client.register_standing_count(area).unwrap() {
                Reply::StandingRegistered(bytes) => {
                    let r = wire::decode_standing_ref(&bytes).unwrap();
                    assert_eq!(r.kind, StandingKind::Count);
                    keys.push((r.kind, r.id));
                }
                other => panic!("standing-count registration: {other:?}"),
            }
        }
        for &(user, radius) in &RANGE_OWNERS {
            match client.register_standing_range(user, radius).unwrap() {
                Reply::StandingRegistered(bytes) => {
                    let r = wire::decode_standing_ref(&bytes).unwrap();
                    assert_eq!(r.kind, StandingKind::Range);
                    keys.push((r.kind, r.id));
                }
                other => panic!("standing-range registration: {other:?}"),
            }
        }
        assert_eq!(
            keys,
            reference
                .standing
                .iter()
                .map(|(k, _)| *k)
                .collect::<Vec<_>>(),
            "query ids agree with the sequential registries"
        );

        // Move everyone; deltas for the subscribed queries arrive ahead
        // of each update's reply and are stashed by the client.
        for w in 1..WAVES {
            for &(id, pos, time) in &wave(w) {
                match client.update(id, pos, time).unwrap() {
                    Reply::Cloaked(bytes) => {
                        assert_eq!(Some(&bytes), expect_updates.next(), "update user {id}")
                    }
                    other => panic!("update user {id}: unexpected reply {other:?}"),
                }
            }
        }

        // Every delta decodes, and the *last* delta per query equals
        // the sequential system's final state for that query.
        let deltas = client.take_standing_deltas();
        assert!(!deltas.is_empty(), "movement pushed deltas");
        let mut last: HashMap<(StandingKind, u64), Vec<u8>> = HashMap::new();
        for bytes in &deltas {
            let state = wire::decode_standing_state(bytes).expect("delta decodes");
            let kind = match state {
                wire::StandingState::Count(_) => StandingKind::Count,
                wire::StandingState::Range(_) => StandingKind::Range,
            };
            last.insert((kind, state.id()), bytes.clone());
        }
        for (key, expect) in &reference.standing {
            // A query whose answer never changed after registration has
            // no delta; the snapshot check below still covers it.
            let Some(bytes) = last.get(key) else { continue };
            let got = wire::decode_standing_state(bytes).unwrap();
            let want = wire::decode_standing_state(expect).unwrap();
            match (got, want) {
                // A count delta is pushed when the *interval* changes;
                // `expected` keeps drifting between pushes, so the last
                // delta carries the final seq and interval but not
                // necessarily the final expected value.
                (wire::StandingState::Count(g), wire::StandingState::Count(w)) => {
                    assert_eq!(
                        (g.seq, g.certain, g.possible),
                        (w.seq, w.certain, w.possible),
                        "last count delta for {key:?} (workers={workers})"
                    );
                }
                // A range delta is pushed exactly when the candidate
                // set changes, so the last one IS the final state.
                (wire::StandingState::Range(_), wire::StandingState::Range(_)) => {
                    assert_eq!(
                        bytes, expect,
                        "last range delta for {key:?} (workers={workers})"
                    );
                }
                _ => panic!("delta kind mismatch for {key:?}"),
            }
        }

        // Snapshots over the network are byte-identical to the
        // sequential path.
        for (key, expect) in &reference.standing {
            match client.standing_snapshot(key.0, key.1).unwrap() {
                Reply::StandingState(bytes) => {
                    assert_eq!(&bytes, expect, "snapshot {key:?} (workers={workers})")
                }
                other => panic!("snapshot {key:?}: unexpected reply {other:?}"),
            }
        }

        // The post-shutdown engine agrees with everything the client
        // saw — the in-process registry *is* the network answer.
        drop(client);
        let engine = server.shutdown();
        for (key, expect) in &reference.standing {
            let state = engine.standing_state(key.0, key.1).unwrap();
            assert_eq!(
                &wire::encode_standing_state(&state).to_vec(),
                expect,
                "engine state {key:?} (workers={workers})"
            );
        }
    }
}

/// Deltas fan out across connections: a subscriber hears about changes
/// caused by *other* connections' updates, without asking.
#[test]
fn deltas_reach_subscribers_on_other_connections() {
    let server = NetServer::bind("127.0.0.1:0", fresh_engine(), NetConfig::default()).unwrap();
    let mut mover = NetClient::connect(server.local_addr()).unwrap();
    let mut watcher = NetClient::connect(server.local_addr()).unwrap();

    for i in 0..50u64 {
        let r = requirement_for(i);
        assert_eq!(mover.register(i, r.k, r.a_min, r.a_max).unwrap(), Reply::Ok);
    }
    for &(id, pos, time) in wave(0).iter().take(50) {
        match mover.update(id, pos, time).unwrap() {
            Reply::Cloaked(_) => {}
            other => panic!("seed update {id}: {other:?}"),
        }
    }
    // The watcher subscribes to a world-spanning count: any later
    // cloak change that alters the interval must reach it.
    let key = match watcher.register_standing_count(world()).unwrap() {
        Reply::StandingRegistered(bytes) => wire::decode_standing_ref(&bytes).unwrap(),
        other => panic!("registration: {other:?}"),
    };
    // A brand-new user appears: possible count rises from 50 to 51.
    let r = requirement_for(50);
    assert_eq!(
        mover.register(50, r.k, r.a_min, r.a_max).unwrap(),
        Reply::Ok
    );
    match mover
        .update(50, Point::new(0.5, 0.5), SimTime::from_secs(999.0))
        .unwrap()
    {
        Reply::Cloaked(_) => {}
        other => panic!("new-user update: {other:?}"),
    }
    // The mover holds no subscriptions, so its stash stays empty.
    assert!(mover.take_standing_deltas().is_empty());
    // The push sits in the watcher's connection queue; any traffic
    // (here a ping) lets the client read it out.
    match watcher.ping(b"poke").unwrap() {
        Reply::Pong(p) => assert_eq!(p, b"poke"),
        other => panic!("ping: {other:?}"),
    }
    let deltas = watcher.take_standing_deltas();
    assert!(
        !deltas.is_empty(),
        "cross-connection delta reached the subscriber"
    );
    let Some(wire::StandingState::Count(state)) = deltas
        .last()
        .map(|b| wire::decode_standing_state(b).unwrap())
    else {
        panic!("count delta expected");
    };
    assert_eq!(state.id, key.id);
    assert_eq!(state.possible, 51);

    // Deregistration over the wire: the query disappears for everyone.
    assert_eq!(
        watcher.deregister_standing(key.kind, key.id).unwrap(),
        Reply::Ok
    );
    match watcher.standing_snapshot(key.kind, key.id).unwrap() {
        Reply::Error(msg) => assert!(!msg.is_empty()),
        other => panic!("snapshot after deregister: {other:?}"),
    }
    drop(mover);
    drop(watcher);
    assert!(server.shutdown().standing_state(key.kind, key.id).is_none());
}
