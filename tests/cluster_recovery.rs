//! Handoff durability: a cluster node hard-killed at the worst point of
//! a `USER_HANDOFF` — the incoming `HandoffIn` record reached its WAL
//! but was never applied in memory — must recover from the log and
//! continue the workload byte-identically to a cluster that never
//! crashed (itself byte-identical to one sequential engine).
//!
//! The test plays the router: it owns the partition map and the
//! owner table and drives K durable `ShardedEngine`s through exactly
//! the calls the real `Router` issues over the wire (handoff export /
//! install, per-row update on the owner, shadow + cloak-ingest
//! broadcasts, standing-query broadcasts). Driving engines directly is
//! what lets it freeze one node at a precise journal boundary — a
//! precision the network stack can't offer. The wire-level half of the
//! story — the real `Router` demoting a faulted node, retrying with
//! backoff, and resyncing it on rejoin — is exercised end-to-end by
//! `tests/cluster_chaos.rs`; this test pins the storage layer that
//! rejoin ultimately stands on.

use privacy_lbs::anonymizer::{CloakRequirement, PrivacyProfile};
use privacy_lbs::cluster::PartitionMap;
use privacy_lbs::geom::{Point, Rect, SimTime};
use privacy_lbs::store::{open_engine, recover_engine, Wal};
use privacy_lbs::system::wire::{self, StandingKind};
use privacy_lbs::system::{
    Durability, EngineConfig, EngineOp, JournalRecord, ShardedEngine, UserId,
};
use std::collections::HashMap;
use std::fs;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

const USERS: u64 = 32;
const WAVES: u64 = 3;
const NODES: usize = 2;
const THREADS: usize = 2;

// ---------------------------------------------------------------------
// Scratch directories (same hygiene as tests/persistence.rs).
// ---------------------------------------------------------------------

static DIR_SEQ: AtomicU64 = AtomicU64::new(0);

struct TempDir {
    path: PathBuf,
}

impl TempDir {
    fn new(tag: &str) -> TempDir {
        let n = DIR_SEQ.fetch_add(1, Ordering::Relaxed);
        let path = std::env::temp_dir().join(format!(
            "lbsp-cluster-recovery-{tag}-{}-{n}",
            std::process::id()
        ));
        fs::create_dir_all(&path).expect("create temp dir");
        TempDir { path }
    }

    fn path(&self) -> &Path {
        &self.path
    }
}

impl Drop for TempDir {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.path);
    }
}

// ---------------------------------------------------------------------
// Deterministic workload with guaranteed boundary crossings.
// ---------------------------------------------------------------------

fn world() -> Rect {
    Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
}

fn profile(i: u64) -> PrivacyProfile {
    let k = [2u32, 5, 10, 25][(i % 4) as usize];
    PrivacyProfile::uniform(CloakRequirement::k_only(k)).expect("valid profile")
}

fn wave(w: u64) -> Vec<(UserId, Point, SimTime)> {
    (0..USERS)
        .map(|i| {
            let s = i + 31 * w;
            let x = ((s as f64 * 0.618_033_988_749) % 1.0).min(0.999);
            let y = ((s as f64 * 0.414_213_562_373) % 1.0).min(0.999);
            (
                i,
                Point::new(x, y),
                SimTime::from_secs((w * USERS + i) as f64 * 0.5),
            )
        })
        .collect()
}

fn last_segment_seq(dir: &Path) -> u64 {
    fs::read_dir(dir)
        .expect("read log dir")
        .filter_map(|e| {
            let name = e.expect("dir entry").file_name();
            let name = name
                .to_str()?
                .strip_prefix("wal-")?
                .strip_suffix(".log")?
                .to_string();
            u64::from_str_radix(&name, 16).ok()
        })
        .max()
        .expect("log has segments")
}

// ---------------------------------------------------------------------
// The test-as-router: the exact call sequence `Router::route_update`
// issues, replayed against engines held in-process.
// ---------------------------------------------------------------------

struct MiniCluster {
    engines: Vec<ShardedEngine>,
    part: PartitionMap,
    owner: HashMap<UserId, usize>,
    handoffs: u64,
}

impl MiniCluster {
    /// Migrate `user` from its current owner to `target`
    /// (HANDOFF_PULL → HANDOFF_PUSH at the engine layer).
    fn handoff(&mut self, user: UserId, from: usize, to: usize) {
        let msg = self.engines[from]
            .handoff_export(user)
            .expect("registered user exports");
        self.engines[to].handoff_install(&msg);
        self.owner.insert(user, to);
        self.handoffs += 1;
    }

    /// One routed update: handoff if the user crossed a boundary, cloak
    /// on the owner, broadcast the shadow position and (on success) the
    /// owner's exact cloaked reply to every other node.
    fn update(&mut self, user: UserId, p: Point, t: SimTime) -> Vec<u8> {
        let target = self.part.node_of(p);
        if let Some(&cur) = self.owner.get(&user) {
            if cur != target {
                self.handoff(user, cur, target);
            }
        }
        let bytes = self.engines[target]
            .process_updates_wire(&[(user, p, t)])
            .into_iter()
            .next()
            .expect("one row in, one frame out")
            .expect("registered user cloaks")
            .to_vec();
        for i in 0..self.engines.len() {
            if i != target {
                self.engines[i].apply_shadow_update(&[(user, p, t)]);
            }
        }
        let cloaked = wire::decode_cloaked_update(&bytes).expect("owner reply decodes");
        for i in 0..self.engines.len() {
            if i != target {
                self.engines[i].apply_cloak_ingest(&cloaked);
            }
        }
        bytes
    }
}

/// Standing-query setup, broadcast to every node (ids stay in
/// lockstep); returns `(count id, range id)`.
fn install_standing(engines: &mut [ShardedEngine]) -> (u64, u64) {
    let area = Rect::new_unchecked(0.2, 0.2, 0.8, 0.8);
    let mut qc = 0;
    let mut qr = 0;
    for eng in engines.iter_mut() {
        qc = eng.add_standing_count(area);
        qr = eng.add_standing_range(5, 0.25);
    }
    (qc, qr)
}

/// The per-wave observable output: both standing-query states, read
/// from the node that owns them (count registries run in lockstep →
/// node 0; the range query lives on user 5's owner).
fn observe(cluster: &MiniCluster, qc: u64, qr: u64) -> Vec<Vec<u8>> {
    let range_node = *cluster.owner.get(&5).expect("user 5 has an owner");
    let mut out = Vec::new();
    for (node, kind, id) in [
        (0, StandingKind::Count, qc),
        (range_node, StandingKind::Range, qr),
    ] {
        let state = cluster.engines[node]
            .standing_state(kind, id)
            .expect("standing query live");
        out.push(wire::encode_standing_state(&state).to_vec());
    }
    out
}

#[test]
fn node_killed_mid_handoff_recovers_from_wal_and_stays_byte_identical() {
    // ----- Reference: one sequential engine, rows one at a time (the
    // router serializes, so per-row batches are the cluster's unit). ---
    let mut reference = ShardedEngine::new(EngineConfig::new(world()), THREADS);
    for i in 0..USERS {
        reference.register(i, profile(i));
    }
    let area = Rect::new_unchecked(0.2, 0.2, 0.8, 0.8);
    let qc = reference.add_standing_count(area);
    let qr = reference.add_standing_range(5, 0.25);
    let mut expected: Vec<Vec<u8>> = Vec::new();
    for w in 0..WAVES {
        for (id, p, t) in wave(w) {
            expected.push(
                reference
                    .process_updates_wire(&[(id, p, t)])
                    .into_iter()
                    .next()
                    .expect("one frame")
                    .expect("registered user cloaks")
                    .to_vec(),
            );
        }
        for (kind, id) in [(StandingKind::Count, qc), (StandingKind::Range, qr)] {
            let state = reference.standing_state(kind, id).expect("query live");
            expected.push(wire::encode_standing_state(&state).to_vec());
        }
    }
    let last_t = SimTime::from_secs((WAVES * USERS) as f64 * 0.5);
    expected.push(
        reference
            .range_query(5, last_t, 0.25)
            .expect("user 5 has a cloak")
            .response
            .to_vec(),
    );

    // ----- Durable 2-node cluster, node killed at the first wave-1
    // handoff with the HandoffIn journaled but never applied. -----
    let dirs: Vec<TempDir> = (0..NODES).map(|i| TempDir::new(&format!("n{i}"))).collect();
    let policy = Durability {
        snapshot_every: 16,
        fsync: true,
    };
    let mut engines = Vec::new();
    for dir in &dirs {
        let opened = open_engine(dir.path(), EngineConfig::new(world()), THREADS, policy)
            .expect("fresh durable node");
        assert!(!opened.recovered);
        engines.push(opened.engine);
    }
    // Registrations land on node 0 (the router's default owner), like
    // the wire path; standing queries broadcast everywhere.
    for i in 0..USERS {
        engines
            .first_mut()
            .expect("node 0 exists")
            .register(i, profile(i));
    }
    let (qc2, qr2) = install_standing(&mut engines);
    assert_eq!((qc2, qr2), (qc, qr), "query ids are deterministic");
    let mut cluster = MiniCluster {
        engines,
        part: PartitionMap::new(world(), NODES),
        owner: (0..USERS).map(|i| (i, 0)).collect(),
        handoffs: 0,
    };

    let mut actual: Vec<Vec<u8>> = Vec::new();
    let mut crashed = false;
    for w in 0..WAVES {
        for (id, p, t) in wave(w) {
            // Crash injection: the first boundary crossing of wave 1.
            let target = cluster.part.node_of(p);
            let cur = *cluster.owner.get(&id).expect("owner known");
            if w == 1 && !crashed && cur != target {
                crashed = true;
                // The outgoing half is a normal durable mutation on the
                // surviving node…
                let msg = cluster.engines[cur]
                    .handoff_export(id)
                    .expect("registered user exports");
                // …but the destination dies with the HandoffIn record
                // fsync'd in its WAL and nothing applied in memory:
                // hard-stop the engine, then append the record exactly
                // as the crashed process's log thread had it.
                let dead = std::mem::replace(
                    &mut cluster.engines[target],
                    ShardedEngine::new(EngineConfig::new(world()), 1),
                );
                drop(dead);
                let dir = dirs[target].path();
                let next = recover_engine(dir, THREADS)
                    .expect("pre-crash log recovers")
                    .next_op_index;
                let mut wal = Wal::create_segment(dir, last_segment_seq(dir) + 1, next)
                    .expect("segment for the in-flight record");
                wal.append_record(&JournalRecord::Op(EngineOp::HandoffIn { msg: msg.clone() }))
                    .expect("append in-flight handoff");
                wal.sync_log().expect("sync in-flight handoff");
                // Restart the node from its log: the journaled handoff
                // must be applied — dropping it would lose the user's
                // profile fleet-wide (node `cur` already exported it).
                let recovered = recover_engine(dir, THREADS).expect("node restarts from WAL");
                assert!(recovered.ops_replayed > 0 || recovered.snapshot_op_index.is_some());
                cluster.engines[target] = recovered.engine;
                cluster.owner.insert(id, target);
                cluster.handoffs += 1;
                assert!(
                    cluster.engines[target].registered() > 0,
                    "recovered node re-installed the migrated profile"
                );
            }
            actual.push(cluster.update(id, p, t));
        }
        actual.extend(observe(&cluster, qc, qr));
    }
    let range_node = *cluster.owner.get(&5).expect("user 5 has an owner");
    actual.push(
        cluster.engines[range_node]
            .range_query(5, last_t, 0.25)
            .expect("user 5 has a cloak")
            .response
            .to_vec(),
    );

    assert!(crashed, "workload produced a wave-1 boundary crossing");
    assert!(
        cluster.handoffs * 10 >= USERS,
        "≥10% of users migrated ({} handoffs / {USERS} users)",
        cluster.handoffs
    );
    assert_eq!(expected.len(), actual.len(), "same number of wire frames");
    for (i, (e, a)) in expected.iter().zip(&actual).enumerate() {
        assert_eq!(e, a, "wire frame {i} differs after crash + recovery");
    }
}
