//! End-to-end check of the observability pipeline: a known workload is
//! driven over loopback, then the registry is scraped with a `STATS`
//! frame, and the scraped snapshot must agree with the in-process
//! registry — exactly for counters, and within the documented factor-2
//! bucket bound for percentiles.
//!
//! Accounting detail the assertions rely on: the server bumps
//! `requests_served` *after* a request is handled, so a scrape's own
//! snapshot never counts the scrape itself — the first scrape reports
//! exactly the prior workload, and a second scrape reports one more.

use lbsp_core::engine::{EngineConfig, ShardedEngine};
use lbsp_core::metrics::Summary;
use lbsp_core::wire;
use lbsp_geom::{Point, Rect, SimTime};
use lbsp_net::{NetClient, NetConfig, NetServer, Reply};
use lbsp_server::PublicObject;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};
use std::time::Duration;

const USERS: u64 = 40;
const SEED: u64 = 4242;

/// Stage indices into `RegistrySnapshot::stages` ([`Stage::ALL`] order).
const CLOAK: usize = 0;
const PRIVATE_QUERY: usize = 1;
const PUBLIC_QUERY: usize = 2;
const FRAME_DECODE: usize = 3;
const OUTBOUND_WAIT: usize = 4;

fn engine() -> ShardedEngine {
    let mut cfg = EngineConfig::new(Rect::new_unchecked(0.0, 0.0, 1.0, 1.0));
    cfg.refine = true;
    let mut engine = ShardedEngine::new(cfg, 2);
    let mut rng = StdRng::seed_from_u64(SEED);
    engine.load_public(
        (0..200)
            .map(|id| {
                PublicObject::new(
                    id,
                    Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)),
                    0,
                )
            })
            .collect(),
    );
    engine
}

/// The histogram percentile is bucket-interpolated: for positive
/// samples it lands within the sample's power-of-two bucket, so it is
/// within a factor of 2 of the exact value (see DESIGN.md).
fn assert_within_factor2(approx: f64, exact: f64, what: &str) {
    if exact == 0.0 {
        assert_eq!(approx, 0.0, "{what}: exact 0 must stay 0");
        return;
    }
    let ratio = approx / exact;
    assert!(
        (0.5..=2.0).contains(&ratio),
        "{what}: approx {approx} vs exact {exact} (ratio {ratio})"
    );
}

#[test]
fn stats_scrape_matches_in_process_registry() {
    // One worker so request accounting is strictly sequential.
    let server = NetServer::bind("127.0.0.1:0", engine(), NetConfig::with_workers(1)).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();
    client
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    client
        .set_write_timeout(Some(Duration::from_secs(10)))
        .unwrap();

    // --- Known workload ------------------------------------------------
    let mut rng = StdRng::seed_from_u64(SEED ^ 0xBEEF);
    let mut areas = Vec::new();
    let mut ks = Vec::new();
    let mut requests = 0u64;
    for i in 0..USERS {
        let k = [2u32, 5, 10, 25][(i % 4) as usize];
        assert_eq!(
            client.register(i, k, 0.0, f64::INFINITY).unwrap(),
            Reply::Ok
        );
        requests += 1;
    }
    for i in 0..USERS {
        let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
        let reply = client.update(i, p, SimTime::from_secs(i as f64)).unwrap();
        requests += 1;
        let Reply::Cloaked(bytes) = reply else {
            panic!("update {i} not cloaked: {reply:?}");
        };
        let cu = wire::decode_cloaked_update(&bytes).expect("well-formed cloaked update");
        areas.push(cu.region.area());
        ks.push(f64::from(cu.region.achieved_k));
    }
    let mut queries = 0u64;
    for i in (0..USERS).step_by(4) {
        let reply = client
            .range_query(i, 0.05, SimTime::from_secs(100.0 + i as f64))
            .unwrap();
        requests += 1;
        queries += 1;
        assert!(
            matches!(reply, Reply::Candidates(_)),
            "query {i}: {reply:?}"
        );
    }
    // One failing query: user 9999 was never registered.
    let reply = client
        .range_query(9999, 0.05, SimTime::from_secs(500.0))
        .unwrap();
    requests += 1;
    assert!(
        matches!(reply, Reply::Error(_)),
        "expected rejection: {reply:?}"
    );

    // --- Scrape #1 ------------------------------------------------------
    let Reply::Stats(bytes) = client.stats().unwrap() else {
        panic!("scrape did not return a stats snapshot");
    };
    let scraped = wire::decode_stats_snapshot(&bytes).expect("decodable snapshot");

    // Counters match the workload exactly. The scrape itself is not in
    // requests_served (incremented after handling), but its frame *is*
    // already decoded and counted in bytes_in / frame-decode.
    assert_eq!(scraped.net.requests_served, requests);
    assert_eq!(scraped.net.errors_returned, 1);
    assert_eq!(scraped.net.connections_accepted, 1);
    assert_eq!(
        scraped.cloak_failures,
        [1, 0, 0],
        "one unknown-user failure"
    );
    assert_eq!(scraped.stages[CLOAK].count, USERS);
    assert_eq!(scraped.stages[PRIVATE_QUERY].count, queries + 1);
    assert_eq!(scraped.stages[PUBLIC_QUERY].count, 0);
    assert_eq!(scraped.stages[FRAME_DECODE].count, requests + 1);
    assert_eq!(scraped.stages[OUTBOUND_WAIT].count, requests);
    assert_eq!(scraped.cloak_area.count, USERS);
    assert_eq!(scraped.achieved_k.count, USERS);
    assert_eq!(scraped.candidate_set_size.count, queries);

    // Value histograms agree with the exact samples the replies carried:
    // mean/min/max exactly, percentiles within the factor-2 bound.
    for (hist, samples, what) in [
        (&scraped.cloak_area, &areas, "cloak_area"),
        (&scraped.achieved_k, &ks, "achieved_k"),
    ] {
        let exact = Summary::of(samples);
        let approx = hist.summary();
        assert_eq!(approx.min, exact.min, "{what} min is exact");
        assert_eq!(approx.max, exact.max, "{what} max is exact");
        assert!(
            (approx.mean - exact.mean).abs() <= exact.mean.abs() * 1e-9,
            "{what} mean is exact: {} vs {}",
            approx.mean,
            exact.mean
        );
        assert_within_factor2(approx.p50, exact.p50, what);
        assert_within_factor2(approx.p95, exact.p95, what);
    }

    // --- Scrape #2 sees exactly one more served request -----------------
    let Reply::Stats(bytes2) = client.stats().unwrap() else {
        panic!("second scrape failed");
    };
    let scraped2 = wire::decode_stats_snapshot(&bytes2).expect("decodable snapshot");
    assert_eq!(scraped2.net.requests_served, requests + 1);

    // --- In-process registry agrees with the scrape ---------------------
    // The scrape travels through the same live registry the engine
    // records into; everything the scrapes themselves don't touch must
    // be bit-identical between the wire snapshot and a local one.
    let local = server.metrics_registry().snapshot();
    assert_eq!(local.stages[CLOAK], scraped.stages[CLOAK]);
    assert_eq!(local.stages[PRIVATE_QUERY], scraped.stages[PRIVATE_QUERY]);
    assert_eq!(local.stages[PUBLIC_QUERY], scraped.stages[PUBLIC_QUERY]);
    assert_eq!(local.cloak_area, scraped.cloak_area);
    assert_eq!(local.achieved_k, scraped.achieved_k);
    assert_eq!(local.candidate_set_size, scraped.candidate_set_size);
    assert_eq!(local.cloak_failures, scraped.cloak_failures);

    // The text exposition renders every counter we just verified.
    let text = scraped.to_text();
    assert!(text.contains("lbsp_net_requests_served"));
    assert!(text.contains("stage=\"cloak\""));
    assert!(text.contains("kind=\"unknown_user\""));

    drop(client);
    let engine = server.shutdown();
    // The registry rode along with the engine: still one failure there.
    assert_eq!(
        engine.metrics_registry().snapshot().cloak_failures,
        [1, 0, 0]
    );
    assert_eq!(engine.population(), USERS as usize);
}
