//! The headline correctness claim of the network subsystem: putting a
//! real TCP hop between the users and the anonymizer changes *nothing*
//! about the bytes the system produces.
//!
//! A seeded 1k-user workload (registrations, exact-location updates,
//! private range queries) is driven twice — once through
//! `NetClient → NetServer → ShardedEngine` over loopback, once through
//! the in-process engine directly — and every response must be
//! byte-identical, at more than one server worker-pool size.

use lbsp_anonymizer::{CloakRequirement, PrivacyProfile};
use lbsp_core::engine::{EngineConfig, ShardedEngine};
use lbsp_core::metrics::NetCountersSnapshot;
use lbsp_geom::{Point, Rect, SimTime};
use lbsp_net::{NetClient, NetConfig, NetServer, Reply};
use lbsp_server::PublicObject;
use rand::rngs::StdRng;
use rand::{RngExt as _, SeedableRng};

const USERS: u64 = 1000;
const SEED: u64 = 20060403; // ICDE'06 vintage.

fn world() -> Rect {
    Rect::new_unchecked(0.0, 0.0, 1.0, 1.0)
}

/// The cloaking requirement user `i` registers with (mixed k levels and
/// an occasional area floor, like the engine concurrency tests).
fn requirement_for(i: u64) -> (u32, f64, f64) {
    let k = [2u32, 5, 10, 25][(i % 4) as usize];
    let a_min = if i.is_multiple_of(5) { 0.01 } else { 0.0 };
    (k, a_min, f64::INFINITY)
}

fn seeded_positions(seed: u64, n: u64) -> Vec<(u64, Point, SimTime)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let p = Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0));
            (i, p, SimTime::from_secs(i as f64 * 0.25))
        })
        .collect()
}

fn public_objects(seed: u64, n: u64) -> Vec<PublicObject> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|id| {
            PublicObject::new(
                id,
                Point::new(rng.random_range(0.0..1.0), rng.random_range(0.0..1.0)),
                0,
            )
        })
        .collect()
}

fn fresh_engine() -> ShardedEngine {
    let mut cfg = EngineConfig::new(world());
    cfg.refine = true;
    let mut engine = ShardedEngine::new(cfg, 2);
    engine.load_public(public_objects(SEED ^ 1, 200));
    engine
}

/// The in-process reference: same engine, same workload, driven one
/// request at a time exactly as the server's worker loop does.
struct Reference {
    updates: Vec<Vec<u8>>,
    queries: Vec<Vec<u8>>,
}

fn reference_run(updates: &[(u64, Point, SimTime)], query_users: &[u64]) -> Reference {
    let mut engine = fresh_engine();
    for i in 0..USERS {
        let (k, a_min, a_max) = requirement_for(i);
        let profile = PrivacyProfile::uniform(CloakRequirement { k, a_min, a_max }).unwrap();
        engine.register(i, profile);
    }
    let update_bytes: Vec<Vec<u8>> = updates
        .iter()
        .map(|row| {
            let out = engine.process_updates_wire(std::slice::from_ref(row));
            out.into_iter().next().unwrap().unwrap().to_vec()
        })
        .collect();
    let query_time = SimTime::from_secs(1e6);
    let query_bytes: Vec<Vec<u8>> = query_users
        .iter()
        .map(|&u| {
            engine
                .range_query(u, query_time, 0.08)
                .unwrap()
                .response
                .to_vec()
        })
        .collect();
    Reference {
        updates: update_bytes,
        queries: query_bytes,
    }
}

/// Byte-identity across the network at two worker-pool sizes, plus the
/// post-shutdown engine state and counter accounting.
#[test]
fn network_path_is_byte_identical_to_in_process() {
    let updates = seeded_positions(SEED, USERS);
    let query_users: Vec<u64> = (0..USERS).step_by(97).collect();
    let reference = reference_run(&updates, &query_users);

    for workers in [1usize, 4] {
        let server = NetServer::bind(
            "127.0.0.1:0",
            fresh_engine(),
            NetConfig::with_workers(workers),
        )
        .unwrap();
        let addr = server.local_addr();
        let mut client = NetClient::connect(addr).unwrap();

        for i in 0..USERS {
            let (k, a_min, a_max) = requirement_for(i);
            assert_eq!(
                client.register(i, k, a_min, a_max).unwrap(),
                Reply::Ok,
                "register {i} (workers={workers})"
            );
        }
        for (row, expect) in updates.iter().zip(&reference.updates) {
            match client.update(row.0, row.1, row.2).unwrap() {
                Reply::Cloaked(bytes) => {
                    assert_eq!(&bytes, expect, "update user {} workers {workers}", row.0)
                }
                other => panic!("update user {}: unexpected reply {other:?}", row.0),
            }
        }
        let query_time = SimTime::from_secs(1e6);
        for (&u, expect) in query_users.iter().zip(&reference.queries) {
            match client.range_query(u, 0.08, query_time).unwrap() {
                Reply::Candidates(bytes) => {
                    assert_eq!(&bytes, expect, "query user {u} workers {workers}")
                }
                other => panic!("query user {u}: unexpected reply {other:?}"),
            }
        }

        let requests = USERS + updates.len() as u64 + query_users.len() as u64;
        let snap: NetCountersSnapshot = server.counters().snapshot();
        assert_eq!(snap.requests_served, requests, "workers={workers}");
        assert_eq!(snap.errors_returned, 0, "workers={workers}");
        assert_eq!(snap.frames_rejected, 0, "workers={workers}");
        assert!(snap.bytes_in > 0 && snap.bytes_out > 0);

        // Graceful shutdown returns the engine with every state change
        // the network workload made.
        drop(client);
        let engine = server.shutdown();
        assert_eq!(engine.registered(), USERS as usize, "workers={workers}");
        assert_eq!(engine.population(), USERS as usize, "workers={workers}");
        assert_eq!(engine.private_len(), USERS as usize, "workers={workers}");
    }
}

/// Engine-level rejections (unknown user, malformed payloads) come back
/// as error replies on a connection that stays usable — the transport
/// does not conflate "bad request" with "bad peer".
#[test]
fn application_errors_keep_the_connection_alive() {
    let server = NetServer::bind("127.0.0.1:0", fresh_engine(), NetConfig::default()).unwrap();
    let mut client = NetClient::connect(server.local_addr()).unwrap();

    // Update for a user that never registered.
    match client
        .update(42, Point::new(0.5, 0.5), SimTime::ZERO)
        .unwrap()
    {
        Reply::Error(msg) => assert!(!msg.is_empty()),
        other => panic!("expected error reply, got {other:?}"),
    }
    // Register with an inverted area interval (rejected by the codec).
    match client.register(7, 4, 0.5, 0.1).unwrap() {
        Reply::Error(_) => {}
        other => panic!("expected error reply, got {other:?}"),
    }
    // The same connection still serves good requests.
    assert_eq!(
        client.register(7, 4, 0.0, f64::INFINITY).unwrap(),
        Reply::Ok
    );
    match client
        .update(7, Point::new(0.5, 0.5), SimTime::ZERO)
        .unwrap()
    {
        Reply::Cloaked(_) => {}
        other => panic!("expected cloaked reply, got {other:?}"),
    }
    let snap = server.counters().snapshot();
    assert!(snap.errors_returned >= 2);
    assert_eq!(server.shutdown().population(), 1);
}
