//! Attack lab: the paper's reverse-engineering arguments, measured.
//!
//! Runs the adversaries against the main cloaking algorithms on
//! the same population:
//! * center-of-region attack (breaks the naive cloak, Fig. 3a),
//! * boundary attack (leaks from the MBR cloak at small k, Fig. 3b),
//! * region-intersection attack over an update trace (an extension:
//!   quantifies multi-snapshot leakage, and shows that incremental
//!   cloak caching — Sec. 5.3 — actually *blocks* it).
//!
//! Run with: `cargo run --release --example attack_lab`

use privacy_lbs::anonymizer::attack::{BoundaryAttack, CenterAttack, IntersectionAttack};
use privacy_lbs::anonymizer::{
    CloakRequirement, CloakingAlgorithm, GridCloak, IncrementalCloaker, MbrCloak, NaiveCloak,
    QuadCloak,
};
use privacy_lbs::geom::{Point, Rect};
use privacy_lbs::mobility::{Population, SpatialDistribution};

fn main() {
    let world = Rect::new_unchecked(0.0, 0.0, 1.0, 1.0);
    let population = Population::generate(
        world,
        10_000,
        &SpatialDistribution::three_cities(&world),
        0.0,
        0.01,
        4,
    );
    let positions = population.positions();

    let mut algos: Vec<Box<dyn CloakingAlgorithm>> = vec![
        Box::new(NaiveCloak::new(world, 64)),
        Box::new(MbrCloak::new(world, 64)),
        Box::new(QuadCloak::new(world, 8)),
        Box::new(GridCloak::new(world, 64).with_refinement(true)),
    ];
    for a in &mut algos {
        for (i, p) in positions.iter().enumerate() {
            a.upsert(i as u64, *p);
        }
    }

    println!("10,000 users, k = 5, 500 sampled cloaks per algorithm\n");
    println!("algorithm        | center attack | boundary attack | mean normalized error");
    println!("-----------------+---------------+-----------------+----------------------");
    let req = CloakRequirement::k_only(5);
    for a in &algos {
        let ids: Vec<u64> = (0..10_000u64).step_by(20).collect();
        let cloaks: Vec<_> = ids.iter().map(|&id| a.cloak(id, &req).unwrap()).collect();
        let cases: Vec<_> = cloaks
            .iter()
            .zip(ids.iter().map(|&id| positions[id as usize]))
            .collect();
        let center = CenterAttack::default().attack_all(cases.iter().map(|&(c, p)| (c, p)));
        let boundary = BoundaryAttack::default().attack_all(cases.iter().map(|&(c, p)| (c, p)));
        println!(
            "{:<16} | {:>12.1}% | {:>14.1}% | {:>20.3}",
            a.name(),
            100.0 * center.success_rate(),
            100.0 * boundary.success_rate(),
            center.mean_normalized_error,
        );
    }

    // Intersection attack: a stationary subject, drifting crowd.
    println!("\nRegion-intersection attack (stationary user, 10 re-cloaks, k=8):\n");
    println!("strategy                     | intersection / initial area | truth inside");
    println!("-----------------------------+-----------------------------+-------------");
    let subject = Point::new(0.5, 0.5);

    // Eager recomputation with the MBR cloak: every round differs.
    let mut mbr = MbrCloak::new(world, 32);
    mbr.upsert(0, subject);
    for i in 1..60u64 {
        mbr.upsert(i, Point::new(0.3 + 0.007 * i as f64, 0.55));
    }
    let req8 = CloakRequirement::k_only(8);
    let mut trace = Vec::new();
    for round in 0..10u64 {
        for i in 1..60u64 {
            let x = 0.3 + 0.007 * ((i + round * 3) % 60) as f64;
            mbr.upsert(i, Point::new(x, 0.55 - 0.002 * round as f64));
        }
        trace.push(mbr.cloak(0, &req8).unwrap());
    }
    let eager = IntersectionAttack.attack_trace(&trace, subject).unwrap();
    println!(
        "{:<28} | {:>27.2} | {}",
        "mbr, eager recompute",
        eager.area_ratio(),
        eager.contains_truth
    );

    // Incremental caching with the quad cloak: identical regions.
    let mut quad = QuadCloak::new(world, 8);
    quad.upsert(0, subject);
    for i in 1..60u64 {
        quad.upsert(i, Point::new(0.505, 0.505));
    }
    let mut inc = IncrementalCloaker::new(quad, 1000);
    let mut trace = Vec::new();
    for _ in 0..10 {
        trace.push(inc.update_and_cloak(0, subject, &req8).unwrap());
    }
    let cached = IntersectionAttack.attack_trace(&trace, subject).unwrap();
    println!(
        "{:<28} | {:>27.2} | {}",
        "quad, incremental cache",
        cached.area_ratio(),
        cached.contains_truth
    );

    println!(
        "\nReadings: space-dependent cloaks are immune to single-snapshot\n\
         reverse engineering; across snapshots, re-sending the *same* region\n\
         (incremental caching) is strictly safer than eager recomputation."
    );
}
