//! A city traffic dashboard over private data (Fig. 6 of the paper).
//!
//! An untrusted administrator — who never talks to the anonymizer —
//! watches the number of mobile users in each downtown district via
//! public count queries over the cloaked population, and a gas station
//! sends an e-coupon to its probable nearest user (the paper's Fig. 6b
//! scenario). Demonstrates the three probabilistic answer formats and
//! the standing-query (continuous) machinery.
//!
//! Run with: `cargo run --release --example traffic_dashboard`

use privacy_lbs::anonymizer::{CloakRequirement, GridCloak, PrivacyProfile};
use privacy_lbs::geom::{Point, Rect, SimTime};
use privacy_lbs::mobility::SpatialDistribution;
use privacy_lbs::system::{MobileUser, PrivacyAwareSystem};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let world = Rect::new_unchecked(0.0, 0.0, 1.0, 1.0);
    let mut system = PrivacyAwareSystem::new(
        GridCloak::new(world, 32).with_refinement(true),
        0xC0FFEE,
        Vec::new(),
    );

    // 5,000 users clustered around three districts, all demanding
    // k = 25 anonymity.
    let dist = SpatialDistribution::three_cities(&world);
    let profile = PrivacyProfile::uniform(CloakRequirement::k_only(25)).unwrap();
    let mut rng = StdRng::seed_from_u64(8);
    for id in 0..5000u64 {
        system.register_user(MobileUser::active(id, profile.clone()));
        let pos = dist.sample(&mut rng, &world);
        system.process_update(id, pos, SimTime::ZERO).unwrap();
    }

    // District monitors: standing count queries.
    let districts = [
        ("Downtown A", Rect::new_unchecked(0.15, 0.15, 0.35, 0.35)),
        ("Downtown B", Rect::new_unchecked(0.60, 0.50, 0.80, 0.70)),
        ("Riverside", Rect::new_unchecked(0.30, 0.75, 0.50, 0.95)),
        ("Outskirts", Rect::new_unchecked(0.85, 0.05, 0.99, 0.19)),
    ];
    println!("district    | expected | interval     | P(count in 95% band)");
    println!("------------+----------+--------------+---------------------");
    for (name, area) in districts {
        let ans = system.public_count_query(area);
        let (lo, hi) = ans.pdf.credible_interval(0.95);
        let band: f64 = (lo..=hi).map(|kk| ans.pdf.pmf(kk)).sum();
        println!(
            "{:<11} | {:>8.1} | [{:>4}, {:>4}] | count in [{lo}, {hi}] w.p. {:.2}",
            name, ans.expected, ans.certain, ans.possible, band
        );
    }

    // The admin cannot do better than these intervals: the server holds
    // no exact locations. Show the naive answer the paper criticizes.
    let a = system.public_count_query(districts[0].1);
    println!(
        "\nNaive 'non-zero-size object' answer for {}: {} (expected answer: {:.1})",
        districts[0].0,
        a.naive_count(),
        a.expected
    );

    // Fig. 6b: the gas station's e-coupon.
    let station = Point::new(0.25, 0.25);
    let nn = system.public_nn_query(station);
    println!("\nGas station at {station} wants its nearest user:");
    for c in nn.candidates.iter().take(5) {
        println!(
            "  pseudonym {:>20} : P(nearest) = {:.3}  (dist in [{:.3}, {:.3}])",
            c.pseudonym, c.probability, c.min_dist, c.max_dist
        );
    }
    match nn.most_probable() {
        Some(p) => {
            println!("  -> e-coupon goes to pseudonym {p} (identity unknown to the station)")
        }
        None => println!("  -> nobody around"),
    }
}
