//! Quickstart: the paper's pipeline in ~60 lines.
//!
//! A user with a k-anonymity profile sends her exact location to the
//! location anonymizer, asks for the nearest gas station, and gets an
//! exact answer — while the database server only ever saw a rectangle.
//!
//! Run with: `cargo run --example quickstart`

use privacy_lbs::anonymizer::{CloakRequirement, PrivacyProfile, QuadCloak};
use privacy_lbs::geom::{Point, Rect, SimTime};
use privacy_lbs::mobility::{PoiCategory, PoiSet, SpatialDistribution};
use privacy_lbs::server::PublicObject;
use privacy_lbs::system::{MobileUser, PrivacyAwareSystem};

fn main() {
    // A 10 x 10 mile city.
    let world = Rect::new_unchecked(0.0, 0.0, 10.0, 10.0);

    // Public data: 40 gas stations.
    let stations = PoiSet::generate_category(
        world,
        40,
        PoiCategory::GasStation,
        &SpatialDistribution::Uniform,
        7,
    );
    let public: Vec<PublicObject> = stations
        .pois()
        .iter()
        .map(|p| PublicObject::new(p.id, p.pos, p.category as u32))
        .collect();

    // The system: a quadtree (space-dependent) location anonymizer in
    // front of the privacy-aware database server.
    let mut system = PrivacyAwareSystem::new(QuadCloak::new(world, 6), 0x5EC9E7, public);

    // 500 other mobile users populate the city (they make k-anonymity
    // possible).
    let crowd = SpatialDistribution::three_cities(&world);
    let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(1);
    let background_profile = PrivacyProfile::uniform(CloakRequirement::k_only(10)).unwrap();
    for id in 1..=500u64 {
        system.register_user(MobileUser::active(id, background_profile.clone()));
        let pos = crowd.sample(&mut rng, &world);
        system.process_update(id, pos, SimTime::ZERO).unwrap();
    }

    // Alice (id 0) wants to be indistinguishable among 20 users.
    let alice_profile = PrivacyProfile::uniform(CloakRequirement::k_only(20)).unwrap();
    system.register_user(MobileUser::active(0, alice_profile));
    let alice_pos = Point::new(2.5, 2.6);
    let update = system
        .process_update(0, alice_pos, SimTime::ZERO)
        .unwrap()
        .expect("active user");

    println!("Alice's exact location      : {alice_pos}");
    println!("What the server saw         : {}", update.region.region);
    println!(
        "  area {:.3} sq miles, {} users inside (k >= 20: {})",
        update.region.area(),
        update.region.achieved_k,
        update.region.k_satisfied
    );

    // "Find my nearest gas station" — a private query over public data.
    let outcome = system.private_nn_query(0, SimTime::ZERO).unwrap();
    println!(
        "Server returned {} candidate stations (instead of 1 exact or all 40)",
        outcome.candidates.len()
    );
    let nearest = outcome.exact.expect("stations exist");
    println!(
        "Alice refines locally       : station #{} at {} ({:.3} miles away)",
        nearest.id,
        nearest.pos,
        nearest.pos.dist(alice_pos)
    );
}
