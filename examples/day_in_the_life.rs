//! A day in the life of a privacy profile (Fig. 2 of the paper).
//!
//! Simulates 24 hours with the paper's exact example profile:
//!
//! | Time              | k    | Min. Area | Max. Area |
//! |-------------------|------|-----------|-----------|
//! | 8:00 AM – 5:00 PM | 1    | —         | —         |
//! | 5:00 PM – 10:00 PM| 100  | 1 mile    | 3 miles   |
//! | 10:00 PM – 8:00 AM| 1000 | 5 miles   | —         |
//!
//! and prints how the cloaked area and the quality of service (candidate
//! set size for a "nearest restaurant" query) change over the day —
//! the privacy/QoS trade-off that motivates the whole design.
//!
//! Run with: `cargo run --release --example day_in_the_life`

use privacy_lbs::anonymizer::{PrivacyProfile, QuadCloak};
use privacy_lbs::geom::Rect;
use privacy_lbs::mobility::SpatialDistribution;
use privacy_lbs::system::{SimulationConfig, SimulationEngine};

fn main() {
    // A 36-square-mile city (6 x 6), so the profile's area bounds in
    // square miles are meaningful.
    let world = Rect::new_unchecked(0.0, 0.0, 6.0, 6.0);
    let config = SimulationConfig {
        users: 2000,
        pois: 200,
        distribution: SpatialDistribution::three_cities(&world),
        speed: (0.002, 0.01),
        tick_seconds: 3600.0, // one-hour ticks
        query_fraction: 0.05,
        query_radius: 0.5,
        seed: 2026,
    };
    let mut engine = SimulationEngine::new(
        QuadCloak::new(world, 7),
        config,
        PrivacyProfile::paper_example(),
    );

    println!("hour | entry            | mean cloak area | mean candidates | QoS");
    println!("-----+------------------+-----------------+-----------------+--------");
    for _hour in 1..=24u32 {
        engine.system_mut().metrics.reset();
        engine.tick();
        let m = &engine.system().metrics;
        let area = m.cloak_area.summary().mean;
        let cands = m.candidate_set_size.summary().mean;
        let tod = engine.now().time_of_day();
        let entry = match tod.hour() {
            8..=16 => "k=1 (exact)",
            17..=21 => "k=100, 1-3 mi^2",
            _ => "k=1000, >=5 mi^2",
        };
        let qos = if cands <= 1.5 {
            "exact"
        } else if cands <= 20.0 {
            "good"
        } else {
            "coarse"
        };
        println!(
            "{:>4} | {:<16} | {:>12.4} mi2 | {:>15.1} | {}",
            tod.hour(),
            entry,
            area,
            cands,
            qos
        );
    }

    println!();
    println!(
        "The trade-off in action: exact service by day, k=100 cloaks in the \
         evening, and near-unusable (but near-untrackable) k=1000 cloaks at night."
    );
}
