//! Private queries over private data — the fourth cell of the paper's
//! query matrix (Sec. 6.1): "find my nearest fellow user", where BOTH
//! the querier and every candidate are cloaked.
//!
//! Walks through a friend-finder scenario: Alice asks who is nearest and
//! how many users are within walking distance; the server computes
//! probabilistic answers over rectangles only, and nobody — including
//! Alice — learns anyone's exact location or identity.
//!
//! Run with: `cargo run --release --example nearest_friend`

use privacy_lbs::anonymizer::{CloakRequirement, GridCloak, PrivacyProfile};
use privacy_lbs::geom::{Point, Rect, SimTime};
use privacy_lbs::mobility::SpatialDistribution;
use privacy_lbs::system::{MobileUser, PrivacyAwareSystem};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let world = Rect::new_unchecked(0.0, 0.0, 1.0, 1.0);
    let mut system = PrivacyAwareSystem::new(
        GridCloak::new(world, 32).with_refinement(true),
        0xF12E,
        Vec::new(),
    );

    // 2,000 users, everyone demanding k = 15.
    let dist = SpatialDistribution::three_cities(&world);
    let profile = PrivacyProfile::uniform(CloakRequirement::k_only(15)).unwrap();
    let mut rng = StdRng::seed_from_u64(21);
    for id in 1..=2000u64 {
        system.register_user(MobileUser::active(id, profile.clone()));
        let pos = dist.sample(&mut rng, &world);
        system.process_update(id, pos, SimTime::ZERO).unwrap();
    }

    // Alice.
    system.register_user(MobileUser::active(0, profile));
    let alice = Point::new(0.27, 0.24); // downtown A
    system.process_update(0, alice, SimTime::ZERO).unwrap();

    println!("Alice (cloaked among >= 15 users) asks: who is nearest to me?\n");
    let nn = system.private_friend_nn_query(0, SimTime::ZERO).unwrap();
    println!(
        "{} candidate users could be her nearest (out of 2,000):",
        nn.candidates.len()
    );
    for c in nn.candidates.iter().take(5) {
        println!(
            "  pseudonym {:>20} : P = {:.3}, dist in [{:.3}, {:.3}]",
            c.pseudonym, c.probability, c.min_dist, c.max_dist
        );
    }
    if nn.candidates.len() > 5 {
        println!(
            "  ... and {} more with smaller probabilities",
            nn.candidates.len() - 5
        );
    }

    println!("\nAlice asks: how many users are within 0.1 of me?\n");
    let cnt = system.private_friend_count(0, 0.1, SimTime::ZERO).unwrap();
    println!(
        "expected {:.1}, certainly {}, possibly up to {}",
        cnt.expected, cnt.certain, cnt.possible
    );

    // Ground truth for the reader (never visible to the server).
    let truth = (1..=2000u64)
        .filter(|&id| {
            system
                .device_position(id)
                .is_some_and(|p| p.dist(alice) <= 0.1)
        })
        .count();
    println!(
        "(ground truth, known only to this simulation: {truth} users — inside \
         [{}, {}]: {})",
        cnt.certain,
        cnt.possible,
        cnt.certain <= truth && truth <= cnt.possible
    );
}
