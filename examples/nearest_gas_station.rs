//! The paper's running example, measured: "asking about the nearest gas
//! station" under increasing privacy levels, with the paper's four
//! cloaking algorithms plus the Hilbert baseline.
//!
//! For each algorithm and each k, reports:
//! * the cloaked area (privacy),
//! * the candidate-set size the user must download and scan (QoS cost),
//! * whether the true nearest station was always in the candidate set
//!   (correctness — must be 100%),
//! * what a center-of-region adversary learns (leakage).
//!
//! Run with: `cargo run --release --example nearest_gas_station`

use privacy_lbs::anonymizer::attack::CenterAttack;
use privacy_lbs::anonymizer::{
    CloakRequirement, CloakingAlgorithm, GridCloak, HilbertCloak, MbrCloak, NaiveCloak, QuadCloak,
};
use privacy_lbs::geom::{Point, Rect};
use privacy_lbs::mobility::{PoiCategory, PoiSet, Population, SpatialDistribution};
use privacy_lbs::server::{private_nn_candidates, refine_nn, PublicObject, PublicStore};

fn run_algo(algo: &mut dyn CloakingAlgorithm, users: &[Point], store: &PublicStore, k: u32) {
    for (i, p) in users.iter().enumerate() {
        algo.upsert(i as u64, *p);
    }
    let req = CloakRequirement::k_only(k);
    let attack = CenterAttack::default();
    let mut total_area = 0.0;
    let mut total_cands = 0usize;
    let mut correct = 0usize;
    let mut pinpointed = 0usize;
    let sample: Vec<u64> = (0..users.len() as u64).step_by(users.len() / 200).collect();
    for &id in &sample {
        let cloak = algo.cloak(id, &req).expect("user present");
        total_area += cloak.area();
        let candidates = private_nn_candidates(store, &cloak.region);
        total_cands += candidates.len();
        let true_pos = users[id as usize];
        let refined = refine_nn(&candidates, true_pos).expect("stations exist");
        let direct = store.k_nearest(true_pos, 1)[0];
        if (refined.pos.dist(true_pos) - direct.pos.dist(true_pos)).abs() < 1e-12 {
            correct += 1;
        }
        if attack.attack_one(&cloak, true_pos).0 {
            pinpointed += 1;
        }
    }
    let n = sample.len() as f64;
    println!(
        "{:<16} | k={:<4} | area {:>8.5} | candidates {:>5.1} | correct {:>5.1}% | pinpointed {:>5.1}%",
        algo.name(),
        k,
        total_area / n,
        total_cands as f64 / n,
        100.0 * correct as f64 / n,
        100.0 * pinpointed as f64 / n,
    );
}

fn main() {
    let world = Rect::new_unchecked(0.0, 0.0, 1.0, 1.0);
    let dist = SpatialDistribution::three_cities(&world);
    let population = Population::generate(world, 20_000, &dist, 0.0, 0.01, 99);
    let users = population.positions();

    let stations = PoiSet::generate_category(
        world,
        500,
        PoiCategory::GasStation,
        &SpatialDistribution::Uniform,
        5,
    );
    let store = PublicStore::bulk_load(
        stations
            .pois()
            .iter()
            .map(|p| PublicObject::new(p.id, p.pos, 0))
            .collect(),
    );

    println!("20,000 users (3-city distribution), 500 gas stations, 200 sampled queries\n");
    for k in [10u32, 50, 200] {
        run_algo(&mut NaiveCloak::new(world, 64), &users, &store, k);
        run_algo(&mut MbrCloak::new(world, 64), &users, &store, k);
        run_algo(&mut QuadCloak::new(world, 8), &users, &store, k);
        run_algo(
            &mut GridCloak::new(world, 64).with_refinement(true),
            &users,
            &store,
            k,
        );
        run_algo(&mut HilbertCloak::new(world, 64), &users, &store, k);
        println!();
    }
    println!(
        "Takeaways: every algorithm keeps the true answer in the candidate set \
         (correct = 100%); candidate cost grows with k; only the naive cloak is \
         pinpointed by the center attack."
    );
}
