//! Moving public objects: the paper's "police cars and on-site workers"
//! (Sec. 6.1) are public data that *move*. A dispatcher tracks patrol
//! cars with exact positions (they don't want privacy), citizens remain
//! cloaked, and both query classes run against the same server:
//!
//! * a cloaked citizen asks for her nearest patrol car (private query
//!   over moving public data),
//! * dispatch asks how many citizens are near an incident (public query
//!   over private data) to size the response.
//!
//! Run with: `cargo run --release --example police_dispatch`

use privacy_lbs::anonymizer::{CloakRequirement, LocationAnonymizer, PrivacyProfile, QuadCloak};
use privacy_lbs::geom::{Point, Rect, SimTime};
use privacy_lbs::mobility::{Population, SpatialDistribution};
use privacy_lbs::server::{PublicObject, Server};

fn main() {
    let world = Rect::new_unchecked(0.0, 0.0, 1.0, 1.0);

    // The server starts with 8 patrol cars on a grid.
    let cars: Vec<PublicObject> = (0..8)
        .map(|i| {
            PublicObject::new(
                i,
                Point::new(0.125 + 0.25 * (i % 4) as f64, 0.25 + 0.5 * (i / 4) as f64),
                0,
            )
        })
        .collect();
    let mut server = Server::new(cars);

    // The anonymizer fronts 3,000 citizens at k = 20.
    let mut anonymizer = LocationAnonymizer::new(QuadCloak::new(world, 7), 0xD15);
    let profile = PrivacyProfile::uniform(CloakRequirement::k_only(20)).unwrap();
    let mut population = Population::generate(
        world,
        3_000,
        &SpatialDistribution::three_cities(&world),
        0.005,
        0.02,
        77,
    );
    for u in population.users() {
        anonymizer.register(u.id, profile.clone());
    }
    for u in population.users() {
        let update = anonymizer
            .handle_update(u.id, u.position(), SimTime::ZERO)
            .unwrap();
        server.ingest(update.pseudonym.0, update.region.region);
    }

    // Three patrol shifts: cars move, citizens move, queries run.
    for shift in 1..=3u64 {
        let now = SimTime::from_secs(shift as f64 * 600.0);
        // Patrol cars circle their sectors (exact positions, no privacy).
        for i in 0..8u64 {
            let angle = shift as f64 * 0.9 + i as f64;
            let base = Point::new(0.125 + 0.25 * (i % 4) as f64, 0.25 + 0.5 * (i / 4) as f64);
            let pos = world.clamp_point(Point::new(
                base.x + 0.05 * angle.cos(),
                base.y + 0.05 * angle.sin(),
            ));
            server.public_mut().update_position(i, pos);
        }
        // Citizens move and re-cloak (batched shared execution).
        let moves: Vec<(u64, Point, SimTime)> = population
            .step_all(600.0)
            .into_iter()
            .map(|(id, p)| (id, p, now))
            .collect();
        for result in anonymizer.handle_updates_batch(&moves) {
            let update = result.expect("registered users");
            server.ingest(update.pseudonym.0, update.region.region);
        }

        println!("--- shift {shift} ---");
        // A citizen's private query: nearest patrol car, cloaked.
        let citizen = 42u64;
        let q = anonymizer.cloak_query(citizen, now).unwrap();
        let candidates = server.private_nn(&q.region.region);
        let true_pos = population.position_of(citizen).unwrap();
        let nearest = candidates
            .iter()
            .min_by(|a, b| true_pos.dist(a.pos).total_cmp(&true_pos.dist(b.pos)))
            .unwrap();
        println!(
            "citizen 42 (cloak area {:.4}): {} candidate car(s), refined to car #{} \
             at {:.3} away",
            q.region.area(),
            candidates.len(),
            nearest.id,
            nearest.pos.dist(true_pos)
        );

        // Dispatch sizes the crowd near an incident downtown.
        let incident = Rect::new_unchecked(0.2, 0.2, 0.3, 0.3);
        let crowd = server.public_count(incident);
        println!(
            "incident zone: expected {:.0} citizens (interval [{}, {}])",
            crowd.expected, crowd.certain, crowd.possible
        );
    }

    let stats = server.stats();
    println!(
        "\nserver handled {} updates, {} private NN queries, {} public counts",
        stats.updates, stats.private_nn, stats.public_count
    );
}
